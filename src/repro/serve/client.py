"""A small synchronous client for the serving layer.

:class:`ServeClient` speaks the same framing as the server (raw TCP with
the ``CRAQR/1`` magic by default, or websocket with ``transport="ws"``)
over a plain blocking socket — no asyncio on the client side, so tests,
benchmarks and the demo script stay simple and deterministic.

Requests are matched to replies by id; push events that arrive while a
reply is awaited are buffered and read later with :meth:`next_event`.
Structured error replies raise :class:`~repro.errors.ServeError` carrying
the server-side exception class in ``error_type`` (so a fetch that lagged
past retention raises with ``error_type == "StorageError"`` and the
storage layer's original message).
"""

from __future__ import annotations

import base64
import os
import socket
import struct
from typing import List, Optional, Tuple

from ..errors import ServeError
from .protocol import (
    MAGIC,
    decode_message,
    encode_message,
    ws_decode_frame,
    ws_encode_frame,
)

__all__ = ["ServeClient"]

_U32 = struct.Struct(">I")


class ServeClient:
    """One blocking connection to a :class:`~repro.serve.Server`.

    Parameters
    ----------
    host / port:
        The server's bound address.
    transport:
        ``"tcp"`` (default) or ``"ws"`` for websocket framing.
    timeout:
        Socket timeout in seconds for connects and reads.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        transport: str = "tcp",
        timeout: float = 30.0,
    ) -> None:
        if transport not in ("tcp", "ws"):
            raise ServeError(f"unknown transport {transport!r}; use 'tcp' or 'ws'")
        self._transport = transport
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(timeout)
        self._buffer = b""
        self._next_id = 0
        #: push events received while awaiting replies, oldest first.
        self.events: List[Tuple[dict, bytes]] = []
        if transport == "ws":
            self._ws_handshake(host, port)
        else:
            self._sock.sendall(MAGIC)

    # ------------------------------------------------------------------
    def _ws_handshake(self, host: str, port: int) -> None:
        key = base64.b64encode(os.urandom(16)).decode("ascii")
        request = (
            f"GET /craqr HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\n"
            f"Upgrade: websocket\r\n"
            f"Connection: Upgrade\r\n"
            f"Sec-WebSocket-Key: {key}\r\n"
            f"Sec-WebSocket-Version: 13\r\n\r\n"
        )
        self._sock.sendall(request.encode("latin-1"))
        response = b""
        while b"\r\n\r\n" not in response:
            chunk = self._sock.recv(4096)
            if not chunk:
                raise ServeError("server closed during the websocket handshake")
            response += chunk
        head, _, rest = response.partition(b"\r\n\r\n")
        status = head.split(b"\r\n", 1)[0]
        if b"101" not in status:
            raise ServeError(f"websocket handshake refused: {status!r}")
        self._buffer = rest

    # ------------------------------------------------------------------
    def _recv_more(self) -> None:
        chunk = self._sock.recv(65536)
        if not chunk:
            raise ServeError("server closed the connection")
        self._buffer += chunk

    def _read_message(self) -> Tuple[dict, bytes]:
        """Block until one complete protocol message arrives."""
        if self._transport == "ws":
            while True:
                opcode, payload, consumed = ws_decode_frame(self._buffer)
                if consumed:
                    self._buffer = self._buffer[consumed:]
                    if opcode == 0x9:  # ping -> pong
                        self._sock.sendall(ws_encode_frame(payload, opcode=0xA, mask=True))
                        continue
                    if opcode == 0x8:
                        raise ServeError("server closed the websocket")
                    return decode_message(payload)
                self._recv_more()
        while True:
            if len(self._buffer) >= 4:
                (length,) = _U32.unpack(self._buffer[:4])
                if len(self._buffer) >= 4 + length:
                    body = self._buffer[4 : 4 + length]
                    self._buffer = self._buffer[4 + length :]
                    return decode_message(body)
            self._recv_more()

    def _send_message(self, header: dict, payload: bytes = b"") -> None:
        body = encode_message(header, payload)
        if self._transport == "ws":
            self._sock.sendall(ws_encode_frame(body, mask=True))
        else:
            self._sock.sendall(_U32.pack(len(body)) + body)

    # ------------------------------------------------------------------
    def request(self, header: dict, payload: bytes = b"") -> Tuple[dict, bytes]:
        """Send one operation and block for its reply.

        Push events arriving first are buffered into :attr:`events`.
        Error replies raise :class:`~repro.errors.ServeError` with the
        server's message and ``error_type``.
        """
        self._next_id += 1
        request_id = self._next_id
        self._send_message(dict(header, id=request_id))
        while True:
            reply, reply_payload = self._read_message()
            if "event" in reply:
                self.events.append((reply, reply_payload))
                continue
            if reply.get("id") != request_id:
                continue  # a stale reply from a timed-out predecessor
            if not reply.get("ok", False):
                raise ServeError(
                    reply.get("error", "server error"),
                    error_type=reply.get("error_type", "ServeError"),
                )
            return reply, reply_payload

    def next_event(self, timeout: Optional[float] = None) -> Tuple[dict, bytes]:
        """The next push event (buffered or read from the socket)."""
        if self.events:
            return self.events.pop(0)
        previous = self._sock.gettimeout()
        if timeout is not None:
            self._sock.settimeout(timeout)
        try:
            while True:
                message = self._read_message()
                if "event" in message[0]:
                    return message
                # A reply with no waiter (should not happen) is dropped.
        except socket.timeout as exc:
            raise ServeError(f"no event within {timeout} seconds") from exc
        finally:
            self._sock.settimeout(previous)

    # -- convenience wrappers ------------------------------------------
    def hello(self) -> dict:
        return self.request({"op": "hello"})[0]

    def execute(self, script: str, *, mode: str = "json") -> List[dict]:
        reply, _ = self.request({"op": "execute", "script": script, "mode": mode})
        return reply["results"]

    def run(self, batches: int = 1) -> dict:
        return self.request({"op": "run", "batches": batches})[0]

    def fetch(
        self,
        *,
        query: Optional[str] = None,
        view: Optional[str] = None,
        token: Optional[str] = None,
        tail: bool = False,
    ) -> Tuple[dict, bytes]:
        header: dict = {"op": "fetch", "tail": tail}
        if query is not None:
            header["query"] = query
        if view is not None:
            header["view"] = view
        if token is not None:
            header["token"] = token
        return self.request(header)

    def subscribe(
        self,
        *,
        query: Optional[str] = None,
        view: Optional[str] = None,
        policy: Optional[str] = None,
        queue_events: Optional[int] = None,
        token: Optional[str] = None,
    ) -> dict:
        header: dict = {"op": "subscribe"}
        if query is not None:
            header["query"] = query
        if view is not None:
            header["view"] = view
        if policy is not None:
            header["policy"] = policy
        if queue_events is not None:
            header["queue_events"] = queue_events
        if token is not None:
            header["token"] = token
        return self.request(header)[0]

    def unsubscribe(self, sub: int) -> dict:
        return self.request({"op": "unsubscribe", "sub": sub})[0]

    def health(self, query: str) -> str:
        return self.request({"op": "health", "query": query})[0]["text"]

    def checkpoint(self, path: Optional[str] = None) -> str:
        header: dict = {"op": "checkpoint"}
        if path is not None:
            header["path"] = path
        return self.request(header)[0]["path"]

    def shutdown(self) -> dict:
        return self.request({"op": "shutdown"})[0]

    def close(self) -> None:
        """Close the socket (idempotent)."""
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
