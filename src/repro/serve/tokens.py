"""Opaque resumable offset tokens.

Every cursor-bearing server reply carries a token encoding exactly where
the next fetch should resume.  Tokens are base64-wrapped JSON of the
cursor's position — opaque to clients (treat as a string, hand it back
verbatim) but deliberately debuggable server-side.

The positions inside are the ones the storage layer already keeps across
checkpoints: a :class:`~repro.storage.ResultCursor` is ``(chunk_seq,
row, consumed)`` against a :class:`~repro.storage.QueryResultBuffer`
whose chunk sequence numbers and lifetime totals are pickled exactly, and
a :class:`~repro.views.FrameCursor` is the next frame index against a
:class:`~repro.views.ViewFrameBuffer`.  A token minted before a
checkpoint therefore resumes correctly against the restored engine —
the reconnect contract ``tests/serve/test_reconnect.py`` pins.

A token that points past retention surfaces the storage layer's
:class:`~repro.errors.StorageError` (with its "open a fresh cursor"
guidance) at first *fetch*, never a hang — minting and parsing tokens is
position arithmetic only.
"""

from __future__ import annotations

import base64
import binascii
import json

from ..errors import ServeError
from ..storage.result_buffer import QueryResultBuffer, ResultCursor
from ..views.frames import FrameCursor, ViewFrameBuffer

__all__ = [
    "result_token",
    "frame_token",
    "frame_token_at",
    "result_cursor_from_token",
    "frame_cursor_from_token",
]


def _encode(fields: dict) -> str:
    raw = json.dumps(fields, separators=(",", ":")).encode("utf-8")
    return base64.urlsafe_b64encode(raw).decode("ascii")


def _decode(token: str, *, kind: str) -> dict:
    try:
        fields = json.loads(base64.urlsafe_b64decode(token.encode("ascii")))
    except (ValueError, binascii.Error, AttributeError, UnicodeEncodeError) as exc:
        raise ServeError(f"malformed offset token {token!r}: {exc}") from exc
    if not isinstance(fields, dict) or fields.get("k") != kind:
        raise ServeError(
            f"offset token {token!r} is not a {kind!r} token; results and "
            f"frames use distinct token kinds"
        )
    return fields


def result_token(cursor: ResultCursor) -> str:
    """The resumable offset of one delivery cursor."""
    chunk_seq, row = cursor.position
    return _encode({"k": "results", "c": chunk_seq, "r": row, "g": cursor.consumed})


def frame_token(cursor: FrameCursor) -> str:
    """The resumable offset of one view-frame cursor."""
    return frame_token_at(cursor.position)


def frame_token_at(next_index: int) -> str:
    """The frame token for an explicit next-unread lifetime index."""
    return _encode({"k": "frames", "n": next_index})


def result_cursor_from_token(buffer: QueryResultBuffer, token: str) -> ResultCursor:
    """Rebuild a delivery cursor at a token's position."""
    fields = _decode(token, kind="results")
    try:
        chunk_seq, row, consumed = int(fields["c"]), int(fields["r"]), int(fields["g"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ServeError(f"malformed offset token {token!r}: {exc}") from exc
    if chunk_seq < 0 or row < 0 or consumed < 0:
        raise ServeError(f"offset token {token!r} holds a negative position")
    return ResultCursor(buffer, chunk_seq, row, consumed)


def frame_cursor_from_token(buffer: ViewFrameBuffer, token: str) -> FrameCursor:
    """Rebuild a frame cursor at a token's position."""
    fields = _decode(token, kind="frames")
    try:
        next_index = int(fields["n"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ServeError(f"malformed offset token {token!r}: {exc}") from exc
    if next_index < 0:
        raise ServeError(f"offset token {token!r} holds a negative position")
    return FrameCursor(buffer, next_index)
