"""The serving layer: one engine, many wire clients.

``repro.serve`` puts the session surface (PR 4), continuous views (PR 5)
and recovery-safe cursors (PR 7) on the network: a single-threaded
asyncio :class:`Server` owns one :class:`~repro.core.CraqrEngine`, drives
its batch loop, and speaks a length-prefixed JSON+binary protocol over
raw TCP or websocket framing.  Cursor reads resume from opaque offset
tokens in O(new items); push subscriptions fan each closed frame or
delivery batch out serialize-once with bounded per-client queues and a
declared backpressure policy, so the engine's batch cadence is
independent of the slowest client.

Start one from Python::

    from repro.serve import Server, ServeConfig, serve_in_thread
    server, (host, port), stop = serve_in_thread(engine, ServeConfig())

or from the command line::

    PYTHONPATH=src python -m repro.cli serve --scenario rain-temperature

and talk to it with the bundled synchronous :class:`ServeClient` (see
``examples/serve_client_demo.py``).
"""

from .client import ServeClient
from .fanout import BACKPRESSURE_POLICIES, FrameFanout, SubscriberQueue
from .protocol import MAGIC, decode_message, encode_message, pack_payloads, unpack_payloads
from .server import ServeConfig, Server, serve_in_thread
from .tokens import (
    frame_cursor_from_token,
    frame_token,
    frame_token_at,
    result_cursor_from_token,
    result_token,
)

__all__ = [
    "Server",
    "ServeConfig",
    "ServeClient",
    "serve_in_thread",
    "FrameFanout",
    "SubscriberQueue",
    "BACKPRESSURE_POLICIES",
    "MAGIC",
    "encode_message",
    "decode_message",
    "pack_payloads",
    "unpack_payloads",
    "result_token",
    "frame_token",
    "frame_token_at",
    "result_cursor_from_token",
    "frame_cursor_from_token",
]
