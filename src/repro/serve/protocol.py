"""Wire framing for the serving layer.

Two transports share one message shape:

* **Raw TCP** — the client opens with the 8-byte magic ``CRAQR/1\\n``,
  then both directions exchange length-prefixed messages.
* **Websocket** — the client opens with an HTTP/1.1 upgrade request
  (detected because it starts with ``GET ``); after the RFC 6455
  handshake each message travels as one binary websocket frame whose
  payload is the same length-prefixed body.

A message body is::

    u32 header_len | JSON header (UTF-8) | binary payload

The JSON header carries the operation/reply/event fields; the payload
(optional) carries codec-encoded :class:`~repro.streams.TupleBatch` /
:class:`~repro.views.ViewFrame` bytes.  Multiple codec payloads in one
message are packed with :func:`pack_payloads` (u32 count, then u32
length + bytes per item) so a push event can deliver several closed
frames at once.

Everything here is transport mechanics only — no engine imports — so the
synchronous test client can reuse the exact encoder/decoder the asyncio
server speaks.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import struct
from typing import List, Optional, Tuple

from ..errors import ServeError

__all__ = [
    "MAGIC",
    "PROTOCOL",
    "MAX_MESSAGE_BYTES",
    "encode_message",
    "decode_message",
    "read_message",
    "pack_payloads",
    "unpack_payloads",
    "ws_accept_key",
    "ws_encode_frame",
    "ws_decode_frame",
]

#: Transport preamble a raw-TCP client must send before its first message.
MAGIC = b"CRAQR/1\n"

#: Protocol identification returned by the server's ``hello`` reply.
PROTOCOL = "craqr/1"

#: Hard per-message size cap (64 MiB) — a corrupt length prefix fails
#: fast instead of waiting on gigabytes that will never arrive.
MAX_MESSAGE_BYTES = 64 * 1024 * 1024

_U32 = struct.Struct(">I")

#: RFC 6455 handshake GUID (fixed by the spec).
_WS_GUID = b"258EAFA5-E914-47DA-95CA-C5AB0DC85B11"


def encode_message(header: dict, payload: bytes = b"") -> bytes:
    """One message body: u32 header length, JSON header, raw payload."""
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return b"".join((_U32.pack(len(head)), head, payload))


def decode_message(body) -> Tuple[dict, bytes]:
    """Split one message body back into (header, payload)."""
    body = bytes(body)
    if len(body) < 4:
        raise ServeError("wire message too short for a header length prefix")
    (head_len,) = _U32.unpack(body[:4])
    if 4 + head_len > len(body):
        raise ServeError("wire message truncated inside its JSON header")
    try:
        header = json.loads(body[4 : 4 + head_len].decode("utf-8"))
    except ValueError as exc:
        raise ServeError(f"wire message header is not valid JSON: {exc}") from exc
    if not isinstance(header, dict):
        raise ServeError("wire message header must be a JSON object")
    return header, body[4 + head_len :]


async def read_message(reader: asyncio.StreamReader) -> Optional[Tuple[dict, bytes]]:
    """Read one length-prefixed message; ``None`` on clean EOF."""
    try:
        prefix = await reader.readexactly(4)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (length,) = _U32.unpack(prefix)
    if length > MAX_MESSAGE_BYTES:
        raise ServeError(
            f"wire message of {length} bytes exceeds the "
            f"{MAX_MESSAGE_BYTES}-byte cap"
        )
    try:
        body = await reader.readexactly(length)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    return decode_message(body)


def frame_message(body: bytes) -> bytes:
    """Length-prefix one message body for the raw-TCP transport."""
    return _U32.pack(len(body)) + body


def pack_payloads(payloads: List[bytes]) -> bytes:
    """Pack several codec payloads into one message payload."""
    parts = [_U32.pack(len(payloads))]
    for item in payloads:
        parts.append(_U32.pack(len(item)))
        parts.append(item)
    return b"".join(parts)


def unpack_payloads(data) -> List[bytes]:
    """Invert :func:`pack_payloads`."""
    view = memoryview(data)
    if len(view) < 4:
        raise ServeError("packed payload list too short for its count prefix")
    (count,) = _U32.unpack(bytes(view[:4]))
    offset = 4
    items: List[bytes] = []
    for _ in range(count):
        if offset + 4 > len(view):
            raise ServeError("packed payload list truncated at an item length")
        (length,) = _U32.unpack(bytes(view[offset : offset + 4]))
        offset += 4
        if offset + length > len(view):
            raise ServeError("packed payload list truncated inside an item")
        items.append(bytes(view[offset : offset + length]))
        offset += length
    return items


# ----------------------------------------------------------------------
# Minimal RFC 6455 websocket framing
# ----------------------------------------------------------------------
def ws_accept_key(client_key: str) -> str:
    """The ``Sec-WebSocket-Accept`` value for one handshake key."""
    digest = hashlib.sha1(client_key.strip().encode("ascii") + _WS_GUID).digest()
    return base64.b64encode(digest).decode("ascii")


def ws_encode_frame(payload: bytes, *, opcode: int = 0x2, mask: bool = False) -> bytes:
    """One FIN websocket frame (binary by default).

    Client-to-server frames must set ``mask``; a fixed zero masking key
    keeps the framing deterministic (the spec requires the *presence* of
    the mask bit from clients, and XOR with zeros is the identity).
    """
    head = bytearray([0x80 | (opcode & 0x0F)])
    mask_bit = 0x80 if mask else 0x00
    length = len(payload)
    if length < 126:
        head.append(mask_bit | length)
    elif length < 1 << 16:
        head.append(mask_bit | 126)
        head += struct.pack(">H", length)
    else:
        head.append(mask_bit | 127)
        head += struct.pack(">Q", length)
    if mask:
        head += b"\x00\x00\x00\x00"
    return bytes(head) + payload


def _apply_mask(payload: bytes, key: bytes) -> bytes:
    if key == b"\x00\x00\x00\x00":
        return payload
    expanded = (key * (len(payload) // 4 + 1))[: len(payload)]
    return bytes(a ^ b for a, b in zip(payload, expanded))


async def ws_read_frame(reader: asyncio.StreamReader) -> Optional[Tuple[int, bytes]]:
    """Read one websocket frame; ``None`` on EOF.  Returns (opcode, payload)."""
    try:
        head = await reader.readexactly(2)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    fin = head[0] & 0x80
    opcode = head[0] & 0x0F
    if not fin:
        raise ServeError("fragmented websocket frames are not supported")
    masked = head[1] & 0x80
    length = head[1] & 0x7F
    try:
        if length == 126:
            (length,) = struct.unpack(">H", await reader.readexactly(2))
        elif length == 127:
            (length,) = struct.unpack(">Q", await reader.readexactly(8))
        if length > MAX_MESSAGE_BYTES:
            raise ServeError(
                f"websocket frame of {length} bytes exceeds the "
                f"{MAX_MESSAGE_BYTES}-byte cap"
            )
        key = await reader.readexactly(4) if masked else b"\x00\x00\x00\x00"
        payload = await reader.readexactly(length) if length else b""
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    return opcode, _apply_mask(payload, key)


def ws_decode_frame(data: bytes) -> Tuple[int, bytes, int]:
    """Decode one websocket frame from a byte buffer (synchronous client).

    Returns ``(opcode, payload, bytes_consumed)``; ``bytes_consumed`` is 0
    when the buffer does not yet hold a complete frame.
    """
    if len(data) < 2:
        return 0, b"", 0
    opcode = data[0] & 0x0F
    masked = data[1] & 0x80
    length = data[1] & 0x7F
    offset = 2
    if length == 126:
        if len(data) < offset + 2:
            return 0, b"", 0
        (length,) = struct.unpack(">H", data[offset : offset + 2])
        offset += 2
    elif length == 127:
        if len(data) < offset + 8:
            return 0, b"", 0
        (length,) = struct.unpack(">Q", data[offset : offset + 8])
        offset += 8
    key = b"\x00\x00\x00\x00"
    if masked:
        if len(data) < offset + 4:
            return 0, b"", 0
        key = data[offset : offset + 4]
        offset += 4
    if len(data) < offset + length:
        return 0, b"", 0
    payload = _apply_mask(data[offset : offset + length], key)
    return opcode, payload, offset + length
