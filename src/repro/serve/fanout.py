"""Serialize-once fan-out of deliveries and view frames.

The engine side of the push path, deliberately free of asyncio so the
fan-out cost model is directly benchable (``benchmarks/bench_serve.py``
drives it with thousands of queues and no sockets):

* :class:`SubscriberQueue` — one subscriber's bounded send queue with a
  declared backpressure policy: ``"skip"`` drops the oldest pending event
  to make room (the skipped count is reported on the next event the
  subscriber does receive), ``"disconnect"`` marks the queue overflowed
  so the transport layer can drop the client.
* :class:`FrameFanout` — per-target *topics*.  A topic owns one shared
  frontier cursor over the target's buffer (a tail
  :class:`~repro.views.FrameCursor` for views, a tail
  :class:`~repro.storage.ResultCursor` for query deliveries);
  :meth:`FrameFanout.publish` fetches what is new since the last publish
  **once**, encodes each frame/batch **once** through
  :mod:`repro.streams.codec`, and offers the same immutable ``bytes``
  object to every subscriber queue by reference.  Per-frame publish cost
  is therefore one encode + N queue appends — flat in N until the
  appends themselves dominate.

Because the whole serving layer is single-threaded, a subscriber that
joins with a resume token gets its backlog (token position up to the
topic frontier) drained into its own queue first and then sees exactly
the frontier events everyone else sees: every delivery/frame arrives
exactly once, no gaps, no duplicates — the reconnect contract.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Tuple

from ..errors import ServeError
from ..streams.codec import encode_tuple_batch, encode_view_frame
from .tokens import (
    frame_cursor_from_token,
    frame_token_at,
    result_cursor_from_token,
    result_token,
)

__all__ = ["SubscriberQueue", "FrameFanout", "BACKPRESSURE_POLICIES"]

#: The declared backpressure policies a subscription can pick.
BACKPRESSURE_POLICIES = ("skip", "disconnect")

#: Default per-subscriber queue capacity (events, not bytes).
DEFAULT_QUEUE_EVENTS = 64


class SubscriberQueue:
    """One subscriber's bounded send queue.

    Events are ``(header, payload)`` pairs — a small dict plus a shared
    immutable ``bytes`` payload.  The queue never blocks a producer: at
    capacity the declared policy either drops the oldest pending event
    (``"skip"``, counting it) or flags the queue ``overflowed``
    (``"disconnect"``) so the transport drops the client.  ``tag`` is an
    opaque owner hook (the server stores its session/subscription id
    there; the benchmarks leave it ``None``).
    """

    __slots__ = ("capacity", "policy", "tag", "skipped", "overflowed", "_events")

    def __init__(
        self,
        *,
        capacity: int = DEFAULT_QUEUE_EVENTS,
        policy: str = "skip",
        tag=None,
    ) -> None:
        if capacity <= 0:
            raise ServeError("a subscriber queue needs a positive capacity")
        if policy not in BACKPRESSURE_POLICIES:
            raise ServeError(
                f"unknown backpressure policy {policy!r}; pick one of "
                f"{'/'.join(BACKPRESSURE_POLICIES)}"
            )
        self.capacity = capacity
        self.policy = policy
        self.tag = tag
        #: events dropped by the ``skip`` policy since the last delivery.
        self.skipped = 0
        #: set once by the ``disconnect`` policy; the queue stops accepting.
        self.overflowed = False
        self._events: deque = deque()

    def __len__(self) -> int:
        return len(self._events)

    def offer(self, header: dict, payload: bytes) -> bool:
        """Enqueue one event; ``False`` once the queue is overflowed."""
        if self.overflowed:
            return False
        if len(self._events) >= self.capacity:
            if self.policy == "skip":
                self._events.popleft()
                self.skipped += 1
            else:
                self.overflowed = True
                return False
        self._events.append((header, payload))
        return True

    def pop(self) -> Optional[Tuple[dict, bytes]]:
        """Dequeue the oldest pending event (``None`` when empty).

        Skipped-event counts accumulated since the last delivery are
        attached to the returned header (``"skipped"``) and reset, so a
        lagging ``skip`` subscriber always learns how much it lost.
        """
        if not self._events:
            return None
        header, payload = self._events.popleft()
        if self.skipped:
            header = dict(header, skipped=self.skipped)
            self.skipped = 0
        return header, payload


class _Topic:
    """Shared frontier state of one fan-out target."""

    __slots__ = ("kind", "buffer", "cursor", "queues")

    def __init__(self, kind: str, buffer, cursor) -> None:
        self.kind = kind  # "view" | "query"
        self.buffer = buffer
        self.cursor = cursor
        self.queues: List[SubscriberQueue] = []


class FrameFanout:
    """Fan deliveries and closed view frames out to subscriber queues.

    Single-threaded by construction: :meth:`publish`, the subscribe
    methods and the queue drains must all run on the serving thread.
    """

    def __init__(self) -> None:
        self._topics: Dict[Tuple[str, object], _Topic] = {}

    # ------------------------------------------------------------------
    @property
    def subscriber_count(self) -> int:
        """Live subscriber queues across all topics."""
        return sum(len(t.queues) for t in self._topics.values())

    def _topic(self, key: Tuple[str, object], buffer) -> _Topic:
        topic = self._topics.get(key)
        if topic is None:
            cursor = buffer.cursor(tail=True)
            topic = _Topic(key[0], buffer, cursor)
            self._topics[key] = topic
        return topic

    # ------------------------------------------------------------------
    def subscribe_view(
        self,
        name: str,
        buffer,
        queue: SubscriberQueue,
        *,
        token: Optional[str] = None,
    ) -> str:
        """Attach one queue to a view's frame stream.

        With ``token``, the backlog between the token position and the
        topic frontier is drained into this queue first (per-subscriber
        encodes — the steady-state fan-out stays serialize-once), so the
        subscriber resumes exactly once.  Returns the queue's current
        resume token.
        """
        key = ("view", name)
        topic = self._topic(key, buffer)
        # Catch the shared frontier up first so the backlog boundary is
        # exact even if frames closed since the last publish.
        self._publish_topic(key, topic)
        position = topic.cursor.position
        if token is not None:
            start = frame_cursor_from_token(buffer, token).position
            if start > buffer.frames_emitted:
                raise ServeError(
                    f"offset token points at frame {start}, but view {name!r} "
                    f"has only emitted {buffer.frames_emitted}"
                )
            for index in range(start, position):
                frame = buffer.frame(index)  # StorageError when evicted
                queue.offer(
                    {
                        "event": "frame",
                        "view": name,
                        "frame_index": frame.frame_index,
                        "token": frame_token_after(frame.frame_index),
                    },
                    encode_view_frame(frame),
                )
        topic.queues.append(queue)
        return frame_token_after(position - 1)

    def subscribe_query(
        self,
        label: str,
        buffer,
        queue: SubscriberQueue,
        *,
        token: Optional[str] = None,
    ) -> str:
        """Attach one queue to a query's delivery stream (see above)."""
        key = ("query", label)
        topic = self._topic(key, buffer)
        self._publish_topic(key, topic)
        if token is not None:
            cursor = result_cursor_from_token(buffer, token)
            batch = cursor.fetch_batch()  # StorageError when evicted
            if len(batch):
                queue.offer(
                    {
                        "event": "batch",
                        "query": label,
                        "count": len(batch),
                        "token": result_token(cursor),
                    },
                    encode_tuple_batch(batch),
                )
        topic.queues.append(queue)
        return result_token(topic.cursor)

    def unsubscribe(self, queue: SubscriberQueue) -> None:
        """Detach one queue everywhere; empty topics are dismantled."""
        for key in list(self._topics):
            topic = self._topics[key]
            topic.queues = [q for q in topic.queues if q is not queue]
            if not topic.queues:
                del self._topics[key]

    # ------------------------------------------------------------------
    def _publish_topic(self, key: Tuple[str, object], topic: _Topic) -> int:
        """Fan one topic's new items out; returns events published."""
        events = 0
        if topic.kind == "view":
            name = key[1]
            for frame in topic.cursor.fetch():
                header = {
                    "event": "frame",
                    "view": name,
                    "frame_index": frame.frame_index,
                    "token": frame_token_after(frame.frame_index),
                }
                payload = encode_view_frame(frame)  # encoded ONCE
                for queue in topic.queues:
                    queue.offer(header, payload)
                events += 1
        else:
            label = key[1]
            batch = topic.cursor.fetch_batch()
            if len(batch):
                header = {
                    "event": "batch",
                    "query": label,
                    "count": len(batch),
                    "token": result_token(topic.cursor),
                }
                payload = encode_tuple_batch(batch)  # encoded ONCE
                for queue in topic.queues:
                    queue.offer(header, payload)
                events += 1
        return events

    def publish(self) -> int:
        """Fan out everything new since the last publish (all topics).

        Called once per engine batch; the cost is one fetch + one encode
        per new frame/batch plus a queue append per subscriber.  Returns
        the number of events published (before per-queue skips).
        """
        events = 0
        for key, topic in list(self._topics.items()):
            events += self._publish_topic(key, topic)
        return events

    def overflowed_queues(self) -> List[SubscriberQueue]:
        """Queues the ``disconnect`` policy has flagged."""
        return [
            queue
            for topic in self._topics.values()
            for queue in topic.queues
            if queue.overflowed
        ]


def frame_token_after(frame_index: int) -> str:
    """The resume token for the position just past one frame."""
    return frame_token_at(frame_index + 1)
