"""The asyncio session server that puts one engine on the wire.

One :class:`Server` owns one :class:`~repro.core.CraqrEngine` and runs it
on a single event loop: every statement, cursor read and batch step
executes on the serving thread, so the engine needs no locks and the
serving layer inherits the engine's determinism.  Slow clients never
touch the batch path — push events go through
:class:`~repro.serve.fanout.FrameFanout`'s bounded per-subscriber queues
(serialize-once, declared backpressure policy), and each connection's
writer coroutine drains its own queues at whatever pace its socket
allows.

Operations (JSON header field ``op``):

``hello``
    Greets; returns server/protocol identification and engine shape.
``execute``
    Runs a statement script via
    :meth:`~repro.core.CraqrEngine.execute_script` (``on_error=
    "continue"``); per-statement results come back as structured JSON
    rows mirroring ``QuerySessionInfo`` / ``ViewSessionInfo``.  With
    ``mode="text"`` each result additionally carries the shared
    :mod:`repro.query.render` table text the repl shows.
``run``
    Advances the engine ``batches`` batches, publishing the fan-out
    after every batch (client-driven cadence; a ``batch_interval``
    config drives the same loop server-side instead).
``fetch``
    Pull-mode read of one query's deliveries (one codec-encoded
    :class:`~repro.streams.TupleBatch` payload) or one view's closed
    frames (packed codec payloads).  Stateless: every reply carries the
    opaque resume token for the next fetch, and an incoming token
    rebuilds the cursor in O(1).  A token that lags past retention
    surfaces the storage layer's :class:`~repro.errors.StorageError`
    message as a structured error reply — never a hang.
``subscribe`` / ``unsubscribe``
    Push-mode tailing of deliveries (``query``) or closed frames
    (``view``), with per-subscription ``policy`` (``skip`` /
    ``disconnect``) and ``queue_events`` capacity; ``token`` resumes a
    previous subscription exactly-once.
``health``
    The shared per-cell health render of one query (text).
``checkpoint``
    Writes an engine checkpoint; returns the path.
``ping`` / ``shutdown``
    Liveness echo; graceful server stop.

Replies carry the request's ``id`` and ``ok``; errors are structured
(``error`` message + ``error_type`` exception class).  Push events carry
``event`` instead of ``id``.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import CraqrError, ServeError
from ..query.render import health_table, sessions_table, views_table
from ..streams.codec import encode_tuple_batch, encode_view_frame
from .fanout import (
    BACKPRESSURE_POLICIES,
    DEFAULT_QUEUE_EVENTS,
    FrameFanout,
    SubscriberQueue,
)
from .protocol import (
    MAGIC,
    PROTOCOL,
    decode_message,
    encode_message,
    frame_message,
    pack_payloads,
    read_message,
    ws_accept_key,
    ws_encode_frame,
    ws_read_frame,
)
from .tokens import (
    frame_token,
    frame_cursor_from_token,
    result_cursor_from_token,
    result_token,
)

__all__ = ["ServeConfig", "Server", "serve_in_thread"]

#: Reply-queue bound per connection: a client that floods requests
#: without reading replies is disconnected rather than buffered forever.
MAX_PENDING_REPLIES = 1024


@dataclass
class ServeConfig:
    """Tunables of one :class:`Server`."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 → ephemeral; read Server.bound_address after start()
    #: Server-driven batch cadence in seconds; ``None`` leaves batching
    #: to client ``run`` ops.
    batch_interval: Optional[float] = None
    #: Default backpressure policy of new subscriptions.
    backpressure: str = "skip"
    #: Default per-subscription queue capacity (events).
    queue_events: int = DEFAULT_QUEUE_EVENTS

    def __post_init__(self) -> None:
        if self.backpressure not in BACKPRESSURE_POLICIES:
            raise ServeError(
                f"unknown backpressure policy {self.backpressure!r}; pick one "
                f"of {'/'.join(BACKPRESSURE_POLICIES)}"
            )
        if self.queue_events <= 0:
            raise ServeError("queue_events must be positive")
        if self.batch_interval is not None and self.batch_interval <= 0:
            raise ServeError("batch_interval must be positive or None")


def _session_row(info) -> dict:
    """One ``QuerySessionInfo`` as a JSON row."""
    return {
        "label": info.label,
        "query_id": info.query_id,
        "attribute": info.attribute,
        "requested_rate": info.requested_rate,
        "region_area": info.region_area,
        "paused": info.paused,
        "total_tuples": info.total_tuples,
        "batches_completed": info.batches_completed,
        "achieved_rate": info.achieved_rate,
        "views": info.views,
        "degraded_pairs": [list(cell) for cell in info.degraded_pairs],
    }


def _view_row(info) -> dict:
    """One ``ViewSessionInfo`` as a JSON row."""
    return {
        "name": info.name,
        "query_label": info.query_label,
        "query_id": info.query_id,
        "aggregate": info.aggregate,
        "group_by": info.group_by,
        "window": info.window,
        "slide": info.slide,
        "frames_emitted": info.frames_emitted,
        "frames_retained": info.frames_retained,
        "tuples_total": info.tuples_total,
        "last_window_end": info.last_window_end,
        "active": info.active,
        "error": info.error,
    }


class _Connection:
    """Per-client state: transport mode, reply queue, subscriptions."""

    _next_id = 0

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        _Connection._next_id += 1
        self.id = _Connection._next_id
        self.reader = reader
        self.writer = writer
        self.websocket = False
        #: (header, payload) replies awaiting the writer coroutine.
        self.replies: List[Tuple[dict, bytes]] = []
        #: subscription id -> SubscriberQueue (shared with the fanout).
        self.subscriptions: Dict[int, SubscriberQueue] = {}
        self._next_sub = 0
        self.wake = asyncio.Event()
        self.closing = False
        self.writer_task: Optional[asyncio.Task] = None

    def next_sub_id(self) -> int:
        self._next_sub += 1
        return self._next_sub

    def enqueue_reply(self, header: dict, payload: bytes = b"") -> None:
        self.replies.append((header, payload))
        if len(self.replies) > MAX_PENDING_REPLIES:
            self.closing = True
        self.wake.set()

    def pending_event(self) -> Optional[Tuple[dict, bytes]]:
        """The next subscription event across this client's queues."""
        for sub_id, queue in self.subscriptions.items():
            item = queue.pop()
            if item is not None:
                header, payload = item
                return dict(header, sub=sub_id), payload
        return None

    def has_pending(self) -> bool:
        return bool(self.replies) or any(len(q) for q in self.subscriptions.values())


class Server:
    """Serve one engine to many clients (see the module docs)."""

    def __init__(self, engine, config: Optional[ServeConfig] = None) -> None:
        self._engine = engine
        self._config = config or ServeConfig()
        self._fanout = FrameFanout()
        self._connections: Dict[int, _Connection] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopping: Optional[asyncio.Event] = None
        self._batch_task: Optional[asyncio.Task] = None
        #: Wall-clock seconds spent inside run_batch() since start (the
        #: stalled-client bench reads this to isolate engine time).
        self.batch_seconds = 0.0
        self.batches_served = 0

    # ------------------------------------------------------------------
    @property
    def engine(self):
        """The served engine (touch only from the serving thread)."""
        return self._engine

    @property
    def config(self) -> ServeConfig:
        return self._config

    @property
    def bound_address(self) -> Tuple[str, int]:
        """The listening (host, port) once :meth:`start` has run."""
        if self._server is None or not self._server.sockets:
            raise ServeError("the server is not listening yet")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    # ------------------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and start accepting connections; returns (host, port)."""
        if self._server is not None:
            raise ServeError("the server has already started")
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self._config.host, self._config.port
        )
        if self._config.batch_interval is not None:
            self._batch_task = asyncio.get_running_loop().create_task(
                self._batch_loop()
            )
        return self.bound_address

    async def serve_forever(self) -> None:
        """Block until :meth:`stop` (or a ``shutdown`` op) is called."""
        if self._server is None:
            await self.start()
        await self._stopping.wait()
        await self._shutdown()

    async def stop(self) -> None:
        """Begin a graceful stop (idempotent)."""
        if self._stopping is not None:
            self._stopping.set()

    async def _shutdown(self) -> None:
        if self._batch_task is not None:
            self._batch_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._batch_task
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._connections.values()):
            conn.closing = True
            conn.wake.set()
        # Let each writer flush its pending replies (e.g. the shutdown
        # acknowledgement) before the transports go away.
        for conn in list(self._connections.values()):
            if conn.writer_task is not None:
                with contextlib.suppress(asyncio.TimeoutError, Exception):
                    await asyncio.wait_for(asyncio.shield(conn.writer_task), timeout=5)
        for conn in list(self._connections.values()):
            with contextlib.suppress(Exception):
                conn.writer.close()

    # ------------------------------------------------------------------
    async def _batch_loop(self) -> None:
        while True:
            await asyncio.sleep(self._config.batch_interval)
            self._run_batches(1)

    def _run_batches(self, batches: int) -> None:
        """Advance the engine and fan out — the only place batches run."""
        for _ in range(batches):
            started = time.perf_counter()
            self._engine.run_batch()
            self.batch_seconds += time.perf_counter() - started
            self.batches_served += 1
            self._fanout.publish()
            self._wake_subscribed()
        self._drop_overflowed()

    def _wake_subscribed(self) -> None:
        for conn in self._connections.values():
            if conn.subscriptions:
                conn.wake.set()

    def _drop_overflowed(self) -> None:
        """Disconnect clients whose ``disconnect``-policy queue overflowed."""
        for queue in self._fanout.overflowed_queues():
            conn_id = queue.tag[0] if isinstance(queue.tag, tuple) else None
            conn = self._connections.get(conn_id)
            self._fanout.unsubscribe(queue)
            if conn is None:
                continue
            conn.enqueue_reply(
                {
                    "event": "disconnect",
                    "reason": "backpressure",
                    "sub": queue.tag[1],
                }
            )
            conn.closing = True
            conn.wake.set()

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(reader, writer)
        try:
            preamble = await reader.readexactly(4)
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        try:
            if preamble == b"GET ":
                if not await self._websocket_handshake(conn, preamble):
                    writer.close()
                    return
                conn.websocket = True
            else:
                rest = await reader.readexactly(len(MAGIC) - 4)
                if preamble + rest != MAGIC:
                    writer.write(b"craqr: bad magic\n")
                    await writer.drain()
                    writer.close()
                    return
        except (asyncio.IncompleteReadError, ConnectionError):
            writer.close()
            return
        self._connections[conn.id] = conn
        writer_task = asyncio.get_running_loop().create_task(self._writer_loop(conn))
        conn.writer_task = writer_task
        try:
            await self._reader_loop(conn)
        finally:
            conn.closing = True
            conn.wake.set()
            await writer_task
            for queue in conn.subscriptions.values():
                self._fanout.unsubscribe(queue)
            self._connections.pop(conn.id, None)
            with contextlib.suppress(Exception):
                writer.close()

    async def _websocket_handshake(self, conn: _Connection, preamble: bytes) -> bool:
        """Answer an RFC 6455 upgrade; returns False on a malformed request."""
        try:
            # readuntil leaves anything past the blank line buffered, so a
            # client that pipelines its first frame with the handshake works.
            raw = preamble + await conn.reader.readuntil(b"\r\n\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError, ConnectionError):
            return False
        head = raw.split(b"\r\n\r\n", 1)[0].decode("latin-1")
        key = None
        for line in head.split("\r\n")[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "sec-websocket-key":
                key = value.strip()
        if key is None:
            conn.writer.write(b"HTTP/1.1 400 Bad Request\r\n\r\n")
            await conn.writer.drain()
            return False
        accept = ws_accept_key(key)
        conn.writer.write(
            (
                "HTTP/1.1 101 Switching Protocols\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Accept: {accept}\r\n\r\n"
            ).encode("latin-1")
        )
        await conn.writer.drain()
        return True

    async def _reader_loop(self, conn: _Connection) -> None:
        while not conn.closing:
            if conn.websocket:
                frame = await ws_read_frame(conn.reader)
                if frame is None:
                    return
                opcode, body = frame
                if opcode == 0x8:  # close
                    return
                if opcode == 0x9:  # ping -> pong
                    conn.writer.write(ws_encode_frame(body, opcode=0xA))
                    await conn.writer.drain()
                    continue
                if opcode not in (0x1, 0x2):
                    continue
                try:
                    message = decode_message(body)
                except ServeError as exc:
                    conn.enqueue_reply(self._error_header(None, exc))
                    continue
            else:
                try:
                    message = await read_message(conn.reader)
                except ServeError as exc:
                    conn.enqueue_reply(self._error_header(None, exc))
                    conn.closing = True
                    return
                if message is None:
                    return
            header, payload = message
            self._dispatch(conn, header, payload)

    async def _writer_loop(self, conn: _Connection) -> None:
        try:
            while True:
                wrote = False
                while conn.replies:
                    header, payload = conn.replies.pop(0)
                    await self._send(conn, header, payload)
                    wrote = True
                item = conn.pending_event()
                if item is not None:
                    await self._send(conn, item[0], item[1])
                    wrote = True
                if conn.closing and not conn.has_pending():
                    return
                if not wrote and not conn.has_pending():
                    conn.wake.clear()
                    await conn.wake.wait()
        except (ConnectionError, asyncio.CancelledError):
            return
        finally:
            with contextlib.suppress(Exception):
                conn.writer.close()

    async def _send(self, conn: _Connection, header: dict, payload: bytes) -> None:
        body = encode_message(header, payload)
        if conn.websocket:
            conn.writer.write(ws_encode_frame(body))
        else:
            conn.writer.write(frame_message(body))
        await conn.writer.drain()

    # ------------------------------------------------------------------
    def _error_header(self, request_id, exc: Exception) -> dict:
        return {
            "id": request_id,
            "ok": False,
            "error": str(exc),
            "error_type": type(exc).__name__,
        }

    def _dispatch(self, conn: _Connection, header: dict, payload: bytes) -> None:
        request_id = header.get("id")
        op = header.get("op")
        try:
            handler = getattr(self, f"_op_{op}", None)
            if handler is None:
                raise ServeError(f"unknown operation {op!r}")
            reply, reply_payload = handler(conn, header)
            reply.setdefault("id", request_id)
            reply.setdefault("ok", True)
            conn.enqueue_reply(reply, reply_payload)
        except CraqrError as exc:
            conn.enqueue_reply(self._error_header(request_id, exc))

    # -- operations ----------------------------------------------------
    def _op_hello(self, conn: _Connection, header: dict):
        engine = self._engine
        return {
            "server": "craqr-serve",
            "protocol": PROTOCOL,
            "batches_run": engine.batches_run,
            "queries": [h.query.label for h in engine.query_handles()],
            "views": [h.name for h in engine.view_handles()],
            "batch_interval": self._config.batch_interval,
        }, b""

    def _op_ping(self, conn: _Connection, header: dict):
        return {"pong": header.get("nonce")}, b""

    def _op_execute(self, conn: _Connection, header: dict):
        script = header.get("script")
        if not isinstance(script, str):
            raise ServeError("execute needs a 'script' string")
        text_mode = header.get("mode", "json") == "text"
        results = []
        for outcome in self._engine.execute_script(script, on_error="continue"):
            results.append(self._statement_row(outcome, text_mode))
        return {"results": results}, b""

    def _statement_row(self, outcome, text_mode: bool) -> dict:
        statement = type(outcome.statement).__name__
        if not outcome.ok:
            return {
                "statement": statement,
                "ok": False,
                "error": str(outcome.error),
                "error_type": type(outcome.error).__name__,
            }
        result = outcome.result
        row: dict = {"statement": statement, "ok": True}
        if isinstance(result, str):  # EXPLAIN
            row["kind"] = "explain"
            row["text"] = result
            return row
        if isinstance(result, list):  # SHOW QUERIES / SHOW VIEWS
            if result and hasattr(result[0], "aggregate") or statement == "ShowViewsStatement":
                row["kind"] = "views"
                row["rows"] = [_view_row(info) for info in result]
                if text_mode:
                    row["text"] = views_table(result).render()
            else:
                row["kind"] = "sessions"
                row["rows"] = [_session_row(info) for info in result]
                if text_mode:
                    row["text"] = sessions_table(result).render()
            return row
        if hasattr(result, "spec"):  # ViewHandle
            row["kind"] = "view"
            row["view"] = {
                "name": result.name,
                "on": result.query_label,
                "spec": result.spec.describe(),
                "active": result.is_active(),
                "frames_emitted": result.buffer.frames_emitted,
            }
            return row
        # QueryHandle (ACQUIRE / ALTER / STOP)
        row["kind"] = "query"
        row["query"] = {
            "label": result.query.label,
            "attribute": result.query.attribute,
            "rate": result.query.rate,
            "region_area": result.query.region.area,
            "active": result.is_active(),
            "paused": result.is_paused(),
            "total_tuples": result.buffer.total_tuples,
        }
        return row

    def _op_run(self, conn: _Connection, header: dict):
        batches = header.get("batches", 1)
        if not isinstance(batches, int) or batches <= 0:
            raise ServeError("run needs a positive integer 'batches'")
        if batches > 10_000:
            raise ServeError("run is capped at 10000 batches per request")
        engine = self._engine
        before = engine.total_tuples_delivered()
        self._run_batches(batches)
        return {
            "batches": batches,
            "batches_run": engine.batches_run,
            "tuples_delivered": engine.total_tuples_delivered() - before,
        }, b""

    def _op_fetch(self, conn: _Connection, header: dict):
        token = header.get("token")
        tail = bool(header.get("tail", False))
        if "query" in header:
            buffer = self._engine.query(header["query"]).buffer
            if token is not None:
                cursor = result_cursor_from_token(buffer, token)
            else:
                cursor = buffer.cursor(tail=tail)
            batch = cursor.fetch_batch()  # StorageError surfaces structured
            payload = encode_tuple_batch(batch) if len(batch) else b""
            return {
                "kind": "batch",
                "count": len(batch),
                "token": result_token(cursor),
            }, payload
        if "view" in header:
            buffer = self._engine.view(header["view"]).buffer
            if token is not None:
                cursor = frame_cursor_from_token(buffer, token)
            else:
                cursor = buffer.cursor(tail=tail)
            frames = cursor.fetch()  # StorageError surfaces structured
            payload = pack_payloads([encode_view_frame(f) for f in frames])
            return {
                "kind": "frames",
                "count": len(frames),
                "token": frame_token(cursor),
            }, payload
        raise ServeError("fetch needs a 'query' label or a 'view' name")

    def _op_subscribe(self, conn: _Connection, header: dict):
        policy = header.get("policy", self._config.backpressure)
        capacity = header.get("queue_events", self._config.queue_events)
        if not isinstance(capacity, int) or capacity <= 0:
            raise ServeError("queue_events must be a positive integer")
        token = header.get("token")
        sub_id = conn.next_sub_id()
        queue = SubscriberQueue(
            capacity=capacity, policy=policy, tag=(conn.id, sub_id)
        )
        if "query" in header:
            label = self._engine.query(header["query"]).query.label
            buffer = self._engine.query(label).buffer
            resume = self._fanout.subscribe_query(
                label, buffer, queue, token=token
            )
            target = {"query": label}
        elif "view" in header:
            handle = self._engine.view(header["view"])
            resume = self._fanout.subscribe_view(
                handle.name, handle.buffer, queue, token=token
            )
            target = {"view": handle.name}
        else:
            raise ServeError("subscribe needs a 'query' label or a 'view' name")
        conn.subscriptions[sub_id] = queue
        reply = {"sub": sub_id, "policy": policy, "token": resume}
        reply.update(target)
        return reply, b""

    def _op_unsubscribe(self, conn: _Connection, header: dict):
        sub_id = header.get("sub")
        queue = conn.subscriptions.pop(sub_id, None)
        if queue is None:
            raise ServeError(f"no subscription {sub_id!r} on this connection")
        self._fanout.unsubscribe(queue)
        return {"sub": sub_id, "unsubscribed": True}, b""

    def _op_health(self, conn: _Connection, header: dict):
        label = header.get("query")
        if not isinstance(label, str):
            raise ServeError("health needs a 'query' label")
        handle = self._engine.query(label)
        return {"query": handle.query.label, "text": health_table(self._engine, handle).render()}, b""

    def _op_checkpoint(self, conn: _Connection, header: dict):
        path = self._engine.checkpoint(header.get("path"))
        return {"path": str(path), "batches_run": self._engine.batches_run}, b""

    def _op_shutdown(self, conn: _Connection, header: dict):
        if self._stopping is not None:
            asyncio.get_running_loop().call_soon(self._stopping.set)
        return {"stopping": True}, b""


def serve_in_thread(engine, config: Optional[ServeConfig] = None):
    """Run a :class:`Server` on a daemon thread (tests and benchmarks).

    Returns ``(server, address, stop)`` where ``stop()`` shuts the server
    down and joins the thread.  The engine must not be touched from the
    calling thread while the server is live.
    """
    server = Server(engine, config)
    started = threading.Event()
    box: dict = {}

    def _runner() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        box["loop"] = loop

        async def _main() -> None:
            box["address"] = await server.start()
            started.set()
            await server.serve_forever()

        try:
            loop.run_until_complete(_main())
        except Exception as exc:  # pragma: no cover - surfaced via box
            box["error"] = exc
            started.set()
        finally:
            loop.close()

    thread = threading.Thread(target=_runner, name="craqr-serve", daemon=True)
    thread.start()
    if not started.wait(timeout=30) or "error" in box:
        raise ServeError(f"server failed to start: {box.get('error')}")

    def _stop() -> None:
        loop = box["loop"]
        if thread.is_alive():
            asyncio.run_coroutine_threadsafe(server.stop(), loop)
            thread.join(timeout=30)

    return server, box["address"], _stop
