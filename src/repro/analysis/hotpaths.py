"""The hot-path manifest the CRQ4xx purity rules enforce.

Functions listed here are the per-batch inner loops whose cost the
benchmark suite gates (``BENCH_world.json`` / ``BENCH_plan.json`` /
``BENCH_views.json`` / ``BENCH_serve.json``): the fused acquisition
round, compiled chain execution, the incremental view fold and the
serve-layer fan-out.  Inside them, per-row Python iteration is a
regression by construction — the analyzer flags ``.tolist()`` calls,
``range(len(...))`` / ``zip(...)`` row loops and object construction
inside loops (see ``docs/craqr_lint.md``).

Registering a new hot path is one line here; the analyzer then fails
the build when the function regresses to per-row Python, and fails it
too when the entry goes stale (``CRQ404``) because the function moved
or was renamed.  Loops that are per-*cell* or per-*group* (bounded by
topology, not by batch size) are acknowledged at the offending line
with ``# craqr: ignore[CRQ40x]`` and a justification.
"""

from __future__ import annotations

from typing import List, Tuple

#: ``(package-relative module path, dotted symbol)`` pairs.
HOT_PATHS: List[Tuple[str, str]] = [
    # Fused fast-sim acquisition (PR 3): one bucketing pass, one draw per
    # attribute.  Per-row Python here undoes the ~4x fused-round win.
    ("repro/sensing/handler.py", "RequestResponseHandler._bucket_sensors"),
    (
        "repro/sensing/handler.py",
        "RequestResponseHandler._resolve_cell_populations",
    ),
    (
        "repro/sensing/handler.py",
        "RequestResponseHandler.acquire_attribute_batch",
    ),
    ("repro/sensing/handler.py", "RequestResponseHandler._fused_sensor_choices"),
    ("repro/sensing/handler.py", "RequestResponseHandler._fused_request_times"),
    # Compiled per-batch chain execution (PR 8): flat numpy kernels with
    # survivor-index composition; a Python row loop re-interprets the chain.
    ("repro/plan/executor.py", "ChainProgram.run"),
    # Incremental view maintenance (PR 5): one lexsort + segment reductions
    # per delivered batch; history is never rescanned.
    ("repro/views/view.py", "ContinuousView.on_delivery"),
    ("repro/views/view.py", "ContinuousView._fold_sorted"),
    # Serve-layer fan-out (PR 9): encode once per publish, queue appends
    # per subscriber — never per row.
    ("repro/serve/fanout.py", "FrameFanout.publish"),
    ("repro/serve/fanout.py", "FrameFanout._publish_topic"),
    # Columnar delivery into result buffers (PR 1/4).
    ("repro/storage/result_buffer.py", "QueryResultBuffer.extend_batch"),
]


def default_hot_paths() -> List[Tuple[str, str]]:
    """The committed manifest (copied, so callers can extend safely)."""
    return list(HOT_PATHS)
