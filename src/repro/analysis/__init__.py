"""craqr-lint: the repo's own contract checker.

A rule-based static analyzer (stdlib ``ast`` only) that enforces the
invariants the engine's correctness rests on but no general-purpose
tool can see:

* **CRQ1xx** — RNG stream discipline (seeded byte-identity),
* **CRQ2xx** — batch-protocol completeness (fast-path dispatch),
* **CRQ3xx** — snapshot state coverage (crash-recovery contract),
* **CRQ4xx** — hot-path purity (no per-row Python in gated loops),
* **CRQ5xx** — wire-schema consistency (serve client/server literals).

Run it with ``python -m repro.analysis`` or ``python -m repro.cli
lint``; see ``docs/craqr_lint.md`` for the rule reference, suppression
syntax and the baseline workflow.  The committed baseline is empty and
``tests/analysis/test_self_clean.py`` keeps it that way in tier 1.
"""

from .findings import (
    DEFAULT_BASELINE_NAME,
    Finding,
    load_baseline,
    save_baseline,
)
from .hotpaths import HOT_PATHS, default_hot_paths
from .registry import all_codes, all_rules
from .runner import AnalysisReport, analyze, render

__all__ = [
    "AnalysisReport",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "HOT_PATHS",
    "all_codes",
    "all_rules",
    "analyze",
    "default_hot_paths",
    "load_baseline",
    "render",
    "save_baseline",
]
