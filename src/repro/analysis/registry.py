"""Rule registration.

A rule is a callable ``check(project, context) -> iterable[Finding]``
registered with :func:`rule`.  Registration carries the rule family's
codes and one-line rationales, which is what the ``--explain`` output
and the documentation generator read — a rule cannot ship without
documenting its codes.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, NamedTuple


class RuleSpec(NamedTuple):
    name: str
    codes: Dict[str, str]  # code -> one-line rationale
    check: Callable


_RULES: List[RuleSpec] = []


def rule(name: str, codes: Dict[str, str]):
    """Register one rule family (decorator)."""

    def decorate(fn: Callable) -> Callable:
        _RULES.append(RuleSpec(name=name, codes=dict(codes), check=fn))
        return fn

    return decorate


def all_rules() -> List[RuleSpec]:
    """Every registered rule, in registration order."""
    from . import rules  # noqa: F401 - registration side effect

    return list(_RULES)


def all_codes() -> Dict[str, str]:
    """Every documented code -> rationale (meta codes included)."""
    from .findings import PARSE_ERROR, STALE_BASELINE

    codes = {
        PARSE_ERROR: "file could not be parsed",
        STALE_BASELINE: "baseline entry matches no current finding",
    }
    for spec in all_rules():
        codes.update(spec.codes)
    return codes
