"""Analyzer orchestration: load, check, suppress, baseline, render.

:func:`analyze` is the programmatic entry point (the CLI and the tier-1
self-scan test both go through it): parse the requested tree, run every
registered rule, drop findings waived by inline ``# craqr: ignore``
comments, then split what remains against the committed baseline.
Exit-code policy lives in :func:`main_result`: 0 clean, 1 findings
(including stale baseline entries), with usage/internal errors (exit 2)
handled by ``__main__``.
"""

from __future__ import annotations

import dataclasses
import json
from typing import List, Optional, Sequence, Tuple

from .findings import (
    Finding,
    apply_baseline,
    is_suppressed,
    load_baseline,
    save_baseline,
)
from .hotpaths import default_hot_paths
from .project import Project, load_project
from .registry import all_rules


@dataclasses.dataclass
class AnalysisContext:
    """Per-run configuration handed to every rule."""

    hot_paths: List[Tuple[str, str]]
    hot_paths_strict: bool = False


@dataclasses.dataclass
class AnalysisReport:
    """Everything one run produced."""

    findings: List[Finding]  # un-waived findings (incl. stale entries)
    baselined: int  # findings waived by the baseline
    suppressed: int  # findings waived by inline comments
    checked_files: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def to_json(self) -> dict:
        return {
            "ok": self.ok,
            "checked_files": self.checked_files,
            "baselined": self.baselined,
            "suppressed": self.suppressed,
            "findings": [f.to_json() for f in self.findings],
        }

    def render_text(self) -> str:
        lines = [f.render() for f in self.findings]
        summary = (
            f"{len(self.findings)} finding(s) in {self.checked_files} "
            f"file(s) ({self.baselined} baselined, "
            f"{self.suppressed} suppressed inline)"
        )
        return "\n".join(lines + [summary])


def run_rules(project: Project, context: AnalysisContext) -> List[Finding]:
    """All raw findings from every registered rule, sorted."""
    findings: List[Finding] = list(project.parse_errors)
    for spec in all_rules():
        findings.extend(spec.check(project, context))
    return sorted(findings)


def analyze(
    paths: Sequence,
    *,
    baseline_path=None,
    write_baseline: bool = False,
    hot_paths: Optional[List[Tuple[str, str]]] = None,
) -> AnalysisReport:
    """Run the full analyzer over ``paths``.

    ``baseline_path`` (optional) names the committed baseline JSON;
    ``write_baseline=True`` rewrites it to cover exactly the current
    findings (the escape hatch for adopting the linter mid-stream).
    ``hot_paths`` overrides the committed manifest — fixture tests pass
    a synthetic manifest; the CLI always uses the committed one.
    """
    project = load_project(paths)
    context = AnalysisContext(
        hot_paths=hot_paths if hot_paths is not None else default_hot_paths(),
        hot_paths_strict=hot_paths is not None,
    )
    raw = run_rules(project, context)

    kept: List[Finding] = []
    suppressed = 0
    for finding in raw:
        module = project.module(finding.path)
        if module is not None and is_suppressed(finding, module.suppressions):
            suppressed += 1
        else:
            kept.append(finding)

    baselined = 0
    if baseline_path is not None:
        if write_baseline:
            save_baseline(baseline_path, kept)
        entries = load_baseline(baseline_path)
        kept, baselined, stale = apply_baseline(kept, entries, str(baseline_path))
        kept = sorted(kept + stale)

    return AnalysisReport(
        findings=kept,
        baselined=baselined,
        suppressed=suppressed,
        checked_files=len(project.modules),
    )


def render(report: AnalysisReport, fmt: str) -> str:
    if fmt == "json":
        return json.dumps(report.to_json(), indent=2)
    return report.render_text()
