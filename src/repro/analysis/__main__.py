"""``python -m repro.analysis`` — the craqr-lint command line.

Exit codes follow the tooling contract asserted in ``tests/test_cli.py``:

* ``0`` — no un-waived findings,
* ``1`` — findings (new violations or stale baseline entries),
* ``2`` — usage or internal error.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Optional, Sequence

from .findings import DEFAULT_BASELINE_NAME
from .registry import all_codes
from .runner import analyze, render


def _default_paths() -> list:
    """The package's own source tree (``src/repro``), wherever installed."""
    return [pathlib.Path(__file__).resolve().parent.parent]


def _default_baseline(paths) -> Optional[pathlib.Path]:
    """The committed baseline: first hit walking up from the scan root."""
    start = pathlib.Path(paths[0]).resolve()
    if start.is_file():
        start = start.parent
    for candidate in (start, *start.parents):
        baseline = candidate / DEFAULT_BASELINE_NAME
        if baseline.exists():
            return baseline
    return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="craqr-lint: static contract checker for the engine's "
        "RNG, snapshot, protocol, hot-path and wire invariants",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: the installed "
        "repro package source)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline JSON path (default: nearest {DEFAULT_BASELINE_NAME} "
        "above the scan root; 'none' disables baselining)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to cover exactly the current findings",
    )
    parser.add_argument(
        "--explain",
        action="store_true",
        help="list every rule code with its rationale and exit",
    )
    return parser


def main(
    argv: Optional[Sequence[str]] = None, out=print
) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors, 0 on --help: pass both through.
        return int(exc.code or 0)

    if args.explain:
        for code, rationale in sorted(all_codes().items()):
            out(f"{code}  {rationale}")
        return 0

    try:
        paths = [pathlib.Path(p) for p in args.paths] or _default_paths()
        for path in paths:
            if not path.exists():
                out(f"error: no such path: {path}")
                return 2
        if args.baseline == "none":
            baseline = None
        elif args.baseline is not None:
            baseline = pathlib.Path(args.baseline)
        else:
            baseline = _default_baseline(paths)
        if args.write_baseline and baseline is None:
            out("error: --write-baseline needs --baseline PATH")
            return 2
        report = analyze(
            paths,
            baseline_path=baseline,
            write_baseline=args.write_baseline,
        )
    except ValueError as exc:  # e.g. a corrupt baseline file
        out(f"error: {exc}")
        return 2
    out(render(report, args.format))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
