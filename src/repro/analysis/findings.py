"""Findings, inline suppressions and the committed baseline.

A :class:`Finding` is one rule violation anchored to a file position and
an enclosing *symbol* (the dotted class/function path), which is what
makes baselining stable: line numbers drift with every edit, but
``(code, path, symbol)`` survives reformatting and unrelated changes.

Two escape hatches exist, with different intended lifetimes:

* **Inline suppression** — ``# craqr: ignore[CRQ401]`` on the flagged
  line acknowledges a *permanent, justified* exception (e.g. a per-cell
  loop in a hot path that a reviewer has decided is not per-row work).
  A bare ``# craqr: ignore`` suppresses every code on that line.
* **Baseline** — a committed JSON file grandfathering *temporary* debt
  so the linter can gate CI while old findings are paid down.  Entries
  that no longer match any finding are reported as *stale* (code
  ``CRQ002``) so the baseline can only shrink, never silently rot.

The shipped baseline for this repository is empty — see
``tests/analysis/test_self_clean.py``, which is the tier-1 guard.
"""

from __future__ import annotations

import dataclasses
import io
import json
import pathlib
import re
import tokenize
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

#: Meta-code for a file the analyzer could not parse.
PARSE_ERROR = "CRQ001"

#: Meta-code for a baseline entry that matches no current finding.
STALE_BASELINE = "CRQ002"

#: Baseline file name looked up at the repository root by default.
DEFAULT_BASELINE_NAME = "craqr-baseline.json"

_SUPPRESS_RE = re.compile(
    r"craqr:\s*ignore(?:\[(?P<codes>[A-Za-z0-9_,\s]+)\])?"
)


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source position.

    ``path`` is package-relative (``repro/sensing/handler.py``) so runs
    from any working directory produce identical findings; ``symbol`` is
    the dotted path of the enclosing definition (empty at module level).
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    symbol: str = ""

    @property
    def baseline_key(self) -> Tuple[str, str, str]:
        """The identity a baseline entry matches on."""
        return (self.code, self.path, self.symbol)

    def to_json(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }

    def render(self) -> str:
        location = f"{self.path}:{self.line}:{self.col}"
        return f"{location}: {self.code} {self.message}"


def collect_suppressions(source: str) -> Dict[int, Optional[FrozenSet[str]]]:
    """Map line number -> suppressed codes (``None`` means *all* codes).

    Comments are found with :mod:`tokenize` rather than a per-line regex
    so a string literal that happens to contain the marker never
    suppresses anything.  Unreadable sources yield no suppressions (the
    analyzer reports the parse failure separately).
    """
    suppressions: Dict[int, Optional[FrozenSet[str]]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            line = token.start[0]
            codes = match.group("codes")
            if codes is None:
                suppressions[line] = None
            else:
                parsed = frozenset(
                    c.strip().upper() for c in codes.split(",") if c.strip()
                )
                previous = suppressions.get(line, frozenset())
                if previous is None:
                    continue  # a bare ignore already covers the line
                suppressions[line] = previous | parsed
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    return suppressions


def is_suppressed(
    finding: Finding, suppressions: Dict[int, Optional[FrozenSet[str]]]
) -> bool:
    """Whether an inline comment on the finding's line waives it."""
    codes = suppressions.get(finding.line, frozenset())
    if codes is None:
        return True
    return finding.code in codes


# ----------------------------------------------------------------------
# Baseline file
# ----------------------------------------------------------------------
def load_baseline(path) -> List[Tuple[str, str, str]]:
    """Read baseline entries as ``(code, path, symbol)`` keys.

    A missing file is an empty baseline; a malformed one raises
    ``ValueError`` so a corrupted baseline fails the run loudly instead
    of silently waiving findings.
    """
    file_path = pathlib.Path(path)
    if not file_path.exists():
        return []
    try:
        payload = json.loads(file_path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline file {file_path} is not valid JSON: {exc}")
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError(
            f"baseline file {file_path} must be an object with an 'entries' list"
        )
    entries: List[Tuple[str, str, str]] = []
    for raw in payload["entries"]:
        if not isinstance(raw, dict) or "code" not in raw or "path" not in raw:
            raise ValueError(
                f"baseline entry {raw!r} needs at least 'code' and 'path'"
            )
        entries.append(
            (str(raw["code"]), str(raw["path"]), str(raw.get("symbol", "")))
        )
    return entries


def save_baseline(path, findings: Sequence[Finding]) -> None:
    """Write the baseline covering exactly the given findings."""
    keys = sorted({f.baseline_key for f in findings})
    payload = {
        "version": 1,
        "entries": [
            {"code": code, "path": rel_path, "symbol": symbol}
            for code, rel_path, symbol in keys
        ],
    }
    pathlib.Path(path).write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8"
    )


def apply_baseline(
    findings: Sequence[Finding],
    entries: Sequence[Tuple[str, str, str]],
    baseline_path: str,
) -> Tuple[List[Finding], int, List[Finding]]:
    """Split findings into (new, baselined count, stale-entry findings).

    An entry waives every finding sharing its ``(code, path, symbol)``
    key; entries that waive nothing come back as ``CRQ002`` findings
    anchored to the baseline file itself, so a fixed violation forces the
    baseline entry's removal in the same change.
    """
    entry_set = set(entries)
    fresh: List[Finding] = []
    matched: set = set()
    baselined = 0
    for finding in findings:
        if finding.baseline_key in entry_set:
            matched.add(finding.baseline_key)
            baselined += 1
        else:
            fresh.append(finding)
    stale = [
        Finding(
            path=str(baseline_path),
            line=1,
            col=0,
            code=STALE_BASELINE,
            message=(
                f"stale baseline entry {code} at {rel_path!r}"
                + (f" ({symbol})" if symbol else "")
                + " matches no finding; remove it"
            ),
            symbol=symbol,
        )
        for code, rel_path, symbol in sorted(entry_set - matched)
    ]
    return fresh, baselined, stale
