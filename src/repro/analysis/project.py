"""Parsed-source index the rules run against.

A :class:`Project` is the unit of one analyzer run: every ``.py`` file
under the requested paths, parsed once, with package-relative paths,
precomputed inline suppressions and a few shared AST conveniences
(import resolution, enclosing-symbol lookup, class indexing) so each
rule stays a focused traversal instead of reinventing scaffolding.

Paths are *package-relative*: ``.../src/repro/sensing/handler.py``
indexes as ``repro/sensing/handler.py`` (the chain of ``__init__.py``
parents), and a loose fixture file indexes relative to its scan root.
That keeps findings and baseline entries identical no matter which
directory the analyzer is invoked from.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .findings import Finding, PARSE_ERROR, collect_suppressions


@dataclasses.dataclass
class Module:
    """One parsed source file."""

    path: str  # package-relative posix path (stable across machines)
    abspath: pathlib.Path
    source: str
    tree: ast.Module
    suppressions: dict

    @property
    def lines(self) -> List[str]:
        return self.source.splitlines()


class Project:
    """Every module of one analyzer run, plus lookup indexes."""

    def __init__(self) -> None:
        self.modules: List[Module] = []
        self.parse_errors: List[Finding] = []
        self._by_path: Dict[str, Module] = {}

    # -- construction --------------------------------------------------
    def add(self, module: Module) -> None:
        self.modules.append(module)
        self._by_path[module.path] = module

    # -- lookups -------------------------------------------------------
    def module(self, path: str) -> Optional[Module]:
        """Exact package-relative path lookup."""
        return self._by_path.get(path)

    def module_by_suffix(self, suffix: str) -> Optional[Module]:
        """The unique module whose path ends with ``suffix`` (if any)."""
        matches = [m for m in self.modules if m.path.endswith(suffix)]
        return matches[0] if len(matches) == 1 else None

    def has_path(self, path: str) -> bool:
        return path in self._by_path

    def iter_classes(self) -> Iterator[Tuple[Module, ast.ClassDef]]:
        """Every class definition in the project (any nesting level)."""
        for module in self.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, ast.ClassDef):
                    yield module, node

    def find_class(self, name: str) -> Optional[Tuple[Module, ast.ClassDef]]:
        """The unique project class with this name, if exactly one exists."""
        matches = [
            (module, node)
            for module, node in self.iter_classes()
            if node.name == name
        ]
        return matches[0] if len(matches) == 1 else None

    def find_function(
        self, name: str
    ) -> Optional[Tuple[Module, ast.FunctionDef]]:
        """The unique project module-level function with this name."""
        matches = []
        for module in self.modules:
            for node in module.tree.body:
                if (
                    isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name == name
                ):
                    matches.append((module, node))
        return matches[0] if len(matches) == 1 else None


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def package_relative(file_path: pathlib.Path, scan_root: pathlib.Path) -> str:
    """Stable identity of one source file (see module docstring)."""
    file_path = file_path.resolve()
    top = file_path.parent
    while (top / "__init__.py").exists() and top.parent != top:
        top = top.parent
    if (file_path.parent / "__init__.py").exists():
        return file_path.relative_to(top).as_posix()
    try:
        return file_path.relative_to(scan_root.resolve()).as_posix()
    except ValueError:
        return file_path.name


def load_project(paths: Sequence) -> Project:
    """Parse every ``.py`` file under the given files/directories."""
    project = Project()
    seen = set()
    for raw in paths:
        root = pathlib.Path(raw)
        if root.is_dir():
            files = sorted(root.rglob("*.py"))
            scan_root = root
        else:
            files = [root]
            scan_root = root.parent
        for file_path in files:
            resolved = file_path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            rel = package_relative(file_path, scan_root)
            try:
                source = file_path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(file_path))
            except (OSError, SyntaxError, ValueError) as exc:
                project.parse_errors.append(
                    Finding(
                        path=rel,
                        line=getattr(exc, "lineno", 1) or 1,
                        col=0,
                        code=PARSE_ERROR,
                        message=f"could not parse file: {exc}",
                    )
                )
                continue
            project.add(
                Module(
                    path=rel,
                    abspath=resolved,
                    source=source,
                    tree=tree,
                    suppressions=collect_suppressions(source),
                )
            )
    return project


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------
def import_map(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted origin for every top-level-ish import.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random
    import default_rng as mk`` maps ``mk -> numpy.random.default_rng``.
    All imports in the file are collected (including ones inside
    functions) — for linting, a shadowed alias is not worth modeling.
    """
    mapping: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                mapping[local] = alias.name if alias.asname else local
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                local = alias.asname or alias.name
                mapping[local] = f"{node.module}.{alias.name}"
    return mapping


def resolve_dotted(node: ast.AST, imports: Dict[str, str]) -> Optional[str]:
    """The dotted origin of a Name/Attribute chain, through the imports.

    ``np.random.default_rng`` resolves to ``numpy.random.default_rng``
    when ``np`` aliases numpy; unknown bases resolve to ``None``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = imports.get(node.id)
    if base is None:
        return None
    parts.append(base)
    return ".".join(reversed(parts))


def qualified_definitions(
    tree: ast.Module,
) -> Iterator[Tuple[str, ast.AST]]:
    """``(dotted symbol, node)`` for every class/function definition."""

    def visit(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                name = f"{prefix}.{child.name}" if prefix else child.name
                yield name, child
                yield from visit(child, name)

    yield from visit(tree, "")


def enclosing_symbol(tree: ast.Module, line: int) -> str:
    """The innermost definition containing a line (for baseline keys)."""
    best = ""
    best_span = None
    for name, node in qualified_definitions(tree):
        start = node.lineno
        end = getattr(node, "end_lineno", start) or start
        if start <= line <= end:
            span = end - start
            if best_span is None or span <= best_span:
                best, best_span = name, span
    return best


def function_params(node) -> List[str]:
    """All positional/keyword parameter names of a function definition."""
    args = node.args
    names = [a.arg for a in args.posonlyargs]
    names += [a.arg for a in args.args]
    names += [a.arg for a in args.kwonlyargs]
    if args.vararg is not None:
        names.append(args.vararg.arg)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return names


def walk_function_body(node) -> Iterator[ast.AST]:
    """Walk a function's own statements, skipping nested def/class bodies.

    Nested definitions get their own visit from rules that care; a
    helper closure with its own ``rng`` parameter must not inherit its
    parent's obligations.
    """
    stack = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        yield current
        if isinstance(
            current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(current))


def init_attributes(class_node: ast.ClassDef) -> Dict[str, int]:
    """``self.X`` attributes assigned in ``__init__`` -> first line."""
    attrs: Dict[str, int] = {}
    for item in class_node.body:
        if isinstance(item, ast.FunctionDef) and item.name == "__init__":
            for node in walk_function_body(item):
                targets: List[ast.AST] = []
                if isinstance(node, ast.Assign):
                    targets = list(node.targets)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    targets = [node.target]
                for target in targets:
                    for leaf in ast.walk(target):
                        if (
                            isinstance(leaf, ast.Attribute)
                            and isinstance(leaf.value, ast.Name)
                            and leaf.value.id == "self"
                        ):
                            attrs.setdefault(leaf.attr, leaf.lineno)
    return attrs


def class_method(class_node: ast.ClassDef, name: str):
    """A method defined directly in the class body, if present."""
    for item in class_node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if item.name == name:
                return item
    return None


def string_tuple_assignment(
    class_node: ast.ClassDef, name: str
) -> Optional[Tuple[List[str], int]]:
    """A class-level ``NAME = ("a", "b")`` declaration, if present."""
    for item in class_node.body:
        value = None
        if isinstance(item, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == name for t in item.targets
            ):
                value = item.value
        elif isinstance(item, ast.AnnAssign):
            if isinstance(item.target, ast.Name) and item.target.id == name:
                value = item.value
        if value is None:
            continue
        if isinstance(value, (ast.Tuple, ast.List)):
            names = [
                e.value
                for e in value.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            ]
            if len(names) == len(value.elts):
                return names, item.lineno
        return None, item.lineno  # declared but not a plain string tuple
    return None
