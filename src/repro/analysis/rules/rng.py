"""CRQ1xx — RNG stream discipline (the byte-identity contract).

Seeded byte-identity (``tests/recovery/``, ``tests/faults/``,
``tests/plan/test_compiled_equivalence.py``) holds only if every random
draw flows through an *owned* ``np.random.Generator``: the world stream,
a child spawned from it, an operator's reseeded stream, or the fault
injector's private plan-seeded stream.  One draw from a global or
OS-seeded stream anywhere in the engine silently breaks the golden
hashes — long after the offending line was written.

* ``CRQ101`` — the stdlib ``random`` module is imported.  It is a
  process-global stream; nothing in ``src/repro`` may touch it.
* ``CRQ102`` — a call through numpy's module-level global stream
  (``np.random.random()``, ``np.random.seed()``, ...).  Draws must go
  through a ``Generator`` instance that some object owns.
* ``CRQ103`` — ``np.random.default_rng()`` *without a seed argument*
  outside the sanctioned entropy module (``repro/rng.py``).  Explicitly
  seeded construction — ``default_rng(config.seed)``, or spawning a
  child via ``default_rng(parent.integers(...))`` — is the sanctioned
  pattern and is allowed anywhere.
* ``CRQ104`` — a function that *takes* an ``rng`` parameter also
  reaches a global or fresh OS-seeded stream.  Accepting a stream is a
  promise to use only that stream; the fallback idiom ``rng if rng is
  not None else np.random.default_rng()`` must go through
  :func:`repro.rng.ensure_rng` so the single nondeterministic entry
  point stays auditable.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from ..findings import Finding
from ..project import (
    Module,
    Project,
    enclosing_symbol,
    function_params,
    import_map,
    resolve_dotted,
    walk_function_body,
)
from ..registry import rule

CODES = {
    "CRQ101": "stdlib random module imported (process-global stream)",
    "CRQ102": "call through numpy's module-level global RNG",
    "CRQ103": "unseeded default_rng()/Generator() outside repro/rng.py",
    "CRQ104": "function taking an rng parameter reaches another stream",
}

#: Attribute names on ``numpy.random`` that construct a new stream
#: rather than drawing from the global one.
_CONSTRUCTORS = frozenset({"default_rng", "Generator"})

#: Modules allowed to create unseeded streams: the one audited entropy
#: entry point every seeded caller bypasses by passing its own stream.
SANCTIONED_UNSEEDED = ("repro/rng.py",)


def _is_sanctioned(module: Module) -> bool:
    return any(module.path.endswith(s) for s in SANCTIONED_UNSEEDED)


def _finding(module: Module, node: ast.AST, code: str, message: str) -> Finding:
    return Finding(
        path=module.path,
        line=node.lineno,
        col=node.col_offset,
        code=code,
        message=message,
        symbol=enclosing_symbol(module.tree, node.lineno),
    )


def _check_module(module: Module) -> Iterator[Finding]:
    imports = import_map(module.tree)

    # CRQ101 — stdlib random imports anywhere in the file.
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random" or alias.name.startswith("random."):
                    yield _finding(
                        module,
                        node,
                        "CRQ101",
                        "stdlib 'random' is a process-global stream; draw "
                        "from an owned np.random.Generator instead",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and node.module == "random":
                yield _finding(
                    module,
                    node,
                    "CRQ101",
                    "stdlib 'random' is a process-global stream; draw "
                    "from an owned np.random.Generator instead",
                )

    # Function-aware pass for CRQ102/103/104: visit every function once,
    # remembering whether it owns an ``rng`` parameter, then sweep the
    # module-level remainder.
    def scan(nodes: List[ast.AST], has_rng_param: bool) -> Iterator[Finding]:
        for node in nodes:
            if isinstance(node, ast.Call):
                dotted = resolve_dotted(node.func, imports)
                if dotted is None or not dotted.startswith("numpy.random."):
                    continue
                leaf = dotted.rsplit(".", 1)[1]
                if leaf not in _CONSTRUCTORS:
                    if has_rng_param:
                        yield _finding(
                            module,
                            node,
                            "CRQ104",
                            f"function owns an 'rng' stream but draws from "
                            f"the global {dotted}()",
                        )
                    else:
                        yield _finding(
                            module,
                            node,
                            "CRQ102",
                            f"{dotted}() draws from numpy's global stream; "
                            "use an owned np.random.Generator",
                        )
                elif not node.args and not node.keywords:
                    if _is_sanctioned(module):
                        continue
                    if has_rng_param:
                        yield _finding(
                            module,
                            node,
                            "CRQ104",
                            "function owns an 'rng' stream but falls back "
                            "to an unseeded stream; use "
                            "repro.rng.ensure_rng(rng)",
                        )
                    else:
                        yield _finding(
                            module,
                            node,
                            "CRQ103",
                            f"unseeded np.random.{leaf}() creates an "
                            "OS-entropy stream; seed it explicitly or go "
                            "through repro.rng",
                        )

    def visit_scope(scope: ast.AST, in_function: bool) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(scope):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                owns_rng = "rng" in function_params(child)
                yield from scan(list(walk_function_body(child)), owns_rng)
                yield from visit_scope(child, True)
            elif isinstance(child, ast.ClassDef):
                yield from visit_scope(child, in_function)
            elif not in_function:
                # Module-level statements (or class-level outside methods),
                # pruned at nested definitions — those get their own visit.
                # Statements inside a function were already scanned with
                # that function's rng context.
                direct = [child] + list(walk_function_body(child))
                yield from scan(direct, False)

    yield from visit_scope(module.tree, False)


@rule("RNG stream discipline", CODES)
def check(project: Project, context) -> Iterator[Finding]:
    for module in project.modules:
        yield from _check_module(module)
