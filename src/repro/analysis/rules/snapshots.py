"""CRQ3xx — snapshot/recovery state coverage (the PR 7 contract).

Checkpoints capture the engine *whole-object* precisely so new fields
are pickled by default.  The two ways a field escapes that default are
therefore the two things to police statically:

1. a class's ``__getstate__`` deliberately excludes a key (nulls it in
   the state dict) — then something must provably rebuild it, and
2. a class is serialized through a ``dispatch_table`` reducer that
   enumerates fields by hand — then a new ``__init__`` field silently
   vanishes from snapshots unless the reducer learns about it.

* ``CRQ301`` — a custom ``__getstate__`` does not start from
  ``self.__dict__``: coverage becomes unverifiable, and fields added by
  a future PR are silently dropped rather than captured by default.
* ``CRQ302`` — a key excluded in ``__getstate__`` (overwritten with a
  constant, ``del``-ed or ``pop``-ed) is neither reassigned in
  ``__setstate__`` nor declared in the class's ``_DERIVED_STATE``
  tuple.  The declaration is the reviewable record that restore (or
  lazy rebuild) covers the field.
* ``CRQ303`` — a ``_DERIVED_STATE`` entry that ``__getstate__`` no
  longer excludes: stale declarations hide real exclusions.
* ``CRQ304`` — a ``dispatch_table`` reducer reads a hand-picked set of
  attributes that no longer covers everything the class's ``__init__``
  assigns (reducers reading ``__dict__`` wholesale are always covered).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..findings import Finding
from ..project import (
    Module,
    Project,
    class_method,
    enclosing_symbol,
    init_attributes,
    string_tuple_assignment,
    walk_function_body,
)
from ..registry import rule

CODES = {
    "CRQ301": "__getstate__ not derived from self.__dict__ (opaque coverage)",
    "CRQ302": "key excluded in __getstate__ but not rebuilt or declared derived",
    "CRQ303": "_DERIVED_STATE entry no longer excluded in __getstate__",
    "CRQ304": "dispatch_table reducer misses attributes assigned in __init__",
}

#: Class attribute declaring excluded-and-rebuilt (derived) state keys.
DERIVED_DECLARATION = "_DERIVED_STATE"


def _is_constant_like(node: ast.AST) -> bool:
    """Literals that carry no captured state (None, [], {}, (), 0, "")."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
        return not node.elts
    if isinstance(node, ast.Dict):
        return not node.keys
    return False


def _reads_self_dict(func: ast.FunctionDef) -> bool:
    for node in walk_function_body(func):
        if (
            isinstance(node, ast.Attribute)
            and node.attr == "__dict__"
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return True
    return False


def _excluded_keys(func: ast.FunctionDef) -> Dict[str, int]:
    """State-dict keys the method excludes -> line of the exclusion."""
    excluded: Dict[str, int] = {}

    def key_of(sub: ast.AST) -> Optional[str]:
        if (
            isinstance(sub, ast.Subscript)
            and isinstance(sub.slice, ast.Constant)
            and isinstance(sub.slice.value, str)
        ):
            return sub.slice.value
        return None

    for node in walk_function_body(func):
        if isinstance(node, ast.Assign) and _is_constant_like(node.value):
            for target in node.targets:
                key = key_of(target)
                if key is not None:
                    excluded.setdefault(key, node.lineno)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                key = key_of(target)
                if key is not None:
                    excluded.setdefault(key, node.lineno)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "pop"
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            excluded.setdefault(node.args[0].value, node.lineno)
    return excluded


def _setstate_assigned(func) -> Set[str]:
    """``self.X`` attributes a ``__setstate__`` rebuilds explicitly."""
    assigned: Set[str] = set()
    if func is None:
        return assigned
    for node in walk_function_body(func):
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            for leaf in ast.walk(target):
                if (
                    isinstance(leaf, ast.Attribute)
                    and isinstance(leaf.value, ast.Name)
                    and leaf.value.id == "self"
                ):
                    assigned.add(leaf.attr)
    return assigned


def _check_getstate_classes(project: Project) -> Iterator[Finding]:
    for module, class_node in project.iter_classes():
        getstate = class_method(class_node, "__getstate__")
        if getstate is None:
            continue
        symbol = (
            enclosing_symbol(module.tree, class_node.lineno) or class_node.name
        )

        if not _reads_self_dict(getstate):
            yield Finding(
                path=module.path,
                line=getstate.lineno,
                col=getstate.col_offset,
                code="CRQ301",
                message=(
                    f"{class_node.name}.__getstate__ does not start from "
                    "self.__dict__; fields added later will be silently "
                    "dropped from checkpoints instead of captured by default"
                ),
                symbol=symbol,
            )
            continue

        excluded = _excluded_keys(getstate)
        declared = string_tuple_assignment(class_node, DERIVED_DECLARATION)
        declared_names: List[str] = []
        declared_line = class_node.lineno
        if declared is not None:
            names, declared_line = declared
            declared_names = names or []
        rebuilt = _setstate_assigned(class_method(class_node, "__setstate__"))

        for key, line in sorted(excluded.items(), key=lambda kv: kv[1]):
            if key in declared_names or key in rebuilt:
                continue
            yield Finding(
                path=module.path,
                line=line,
                col=0,
                code="CRQ302",
                message=(
                    f"{class_node.name}.__getstate__ excludes {key!r} but "
                    "nothing rebuilds it: reassign it in __setstate__ or "
                    f"declare it in {DERIVED_DECLARATION}"
                ),
                symbol=symbol,
            )
        for name in declared_names:
            if name not in excluded:
                yield Finding(
                    path=module.path,
                    line=declared_line,
                    col=0,
                    code="CRQ303",
                    message=(
                        f"{class_node.name}.{DERIVED_DECLARATION} lists "
                        f"{name!r} but __getstate__ no longer excludes it; "
                        "remove the stale declaration"
                    ),
                    symbol=symbol,
                )


def _dispatch_entries(module: Module) -> Iterator[Tuple[str, str, int]]:
    """``dispatch_table[Cls] = reducer`` assignments -> (class, reducer, line)."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, (ast.Name, ast.Attribute))
        ):
            continue
        base = target.value
        base_name = base.id if isinstance(base, ast.Name) else base.attr
        if base_name != "dispatch_table":
            continue
        if not isinstance(target.slice, ast.Name):
            continue  # e.g. np.random.Generator: not a project class
        if not isinstance(node.value, ast.Name):
            continue
        yield target.slice.id, node.value.id, node.lineno


def _reducer_reads(func) -> Tuple[bool, Set[str]]:
    """(reads __dict__ wholesale, attributes read off the parameter)."""
    params = [a.arg for a in func.args.args]
    if not params:
        return False, set()
    param = params[0]
    reads: Set[str] = set()
    wholesale = False
    for node in walk_function_body(func):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == param
        ):
            if node.attr == "__dict__":
                wholesale = True
            else:
                reads.add(node.attr)
    return wholesale, reads


def _module_aliases(module: Module) -> Dict[str, str]:
    """Module-level ``name = other_name`` aliases (one hop)."""
    aliases: Dict[str, str] = {}
    for item in module.tree.body:
        if (
            isinstance(item, ast.Assign)
            and len(item.targets) == 1
            and isinstance(item.targets[0], ast.Name)
            and isinstance(item.value, ast.Name)
        ):
            aliases[item.targets[0].id] = item.value.id
    return aliases


def _check_dispatch_tables(project: Project) -> Iterator[Finding]:
    for module in project.modules:
        entries = list(_dispatch_entries(module))
        if not entries:
            continue
        aliases = _module_aliases(module)
        for class_name, reducer_name, line in entries:
            located = project.find_class(class_name)
            if located is None:
                continue  # class outside the analyzed tree
            class_module, class_node = located
            # Follow simple module-level aliases (the snapshot module
            # aliases the shared codec reducer for old-payload compat).
            seen = set()
            while reducer_name in aliases and reducer_name not in seen:
                seen.add(reducer_name)
                reducer_name = aliases[reducer_name]
            reducer = None
            for item in module.tree.body:
                if (
                    isinstance(item, ast.FunctionDef)
                    and item.name == reducer_name
                ):
                    reducer = item
            if reducer is None:
                found = project.find_function(reducer_name)
                if found is not None:
                    reducer = found[1]
            if reducer is None:
                continue  # alias of an alias: out of static reach
            wholesale, reads = _reducer_reads(reducer)
            if wholesale:
                continue
            missing = sorted(
                set(init_attributes(class_node)) - reads
            )
            if missing:
                yield Finding(
                    path=module.path,
                    line=line,
                    col=0,
                    code="CRQ304",
                    message=(
                        f"dispatch_table reducer {reducer_name} for "
                        f"{class_name} never reads __init__-assigned "
                        f"attribute(s) {', '.join(missing)}; snapshots "
                        "would drop them"
                    ),
                    symbol=enclosing_symbol(module.tree, line),
                )


@rule("snapshot state coverage", CODES)
def check(project: Project, context) -> Iterator[Finding]:
    yield from _check_getstate_classes(project)
    yield from _check_dispatch_tables(project)
