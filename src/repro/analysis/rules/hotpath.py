"""CRQ4xx — hot-path purity.

The functions in the :mod:`repro.analysis.hotpaths` manifest are the
per-batch inner loops the benchmark suite gates.  Their speed rests on
staying columnar: one numpy kernel over whole columns, never a Python
statement per row.  The classic regressions are all visible in the AST:

* ``CRQ401`` — ``.tolist()`` materialises a column as Python objects;
  N boxed floats and a list allocation per batch.
* ``CRQ402`` — ``for ... in range(len(...))`` / ``for ... in zip(...)``
  is the per-row iteration idiom; vectorise or hoist it.
* ``CRQ403`` — constructing objects (a CapWords call) inside a loop
  allocates per iteration; build once outside, or build columns.
* ``CRQ404`` — a manifest entry that resolves to nothing: the hot
  function moved or was renamed, and its protection silently lapsed.

Loops bounded by *topology* (cells, groups, taps) rather than batch
size are fine — acknowledge them at the line with
``# craqr: ignore[CRQ40x]`` and a justification, as the fused
acquisition round does for its per-cell bookkeeping.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from ..findings import Finding
from ..project import Module, Project, qualified_definitions
from ..registry import rule

CODES = {
    "CRQ401": ".tolist() in a registered hot path",
    "CRQ402": "per-row loop idiom (range(len)/zip) in a registered hot path",
    "CRQ403": "object construction inside a loop in a registered hot path",
    "CRQ404": "hot-path manifest entry resolves to no function",
}


def _resolve(module: Module, symbol: str):
    for name, node in qualified_definitions(module.tree):
        if name == symbol and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return node
    return None


def _is_per_row_iter(node: ast.expr) -> bool:
    """``range(len(...))`` or ``zip(...)`` as a loop's iterable."""
    if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Name):
        return False
    if node.func.id == "zip":
        return True
    if node.func.id == "range":
        return any(
            isinstance(arg, ast.Call)
            and isinstance(arg.func, ast.Name)
            and arg.func.id == "len"
            for arg in node.args
        )
    return False


def _scan_function(
    module: Module, symbol: str, func
) -> Iterator[Finding]:
    def finding(node: ast.AST, code: str, message: str) -> Finding:
        return Finding(
            path=module.path,
            line=node.lineno,
            col=node.col_offset,
            code=code,
            message=message,
            symbol=symbol,
        )

    loop_depth_of = {}

    def walk(node: ast.AST, depth: int) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # nested helpers are registered separately if hot
            child_depth = depth + (1 if isinstance(child, (ast.For, ast.While)) else 0)
            loop_depth_of[child] = child_depth
            walk(child, child_depth)

    walk(func, 0)

    for node, depth in loop_depth_of.items():
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "tolist"
            ):
                yield finding(
                    node,
                    "CRQ401",
                    f"{symbol} is a registered hot path; .tolist() boxes "
                    "a whole column into Python objects",
                )
            elif (
                depth > 0
                and isinstance(node.func, ast.Name)
                and node.func.id[:1].isupper()
            ):
                yield finding(
                    node,
                    "CRQ403",
                    f"{symbol} is a registered hot path; constructing "
                    f"{node.func.id} inside a loop allocates per "
                    "iteration — hoist it or build columns",
                )
        elif isinstance(node, ast.For) and _is_per_row_iter(node.iter):
            yield finding(
                node,
                "CRQ402",
                f"{symbol} is a registered hot path; a "
                "range(len)/zip loop iterates per row — vectorise it",
            )


@rule("hot-path purity", CODES)
def check(project: Project, context) -> Iterator[Finding]:
    manifest: List[Tuple[str, str]] = context.hot_paths
    # Manifest drift (CRQ404) is only checkable against the real tree:
    # when scanning a fixture subset, entries point outside the project
    # by design.  The full self-scan includes the manifest module itself,
    # which is the signal that every entry must resolve.
    strict = context.hot_paths_strict or project.module_by_suffix(
        "repro/analysis/hotpaths.py"
    ) is not None
    for module_path, symbol in manifest:
        module = project.module_by_suffix(module_path)
        if module is None:
            if strict:
                anchor = project.module_by_suffix("repro/analysis/hotpaths.py")
                yield Finding(
                    path=anchor.path if anchor else module_path,
                    line=1,
                    col=0,
                    code="CRQ404",
                    message=(
                        f"hot-path manifest entry ({module_path!r}, "
                        f"{symbol!r}) names a module not in the analyzed "
                        "tree; update the manifest"
                    ),
                )
            continue
        func = _resolve(module, symbol)
        if func is None:
            yield Finding(
                path=module.path,
                line=1,
                col=0,
                code="CRQ404",
                message=(
                    f"hot-path manifest entry {symbol!r} resolves to no "
                    f"function in {module_path}; the function moved or "
                    "was renamed — update repro.analysis.hotpaths"
                ),
            )
            continue
        yield from _scan_function(module, symbol, func)
