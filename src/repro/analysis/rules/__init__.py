"""Rule modules; importing this package registers every rule family."""

from . import hotpath, protocols, rng, snapshots, wire  # noqa: F401

__all__ = ["hotpath", "protocols", "rng", "snapshots", "wire"]
