"""CRQ5xx — wire-schema consistency between serve client and server.

The serving layer's JSON header schema exists only as string literals
on both ends of the socket (``serve/client.py`` builds headers,
``serve/server.py`` dispatches on them).  Nothing at runtime ties them
together until a request fails in production.  These rules extract both
sides' literals and diff them at lint time:

* ``CRQ501`` — the client emits an ``op`` the server has no
  ``_op_<name>`` handler for.
* ``CRQ502`` — the client sends a header key with an ``op`` whose
  server handler never reads that key (a silently ignored parameter —
  the classic symptom of a renamed field drifting on one side only).
* ``CRQ503`` — a wire magic / protocol-version literal (``CRAQR/...``
  or ``craqr/...``) outside ``serve/protocol.py``: both ends must
  import the one definition, or the handshake drifts.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set, Tuple

from ..findings import Finding
from ..project import Module, Project, enclosing_symbol, walk_function_body
from ..registry import rule

CODES = {
    "CRQ501": "client emits an op the server does not handle",
    "CRQ502": "client sends a header key the server handler never reads",
    "CRQ503": "wire magic/protocol literal outside serve/protocol.py",
}

#: Header keys the transport layer owns (set/read outside op handlers).
TRANSPORT_KEYS = frozenset({"op", "id"})


# ----------------------------------------------------------------------
# Client side: headers built as dict literals (optionally grown by
# ``header["key"] = ...`` assignments on the same variable).
# ----------------------------------------------------------------------
def _client_requests(module: Module) -> Iterator[Tuple[str, Set[str], int]]:
    """``(op, header keys, line)`` for every header the client builds."""
    for name, func in _functions(module):
        body = list(walk_function_body(func))
        # Pass 1: dict literals with a constant "op" entry, wherever they
        # appear (walk order is not statement order, so growth tracking
        # needs every tracked dict known first).
        var_ops: Dict[str, Tuple[str, Set[str], int]] = {}
        for node in body:
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Dict
            ):
                parsed = _op_dict(node.value)
                if parsed is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            var_ops[target.id] = (
                                parsed[0],
                                set(parsed[1]),
                                node.lineno,
                            )
            elif isinstance(node, ast.Call):
                for arg in node.args:
                    if isinstance(arg, ast.Dict):
                        parsed = _op_dict(arg)
                        if parsed is not None:
                            yield parsed[0], set(parsed[1]), arg.lineno
        # Pass 2: ``header["key"] = ...`` grows a tracked header dict.
        for node in body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in var_ops
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)
                    ):
                        var_ops[target.value.id][1].add(target.slice.value)
        for op, keys, line in var_ops.values():
            yield op, keys, line


def _op_dict(node: ast.Dict) -> Optional[Tuple[str, Set[str]]]:
    keys: Set[str] = set()
    op: Optional[str] = None
    for key_node, value_node in zip(node.keys, node.values):
        if not (
            isinstance(key_node, ast.Constant)
            and isinstance(key_node.value, str)
        ):
            return None
        if key_node.value == "op":
            if isinstance(value_node, ast.Constant) and isinstance(
                value_node.value, str
            ):
                op = value_node.value
            else:
                return None  # computed op: out of static reach
        else:
            keys.add(key_node.value)
    if op is None:
        return None
    return op, keys


def _functions(module: Module):
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.name, node


# ----------------------------------------------------------------------
# Server side: ``_op_<name>`` handlers and the header keys they read.
# ----------------------------------------------------------------------
def _header_reads(func, param: str) -> Set[str]:
    reads: Set[str] = set()
    for node in walk_function_body(func):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == param
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            reads.add(node.slice.value)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == param
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            reads.add(node.args[0].value)
    return reads


def _server_handlers(module: Module) -> Dict[str, Tuple[Set[str], object]]:
    """op name -> (header keys its handler reads, handler node)."""
    handlers: Dict[str, Tuple[Set[str], object]] = {}
    for name, func in _functions(module):
        if not name.startswith("_op_"):
            continue
        header_param = None
        for arg in func.args.args:
            if arg.arg == "header":
                header_param = arg.arg
        reads = (
            _header_reads(func, header_param) if header_param else set()
        )
        handlers[name[len("_op_"):]] = (reads, func)
    return handlers


# ----------------------------------------------------------------------
def _check_pair(client: Module, server: Module) -> Iterator[Finding]:
    handlers = _server_handlers(server)
    for op, keys, line in _client_requests(client):
        symbol = enclosing_symbol(client.tree, line)
        if op not in handlers:
            yield Finding(
                path=client.path,
                line=line,
                col=0,
                code="CRQ501",
                message=(
                    f"client emits op {op!r} but the server defines no "
                    f"_op_{op} handler"
                ),
                symbol=symbol,
            )
            continue
        reads, _handler = handlers[op]
        for key in sorted(keys - reads - TRANSPORT_KEYS):
            yield Finding(
                path=client.path,
                line=line,
                col=0,
                code="CRQ502",
                message=(
                    f"client sends header key {key!r} with op {op!r} but "
                    f"_op_{op} never reads it; the schema drifted"
                ),
                symbol=symbol,
            )


def _check_magic_literals(project: Project) -> Iterator[Finding]:
    for module in project.modules:
        if module.path.endswith("serve/protocol.py"):
            continue
        for node in ast.walk(module.tree):
            # Bare-expression strings (docstrings, prose) are inert.
            if isinstance(node, ast.Expr):
                continue
            for child in ast.iter_child_nodes(node):
                if not isinstance(child, ast.Constant):
                    continue
                value = child.value
                text = (
                    value.decode("ascii", "ignore")
                    if isinstance(value, bytes)
                    else value
                    if isinstance(value, str)
                    else ""
                )
                # Assembled at runtime so this rule module does not flag
                # its own detection prefix.
                if text.upper().startswith("CRAQR" + "/"):
                    yield Finding(
                        path=module.path,
                        line=child.lineno,
                        col=child.col_offset,
                        code="CRQ503",
                        message=(
                            f"wire magic/protocol literal {value!r} outside "
                            "serve/protocol.py; import the shared "
                            "definition so client and server cannot drift"
                        ),
                        symbol=enclosing_symbol(module.tree, child.lineno),
                    )
    return


@rule("wire-schema consistency", CODES)
def check(project: Project, context) -> Iterator[Finding]:
    client = project.module_by_suffix("serve/client.py")
    server = project.module_by_suffix("serve/server.py")
    if client is not None and server is not None:
        yield from _check_pair(client, server)
    yield from _check_magic_literals(project)
