"""CRQ2xx — batch-protocol completeness.

The vectorised fast paths dispatch on *protocol* methods: mobility
kernels group by ``batch_key`` (PR 2), stateful participation rides the
six-method vector-state protocol (PR 3), and operators join the
compiled plan path through ``lower_ir()`` (PR 8).  Each protocol is
all-or-nothing — a class implementing half of one doesn't fail loudly,
it silently takes the slow path (or worse, groups incorrectly).  These
rules make partial implementations a lint error at the diff.

* ``CRQ201`` — a mobility model defines ``step_batch`` without
  ``batch_key`` (or the reverse): ``SensingWorld.advance`` groups
  sensors by ``batch_key`` before dispatching ``step_batch`` kernels,
  so each is meaningless without the other.
* ``CRQ202`` — a participation model implements *some* of the
  vector-state protocol's six methods but not all of them: fast-sim
  probes ``vector_state_columns`` and then trusts the other five.
* ``CRQ203`` — an operator defines ``process_batch`` without
  ``lower_ir`` and without the explicit ``interpreted_fallback = True``
  marker acknowledging that chains containing it stay interpreted.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from ..findings import Finding
from ..project import Project, enclosing_symbol
from ..registry import rule

CODES = {
    "CRQ201": "step_batch and batch_key must be implemented together",
    "CRQ202": "participation vector-state protocol is all-or-nothing",
    "CRQ203": "process_batch without lower_ir or interpreted_fallback marker",
}

#: The six methods of the participation vector-state protocol (PR 3).
VECTOR_STATE_PROTOCOL = frozenset(
    {
        "vector_state_columns",
        "vector_state_key",
        "vector_static_params",
        "init_vector_state",
        "vector_probabilities",
        "vector_commit",
    }
)

#: Operator base classes whose subclasses the CRQ203 rule applies to.
OPERATOR_BASES = frozenset({"StreamOperator", "PMATOperator"})


def _method_names(class_node: ast.ClassDef) -> Set[str]:
    return {
        item.name
        for item in class_node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _class_assign_names(class_node: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for item in class_node.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(item, ast.AnnAssign):
            if isinstance(item.target, ast.Name) and item.value is not None:
                names.add(item.target.id)
    return names


def _base_names(class_node: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for base in class_node.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


@rule("batch-protocol completeness", CODES)
def check(project: Project, context) -> Iterator[Finding]:
    for module, class_node in project.iter_classes():
        methods = _method_names(class_node)
        symbol = enclosing_symbol(module.tree, class_node.lineno) or class_node.name

        def finding(code: str, message: str) -> Finding:
            return Finding(
                path=module.path,
                line=class_node.lineno,
                col=class_node.col_offset,
                code=code,
                message=message,
                symbol=symbol,
            )

        # CRQ201 — mobility batch kernels pair with their grouping key.
        has_step_batch = "step_batch" in methods
        has_batch_key = "batch_key" in methods
        if has_step_batch != has_batch_key:
            present, missing = (
                ("step_batch", "batch_key")
                if has_step_batch
                else ("batch_key", "step_batch")
            )
            yield finding(
                "CRQ201",
                f"class {class_node.name} defines {present} without "
                f"{missing}; fast-sim groups kernels by batch_key before "
                "dispatching step_batch",
            )

        # CRQ202 — the vector-state protocol is all six methods or none.
        implemented = methods & VECTOR_STATE_PROTOCOL
        if implemented and implemented != VECTOR_STATE_PROTOCOL:
            missing_names = sorted(VECTOR_STATE_PROTOCOL - implemented)
            yield finding(
                "CRQ202",
                f"class {class_node.name} implements part of the "
                f"vector-state protocol but misses "
                f"{', '.join(missing_names)}; fast-sim probes "
                "vector_state_columns and then trusts the other five",
            )

        # CRQ203 — operators either compile or declare they don't.
        if (
            _base_names(class_node) & OPERATOR_BASES
            and "process_batch" in methods
            and "lower_ir" not in methods
            and "interpreted_fallback" not in _class_assign_names(class_node)
        ):
            yield finding(
                "CRQ203",
                f"operator {class_node.name} defines process_batch but "
                "neither lower_ir() (to join the compiled plan path) nor "
                "the explicit marker 'interpreted_fallback = True'",
            )
