"""Budget tuning driven by rate-violation feedback (Section V, "Budget Tuning").

"The F-operators report the percent rate violation N_v in a batch.  We check
whether N_v is under a user-defined threshold.  If N_v exceeds the
threshold, then the budget beta is increased by delta-beta, otherwise it is
decreased by the same amount.  If the budget cannot be increased beyond a
limit, then the user is requested to either accept the feasible rate or pay
more to obtain the required rate."

:class:`BudgetTuner` implements exactly that control loop over the
request/response handler's per-(attribute, cell) budgets and reports which
pairs hit the budget limit (so the engine can surface the accept-or-pay-more
decision to the user, e.g. by switching on incentives).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..config import BudgetConfig
from ..errors import BudgetError
from ..sensing import RequestResponseHandler

CellKey = Tuple[int, int]
PairKey = Tuple[str, CellKey]


@dataclass(frozen=True)
class BudgetDecision:
    """The tuner's decision for one (attribute, cell) pair in one batch.

    ``fault_attributed`` marks pairs whose rate shortfall the degradation
    tracker classified as fault-caused: their budgets are frozen (raising a
    dead cell's budget buys nothing) and the withheld increase is
    redistributed to healthy violating pairs.
    """

    attribute: str
    cell: CellKey
    violation_percent: float
    old_budget: int
    new_budget: int
    saturated: bool
    fault_attributed: bool = False

    @property
    def changed(self) -> bool:
        """Whether the budget actually moved."""
        return self.new_budget != self.old_budget

    @property
    def direction(self) -> int:
        """+1 for an increase, -1 for a decrease, 0 for no change."""
        if self.new_budget > self.old_budget:
            return 1
        if self.new_budget < self.old_budget:
            return -1
        return 0


class BudgetTuner:
    """Adjusts acquisition budgets from Flatten rate-violation feedback.

    ``history_batches`` optionally bounds the decision history to the most
    recent N :meth:`tune` calls (the engine wires it to
    :attr:`~repro.config.EngineConfig.retention_batches` so a service-mode
    engine runs in bounded memory); ``None`` retains everything.
    """

    def __init__(
        self,
        handler: RequestResponseHandler,
        config: BudgetConfig,
        *,
        history_batches: Optional[int] = None,
    ) -> None:
        if history_batches is not None and history_batches <= 0:
            raise BudgetError("history_batches must be positive (or None)")
        self._handler = handler
        self._config = config
        self._saturated: Dict[PairKey, bool] = {}
        self._history: List[List[BudgetDecision]] = []
        self._history_batches = history_batches

    # ------------------------------------------------------------------
    @property
    def config(self) -> BudgetConfig:
        """The budget configuration (threshold, delta, limits)."""
        return self._config

    @property
    def history(self) -> List[BudgetDecision]:
        """Retained decisions in batch order (flattened across batches)."""
        return [decision for batch in self._history for decision in batch]

    @property
    def saturated_pairs(self) -> List[PairKey]:
        """(attribute, cell) pairs whose budget is pinned at the limit.

        For these the paper asks the user to "either accept the feasible
        rate or pay more to obtain the required rate".
        """
        return [pair for pair, saturated in self._saturated.items() if saturated]

    def budget_for(self, attribute: str, cell: CellKey) -> int:
        """The handler's current budget for the pair."""
        return self._handler.budget_for(attribute, cell)

    # ------------------------------------------------------------------
    def ensure_initial_budget(self, attribute: str, cell: CellKey) -> None:
        """Set the configured initial budget for a pair the first time it is seen."""
        pair = (attribute, cell)
        if pair not in self._saturated:
            self._handler.set_budget(attribute, cell, self._config.initial)
            self._saturated[pair] = False

    def tune(
        self,
        violations: Dict[PairKey, float],
        *,
        degraded: FrozenSet[PairKey] = frozenset(),
    ) -> List[BudgetDecision]:
        """Apply one round of budget adjustments.

        Parameters
        ----------
        violations:
            Last-batch percent rate violation ``N_v`` per (attribute, cell)
            pair, as produced by
            :meth:`repro.core.planner.QueryPlanner.violations`.
        degraded:
            Pairs whose shortfall the degradation tracker attributes to
            faults.  A degraded *violating* pair's budget is frozen instead
            of increased — its population is not answering, so more requests
            only burn cost — and every frozen ``delta`` is pooled and
            redistributed to the healthy violating pairs (worst violation
            first, still capped at the limit): the engine self-heals by
            spending where requests still buy tuples.
        """
        decisions: List[BudgetDecision] = []
        withheld = 0
        redistributable: List[int] = []
        for (attribute, cell), violation in violations.items():
            if violation < 0:
                raise BudgetError("a rate violation percentage cannot be negative")
            pair = (attribute, cell)
            self.ensure_initial_budget(attribute, cell)
            old_budget = self._handler.budget_for(attribute, cell)
            fault_attributed = pair in degraded
            if violation > self._config.violation_threshold:
                if fault_attributed:
                    new_budget = old_budget
                    saturated = False
                    withheld += self._config.delta
                else:
                    desired = old_budget + self._config.delta
                    new_budget = min(desired, self._config.limit)
                    saturated = desired > self._config.limit or new_budget == self._config.limit
                    redistributable.append(len(decisions))
            else:
                new_budget = max(old_budget - self._config.delta, self._config.floor)
                saturated = False
            if new_budget != old_budget:
                self._handler.set_budget(attribute, cell, new_budget)
            self._saturated[pair] = saturated
            decision = BudgetDecision(
                attribute=attribute,
                cell=cell,
                violation_percent=violation,
                old_budget=old_budget,
                new_budget=new_budget,
                saturated=saturated,
                fault_attributed=fault_attributed,
            )
            decisions.append(decision)
        if withheld and redistributable:
            # Worst healthy violation first; each grant is one delta quantum.
            redistributable.sort(
                key=lambda i: decisions[i].violation_percent, reverse=True
            )
            for i in redistributable:
                if withheld < self._config.delta:
                    break
                decision = decisions[i]
                if decision.new_budget >= self._config.limit:
                    continue
                boosted = min(
                    decision.new_budget + self._config.delta, self._config.limit
                )
                withheld -= self._config.delta
                self._handler.set_budget(decision.attribute, decision.cell, boosted)
                saturated = boosted == self._config.limit
                decisions[i] = replace(
                    decision,
                    new_budget=boosted,
                    saturated=decision.saturated or saturated,
                )
                self._saturated[(decision.attribute, decision.cell)] = (
                    decisions[i].saturated
                )
        self._history.append(decisions)
        if (
            self._history_batches is not None
            and len(self._history) > self._history_batches
        ):
            del self._history[: len(self._history) - self._history_batches]
        return decisions
