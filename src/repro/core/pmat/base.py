"""Base class shared by all PMAT operators.

PMAT operators are stream operators (they plug into execution topologies)
that additionally:

* carry an explicit random generator, so whole topologies are reproducible
  from one engine seed;
* know the attribute and region of the point process flowing through them,
  which the planner uses when validating topologies;
* expose simple throughput counters used by the metrics layer.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...errors import StreamError
from ...geometry import RectRegion, Rectangle, Region
from ...rng import ensure_rng
from ...streams import StreamOperator


def coerce_region(region) -> Region:
    """Accept a Rectangle or Region and return a Region."""
    if isinstance(region, Rectangle):
        return RectRegion(region)
    if isinstance(region, Region):
        return region
    raise StreamError(f"expected a Region or Rectangle, got {type(region)!r}")


class PMATOperator(StreamOperator):
    """Common behaviour of point-process transformation operators."""

    def __init__(
        self,
        name: Optional[str] = None,
        *,
        attribute: Optional[str] = None,
        region: Optional[Region] = None,
        outputs: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name, outputs=outputs)
        self._attribute = attribute
        self._region = coerce_region(region) if region is not None else None
        self._rng = ensure_rng(rng)

    @property
    def attribute(self) -> Optional[str]:
        """Attribute of the process flowing through the operator, when known."""
        return self._attribute

    @property
    def region(self) -> Optional[Region]:
        """Spatial extent of the process flowing through the operator, when known."""
        return self._region

    @property
    def rng(self) -> np.random.Generator:
        """The operator's random generator."""
        return self._rng

    def reseed(self, rng: np.random.Generator) -> None:
        """Replace the operator's random generator (used by engine reseeding)."""
        self._rng = rng

    def describe(self) -> str:
        attribute = self._attribute or "*"
        return f"{self.symbol}<{attribute}>[{self.name}]"
