"""Extension PMAT operators.

The paper states "We have researched many more operators than presented
below" (Section IV-B.1) without describing them.  The operators here are the
natural algebraic companions of Flatten/Thin/Partition/Union, each with a
provable effect on a Poisson process:

* :class:`SuperposeOperator` — merges processes of possibly different rates
  on the *same* region; the result is Poisson with the summed rate.
* :class:`ShiftOperator` — displaces every tuple by a fixed space-time
  offset; a Poisson process shifted by a constant stays Poisson with the
  shifted intensity.
* :class:`MarkOperator` — attaches an independent random mark to every
  tuple (the marking theorem: independently marked Poisson processes are
  Poisson on the product space).
* :class:`SampleOperator` — fixed-probability Bernoulli sampling; identical
  in mechanism to Thin but phrased as a probability rather than a rate pair,
  convenient for cost-capping a stream irrespective of its rate.

They are *extensions*: documented as beyond the paper's explicit content.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

import numpy as np

from ...errors import StreamError
from ...streams import SensorTuple, Stream, TupleBatch
from .base import PMATOperator


class SuperposeOperator(PMATOperator):
    """Superpose several processes on the same region into one stream.

    Unlike :class:`~repro.core.pmat.union.UnionOperator`, the inputs may have
    different rates and overlapping (indeed identical) regions; the output is
    a Poisson process whose rate is the sum of the input rates.
    """

    symbol = "S+"

    def __init__(
        self,
        *,
        rates: Optional[Sequence[float]] = None,
        attribute: Optional[str] = None,
        region=None,
        name: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name, attribute=attribute, region=region, outputs=1, rng=rng)
        if rates is not None:
            for rate in rates:
                if rate <= 0:
                    raise StreamError("all superposed rates must be strictly positive")
        self._rates = list(rates) if rates is not None else None
        self._inputs_attached = 0

    @property
    def combined_rate(self) -> Optional[float]:
        """Sum of the declared input rates, when declared."""
        if self._rates is None:
            return None
        return float(sum(self._rates))

    def attach_input(self, upstream: Stream) -> None:
        """Subscribe this operator to one more upstream stream."""
        upstream.subscribe(self.accept)
        self._inputs_attached += 1

    def process(self, item: SensorTuple) -> None:
        self.emit(item)


class ShiftOperator(PMATOperator):
    """Shift every tuple by a constant space-time displacement."""

    symbol = "SH"
    #: No lower_ir(): runs via the interpreted per-tuple path by design.
    interpreted_fallback = True

    def __init__(
        self,
        *,
        dt: float = 0.0,
        dx: float = 0.0,
        dy: float = 0.0,
        attribute: Optional[str] = None,
        name: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(name, attribute=attribute, region=None, outputs=1, rng=rng)
        self._dt = float(dt)
        self._dx = float(dx)
        self._dy = float(dy)

    @property
    def displacement(self) -> tuple:
        """The ``(dt, dx, dy)`` displacement applied to every tuple."""
        return (self._dt, self._dx, self._dy)

    def process(self, item: SensorTuple) -> None:
        self.emit(item.shifted(self._dt, self._dx, self._dy))

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        """Vectorised shift: constant offsets added to whole columns."""
        n = len(batch)
        if n == 0:
            return batch
        self._tuples_in += n
        self._tuples_out += n
        return batch.shifted(self._dt, self._dx, self._dy)


class MarkOperator(PMATOperator):
    """Attach an independent random mark to every tuple's metadata.

    Parameters
    ----------
    mark_fn:
        Callable ``(rng) -> mark`` drawing the mark; independent of the
        tuple by construction, as the marking theorem requires.
    mark_key:
        Metadata key the mark is stored under.
    """

    symbol = "MK"
    #: No lower_ir(): runs via the interpreted per-tuple path by design.
    interpreted_fallback = True

    def __init__(
        self,
        mark_fn: Callable[[np.random.Generator], Any],
        *,
        mark_key: str = "mark",
        attribute: Optional[str] = None,
        name: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not mark_key:
            raise StreamError("mark_key must be a non-empty string")
        super().__init__(name, attribute=attribute, region=None, outputs=1, rng=rng)
        self._mark_fn = mark_fn
        self._mark_key = mark_key

    @property
    def mark_key(self) -> str:
        """Metadata key the mark is stored under."""
        return self._mark_key

    def process(self, item: SensorTuple) -> None:
        metadata = dict(item.metadata)
        metadata[self._mark_key] = self._mark_fn(self.rng)
        marked = SensorTuple(
            tuple_id=item.tuple_id,
            attribute=item.attribute,
            t=item.t,
            x=item.x,
            y=item.y,
            value=item.value,
            sensor_id=item.sensor_id,
            metadata=metadata,
        )
        self.emit(marked)

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        """Columnar mark: draw one mark per tuple into an extra column.

        The marks are drawn in batch order from the operator's generator —
        the same draw sequence as the per-tuple object path.
        """
        n = len(batch)
        if n == 0:
            return batch
        self._tuples_in += n
        self._tuples_out += n
        marks = np.empty(n, dtype=object)
        marks[:] = [self._mark_fn(self.rng) for _ in range(n)]
        extra = dict(batch.extra)
        extra[self._mark_key] = marks
        return TupleBatch(
            batch.attribute, batch.t, batch.x, batch.y, batch.value,
            batch.sensor_id, batch.tuple_id, meta=batch.meta, extra=extra,
        )


class SampleOperator(PMATOperator):
    """Retain each tuple with a fixed probability (rate-agnostic thinning)."""

    symbol = "SA"
    #: No lower_ir(): runs via the interpreted per-tuple path by design.
    interpreted_fallback = True

    def __init__(
        self,
        probability: float,
        *,
        attribute: Optional[str] = None,
        name: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if not 0 < probability <= 1:
            raise StreamError("the sampling probability must be in (0, 1]")
        super().__init__(name, attribute=attribute, region=None, outputs=1, rng=rng)
        self._probability = float(probability)
        self._dropped = 0

    @property
    def probability(self) -> float:
        """The retention probability."""
        return self._probability

    @property
    def dropped(self) -> int:
        """Number of tuples dropped so far."""
        return self._dropped

    def process(self, item: SensorTuple) -> None:
        if self.rng.random() < self._probability:
            self.emit(item)
        else:
            self._dropped += 1

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        """Vectorised sampling: one Bernoulli keep-mask over the batch."""
        n = len(batch)
        if n == 0:
            return batch
        self._tuples_in += n
        keep = self.rng.random(n) < self._probability
        kept = batch.select(keep)
        self._dropped += n - len(kept)
        self._tuples_out += len(kept)
        return kept
