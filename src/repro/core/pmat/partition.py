"""The Partition (``P``) operator.

Splits a point process ``P(lambda, R*)`` into processes of the *same* rate
on disjoint sub-regions (paper Section IV-B.1).  "This operator is
implemented by checking to which region the incoming tuple belongs, and then
transmitting it to the appropriate output branch.  This operator can be
easily extended to partition processes into multiple regions" — which is
what this implementation does: any number of pairwise-disjoint sub-regions,
each with its own output stream, plus an optional rest output for tuples
matching none of them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ...errors import StreamError
from ...geometry import Region
from ...streams import SensorTuple, Stream, TupleBatch
from .base import PMATOperator, coerce_region


class PartitionOperator(PMATOperator):
    """Partition a process by sub-region.

    Parameters
    ----------
    regions:
        The pairwise-disjoint sub-regions ``R*_1, ..., R*_k``.  Output stream
        ``i`` carries the tuples falling inside ``regions[i]``.
    keep_rest:
        When true an extra final output stream carries tuples that fall in
        none of the sub-regions; when false those tuples are dropped (the
        behaviour CrAQR uses to carve a query's overlap out of a grid cell).
    """

    symbol = "P"

    def __init__(
        self,
        regions: Sequence,
        *,
        attribute: Optional[str] = None,
        keep_rest: bool = False,
        name: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        coerced: List[Region] = [coerce_region(region) for region in regions]
        if not coerced:
            raise StreamError("Partition needs at least one sub-region")
        for i, a in enumerate(coerced):
            for b in coerced[i + 1:]:
                if a.intersects(b):
                    raise StreamError(
                        "Partition sub-regions must be pairwise disjoint"
                    )
        outputs = len(coerced) + (1 if keep_rest else 0)
        super().__init__(
            name,
            attribute=attribute,
            region=None,
            outputs=outputs,
            rng=rng,
        )
        self._regions = coerced
        self._keep_rest = bool(keep_rest)
        self._dropped = 0

    # ------------------------------------------------------------------
    @property
    def regions(self) -> Sequence[Region]:
        """The sub-regions, in output order."""
        return tuple(self._regions)

    @property
    def keep_rest(self) -> bool:
        """Whether unmatched tuples are forwarded to a rest output."""
        return self._keep_rest

    @property
    def rest_output(self) -> Stream:
        """The output stream carrying unmatched tuples."""
        if not self._keep_rest:
            raise StreamError("this Partition operator drops unmatched tuples")
        return self.outputs[-1]

    @property
    def dropped(self) -> int:
        """Number of unmatched tuples dropped (0 when ``keep_rest``)."""
        return self._dropped

    def output_for(self, index: int) -> Stream:
        """The output stream of sub-region ``index``."""
        if not 0 <= index < len(self._regions):
            raise StreamError(
                f"Partition has {len(self._regions)} sub-regions; index {index} is invalid"
            )
        return self.outputs[index]

    # ------------------------------------------------------------------
    def process(self, item: SensorTuple) -> None:
        for index, region in enumerate(self._regions):
            if region.contains(item.x, item.y):
                self.emit(item, output_index=index)
                return
        if self._keep_rest:
            self.emit(item, output_index=len(self._regions))
        else:
            self._dropped += 1

    def process_batch_multi(self, batch: TupleBatch) -> List[TupleBatch]:
        """Vectorised partition: one containment mask per sub-region.

        Returns one batch per output stream (sub-regions in order, then the
        rest output when ``keep_rest``).  The sub-regions are pairwise
        disjoint, so composing first-match semantics reduces to independent
        masks with unmatched points tracked separately.
        """
        n = len(batch)
        outputs = len(self._regions) + (1 if self._keep_rest else 0)
        if n == 0:
            return [batch] * outputs
        self._tuples_in += n
        unmatched = np.ones(n, dtype=bool)
        batches: List[TupleBatch] = []
        for region in self._regions:
            mask = region.contains_many(batch.x, batch.y) & unmatched
            unmatched &= ~mask
            part = batch.select(mask)
            self._tuples_out += len(part)
            batches.append(part)
        rest = int(np.count_nonzero(unmatched))
        if self._keep_rest:
            rest_batch = batch.select(unmatched)
            self._tuples_out += len(rest_batch)
            batches.append(rest_batch)
        else:
            self._dropped += rest
        return batches

    def primary_mask(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Compiled-path kernel: containment mask of the primary sub-region.

        The planner's query taps carve exactly one overlap region with
        ``keep_rest=False``, so the compiled chain only needs the primary
        mask.  Pure function of the coordinates — the caller pairs it with
        :meth:`account_mask` so identical-region taps can share one
        containment evaluation (CSE) while each operator still records its
        own traffic.
        """
        if len(self._regions) != 1 or self._keep_rest:
            raise StreamError(
                "the compiled partition kernel serves single-region "
                "drop-rest taps only"
            )
        return self._regions[0].contains_many(xs, ys)

    def account_mask(self, total: int, matched: int) -> None:
        """Record one compiled-path pass: ``total`` in, ``matched`` forwarded.

        Mirrors :meth:`process_batch_multi` accounting for the
        single-region drop-rest configuration (unmatched tuples count as
        dropped).  The interpreted path's zero-length early return means a
        compiled caller must skip this call when ``total`` is 0.
        """
        self._tuples_in += total
        self._tuples_out += matched
        self._dropped += total - matched

    def mask_signature(self) -> tuple:
        """Hashable identity of the primary containment predicate.

        Two taps with equal signatures accept exactly the same points, so
        the optimizer's CSE pass can evaluate the containment mask once
        and share it.
        """
        return tuple(
            (rect.x_min, rect.y_min, rect.x_max, rect.y_max)
            for rect in self._regions[0].rectangles
        )

    def lower_ir(self) -> dict:
        """Describe this operator's compiled kernel for the plan IR."""
        return {
            "kind": "partition-mask",
            "symbol": self.symbol,
            "name": self.name,
            "regions": len(self._regions),
            "keep_rest": self._keep_rest,
            "predicate": self.mask_signature() if len(self._regions) == 1 else None,
            "rng_draws": "none",
        }

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        """Vectorised partition returning the first sub-region's batch.

        The planner's query taps carve one overlap region per Partition, so
        the primary output is all the columnar chain needs; use
        :meth:`process_batch_multi` when the caller consumes every split.
        Non-primary splits are pushed to their output streams here (like
        the other operators' side outputs), so subscribers of
        ``output_for(1)`` / ``rest_output`` never lose tuples when the
        operator is driven through the single-output contract.
        """
        batches = self.process_batch_multi(batch)
        for index, side_batch in enumerate(batches[1:], start=1):
            if len(side_batch):
                stream = self.outputs[index]
                for item in side_batch.to_tuples():
                    stream.push(item)
        return batches[0]
