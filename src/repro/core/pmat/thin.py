"""The Thin (``T``) operator.

Converts a homogeneous MDPP ``P(lambda1, R*)`` into another MDPP
``P(lambda2, R*)`` with ``lambda2 < lambda1`` by retaining each tuple with
probability ``p = lambda2 / lambda1`` (paper Section IV-B.1).  Because
independent thinning of a Poisson process yields a Poisson process with the
scaled rate, the output is again homogeneous at exactly the desired rate.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...errors import StreamError
from ...streams import SensorTuple, TupleBatch
from .base import PMATOperator


class ThinOperator(PMATOperator):
    """Thin a homogeneous point process from ``rate_in`` down to ``rate_out``.

    Parameters
    ----------
    rate_in:
        The rate of the incoming process ``lambda1``.
    rate_out:
        The desired output rate ``lambda2``; must satisfy
        ``0 < rate_out < rate_in``.
    emit_discarded:
        When true the operator gets a second output carrying dropped tuples.
    """

    symbol = "T"

    def __init__(
        self,
        rate_in: float,
        rate_out: float,
        *,
        attribute: Optional[str] = None,
        region=None,
        emit_discarded: bool = False,
        name: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._validate_rates(rate_in, rate_out)
        outputs = 2 if emit_discarded else 1
        super().__init__(
            name, attribute=attribute, region=region, outputs=outputs, rng=rng
        )
        self._rate_in = float(rate_in)
        self._rate_out = float(rate_out)
        self._emit_discarded = bool(emit_discarded)
        self._dropped = 0

    @staticmethod
    def _validate_rates(rate_in: float, rate_out: float) -> None:
        if rate_in <= 0:
            raise StreamError("the input rate must be strictly positive")
        if not 0 < rate_out < rate_in:
            raise StreamError(
                "the Thin output rate must be strictly positive and strictly "
                f"smaller than the input rate ({rate_in}); got {rate_out}"
            )

    # ------------------------------------------------------------------
    @property
    def rate_in(self) -> float:
        """Rate of the incoming process ``lambda1``."""
        return self._rate_in

    @property
    def rate_out(self) -> float:
        """Rate of the outgoing process ``lambda2``."""
        return self._rate_out

    @property
    def retention_probability(self) -> float:
        """The Bernoulli retention probability ``lambda2 / lambda1``."""
        return self._rate_out / self._rate_in

    @property
    def dropped(self) -> int:
        """Number of tuples dropped so far."""
        return self._dropped

    def set_rates(self, rate_in: float, rate_out: float) -> None:
        """Change both rates (used when the planner merges consecutive T's)."""
        self._validate_rates(rate_in, rate_out)
        self._rate_in = float(rate_in)
        self._rate_out = float(rate_out)

    @property
    def discarded_output(self):
        """The secondary output stream carrying dropped tuples, if enabled."""
        if not self._emit_discarded:
            raise StreamError("this Thin operator does not emit discarded tuples")
        return self.outputs[1]

    # ------------------------------------------------------------------
    def process(self, item: SensorTuple) -> None:
        if self.rng.random() < self.retention_probability:
            self.emit(item, output_index=0)
        else:
            self._dropped += 1
            if self._emit_discarded:
                self.emit(item, output_index=1)

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        """Vectorised thinning: one Bernoulli keep-mask for the whole batch.

        ``rng.random(n)`` consumes the generator exactly as ``n`` scalar
        draws would, so a seeded run keeps the same tuples as the object
        path.
        """
        n = len(batch)
        if n == 0:
            return batch
        self._tuples_in += n
        keep = self.rng.random(n) < self.retention_probability
        kept = batch.select(keep)
        dropped = n - len(kept)
        self._dropped += dropped
        self._tuples_out += len(kept)
        if self._emit_discarded and dropped:
            discarded = batch.select(~keep)
            self._tuples_out += len(discarded)
            stream = self.outputs[1]
            for item in discarded.to_tuples():
                stream.push(item)
        return kept

    def thin_indices(self, indices: np.ndarray) -> np.ndarray:
        """Compiled-path kernel: Bernoulli retention over surviving row indices.

        ``indices`` are the rows of the original batch still alive after the
        upstream masks.  Draws the same ``rng.random(m)`` vector that
        :meth:`process_batch` would draw for a materialised batch of the
        same ``m`` tuples and updates the same counters, but composes the
        decision as a fancy-index instead of copying columns.  An empty
        index set mirrors the interpreted early-return: no counters, no RNG.
        """
        m = int(indices.shape[0])
        if m == 0:
            return indices
        self._tuples_in += m
        keep = self.rng.random(m) < self.retention_probability
        kept = indices[keep]
        self._dropped += m - int(kept.shape[0])
        self._tuples_out += int(kept.shape[0])
        return kept

    def lower_ir(self) -> dict:
        """Describe this operator's compiled kernel for the plan IR."""
        return {
            "kind": "thin-mask",
            "symbol": self.symbol,
            "name": self.name,
            "rate_in": self._rate_in,
            "rate_out": self._rate_out,
            "retention_probability": self.retention_probability,
            "rng_draws": "random(m)",
        }

    def describe(self) -> str:
        attribute = self.attribute or "*"
        return (
            f"T<{attribute}>[{self.name}] "
            f"{self._rate_in:g}->{self._rate_out:g}"
        )
