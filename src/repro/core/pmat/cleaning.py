"""Error-mitigation operators (Section VI extension).

Companions of :mod:`repro.sensing.errors`: stream operators that reduce the
impact of GPS errors, sensor inaccuracies and human-judgment errors on
query accuracy, so they can be placed in an execution topology in front of
the PMAT chain.

* :class:`ClampOperator` — pulls out-of-region coordinates back inside the
  deployment region (gross GPS errors would otherwise make the tuple
  unroutable or land it in the wrong grid cell).
* :class:`OutlierFilterOperator` — drops numeric readings whose value lies
  more than ``z_threshold`` standard deviations from the mean of a sliding
  window of recent readings (robust to sensor glitches).
* :class:`DeduplicateOperator` — drops repeated reports from the same sensor
  within a time window (double taps / retransmissions), which would
  otherwise bias the local rate upward.
* :class:`MajorityVoteOperator` — smooths boolean (human-sensed) streams by
  replacing each value with the majority of the last ``window`` values from
  nearby reports, reducing the effect of individual judgment errors.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

import numpy as np

from ...errors import StreamError
from ...geometry import Rectangle
from ...streams import NO_SENSOR_ID, SensorTuple, TupleBatch
from .base import PMATOperator


class ClampOperator(PMATOperator):
    """Clamp tuple coordinates into the deployment region."""

    symbol = "CL"
    #: No lower_ir(): runs via the interpreted per-tuple path by design.
    interpreted_fallback = True

    def __init__(self, region: Rectangle, *, name: Optional[str] = None, rng=None) -> None:
        super().__init__(name, region=region, outputs=1, rng=rng)
        self._clamped = 0
        self._rect = region

    @property
    def clamped(self) -> int:
        """Number of tuples whose coordinates had to be clamped."""
        return self._clamped

    def process(self, item: SensorTuple) -> None:
        x = min(max(item.x, self._rect.x_min), self._rect.x_max)
        y = min(max(item.y, self._rect.y_min), self._rect.y_max)
        if x != item.x or y != item.y:
            self._clamped += 1
            item = SensorTuple(
                tuple_id=item.tuple_id,
                attribute=item.attribute,
                t=item.t,
                x=x,
                y=y,
                value=item.value,
                sensor_id=item.sensor_id,
                metadata=item.metadata,
            )
        self.emit(item)

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        """Vectorised clamp: clip whole coordinate columns into the region."""
        n = len(batch)
        if n == 0:
            return batch
        self._tuples_in += n
        self._tuples_out += n
        x = np.clip(batch.x, self._rect.x_min, self._rect.x_max)
        y = np.clip(batch.y, self._rect.y_min, self._rect.y_max)
        moved = (x != batch.x) | (y != batch.y)
        clamped = int(np.count_nonzero(moved))
        if clamped == 0:
            return batch
        self._clamped += clamped
        return TupleBatch(
            batch.attribute, batch.t, x, y, batch.value,
            batch.sensor_id, batch.tuple_id, meta=batch.meta, extra=batch.extra,
        )


class OutlierFilterOperator(PMATOperator):
    """Drop numeric readings far from the recent sliding window.

    Uses robust statistics (median and median absolute deviation) so that a
    gross outlier admitted early does not inflate the spread estimate and let
    later outliers through: a reading is dropped when its robust z-score
    ``0.6745 * |value - median| / MAD`` exceeds ``z_threshold``.
    """

    symbol = "OF"
    #: No lower_ir(): runs via the interpreted per-tuple path by design.
    interpreted_fallback = True

    def __init__(
        self,
        *,
        window: int = 50,
        z_threshold: float = 4.0,
        min_history: int = 10,
        name: Optional[str] = None,
        rng=None,
    ) -> None:
        if window <= 1:
            raise StreamError("the outlier window must hold at least 2 readings")
        if z_threshold <= 0:
            raise StreamError("z_threshold must be positive")
        if not 2 <= min_history <= window:
            raise StreamError("min_history must be in [2, window]")
        super().__init__(name, outputs=1, rng=rng)
        self._window = window
        self._z_threshold = z_threshold
        self._min_history = min_history
        self._history: Deque[float] = deque(maxlen=window)
        self._dropped = 0

    @property
    def dropped(self) -> int:
        """Number of readings dropped as outliers."""
        return self._dropped

    def _admit(self, value) -> bool:
        """The per-reading decision both paths share: keep or drop.

        Updates the sliding history for admitted numeric readings.
        """
        if isinstance(value, np.generic):
            value = value.item()
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return True
        value = float(value)
        if len(self._history) >= self._min_history:
            history = np.asarray(self._history, dtype=float)
            median = float(np.median(history))
            mad = float(np.median(np.abs(history - median)))
            if mad > 1e-12:
                robust_z = 0.6745 * abs(value - median) / mad
                if robust_z > self._z_threshold:
                    self._dropped += 1
                    return False
        self._history.append(value)
        return True

    def process(self, item: SensorTuple) -> None:
        if self._admit(item.value):
            self.emit(item)

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        """Columnar outlier filter: a keep-mask built over the value column.

        The sliding-window statistics are inherently sequential, so the
        decision loop remains per value — but it runs over the raw column
        and composes one keep-mask, never materialising tuples.
        """
        n = len(batch)
        if n == 0:
            return batch
        self._tuples_in += n
        values = batch.value
        keep = np.fromiter(
            (self._admit(values[i]) for i in range(n)), dtype=bool, count=n
        )
        kept = batch.select(keep) if not keep.all() else batch
        self._tuples_out += len(kept)
        return kept


class DeduplicateOperator(PMATOperator):
    """Drop repeated reports from the same sensor within a time window."""

    symbol = "DD"
    #: No lower_ir(): runs via the interpreted per-tuple path by design.
    interpreted_fallback = True

    def __init__(
        self,
        *,
        min_gap: float = 0.05,
        name: Optional[str] = None,
        rng=None,
    ) -> None:
        if min_gap < 0:
            raise StreamError("min_gap cannot be negative")
        super().__init__(name, outputs=1, rng=rng)
        self._min_gap = min_gap
        self._last_seen: Dict[int, float] = {}
        self._dropped = 0

    @property
    def dropped(self) -> int:
        """Number of duplicate reports dropped."""
        return self._dropped

    def _admit(self, sensor_id, t: float) -> bool:
        """The per-report decision both paths share: keep or drop."""
        if sensor_id is None:
            return True
        last = self._last_seen.get(sensor_id)
        if last is not None and abs(t - last) < self._min_gap:
            self._dropped += 1
            return False
        self._last_seen[sensor_id] = t
        return True

    def process(self, item: SensorTuple) -> None:
        if self._admit(item.sensor_id, item.t):
            self.emit(item)

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        """Columnar dedup: a keep-mask built over the sensor/time columns."""
        n = len(batch)
        if n == 0:
            return batch
        self._tuples_in += n
        sensor_ids = batch.sensor_id
        times = batch.t
        keep = np.fromiter(
            (
                self._admit(
                    None if sensor_ids[i] == NO_SENSOR_ID else int(sensor_ids[i]),
                    float(times[i]),
                )
                for i in range(n)
            ),
            dtype=bool,
            count=n,
        )
        kept = batch.select(keep) if not keep.all() else batch
        self._tuples_out += len(kept)
        return kept


class MajorityVoteOperator(PMATOperator):
    """Replace boolean values with the majority of the recent window."""

    symbol = "MV"
    #: No lower_ir(): runs via the interpreted per-tuple path by design.
    interpreted_fallback = True

    def __init__(
        self,
        *,
        window: int = 5,
        name: Optional[str] = None,
        rng=None,
    ) -> None:
        if window < 1 or window % 2 == 0:
            raise StreamError("the voting window must be a positive odd number")
        super().__init__(name, outputs=1, rng=rng)
        self._window = window
        self._recent: Deque[bool] = deque(maxlen=window)
        self._smoothed = 0

    @property
    def smoothed(self) -> int:
        """Number of values that were changed by the vote."""
        return self._smoothed

    def _vote(self, value):
        """The per-value decision both paths share.

        Returns the (possibly smoothed) replacement for a boolean value, or
        ``None`` for non-boolean values that pass through untouched.
        """
        if isinstance(value, np.bool_):
            value = bool(value)
        elif not isinstance(value, bool):
            return None
        self._recent.append(value)
        votes = sum(1 for v in self._recent if v)
        majority = votes * 2 > len(self._recent)
        if majority != value:
            self._smoothed += 1
        return majority

    def process(self, item: SensorTuple) -> None:
        voted = self._vote(item.value)
        if voted is not None and voted != item.value:
            item = item.with_value(voted)
        self.emit(item)

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        """Columnar majority vote: rewrite the value column in place order."""
        n = len(batch)
        if n == 0:
            return batch
        self._tuples_in += n
        self._tuples_out += n
        values = batch.value
        out = values.copy()
        changed = False
        for i in range(n):
            voted = self._vote(values[i])
            if voted is not None and voted != bool(values[i]):
                out[i] = voted
                changed = True
        if not changed:
            return batch
        return TupleBatch(
            batch.attribute, batch.t, batch.x, batch.y, out,
            batch.sensor_id, batch.tuple_id, meta=batch.meta, extra=batch.extra,
        )
