"""The Flatten (``F``) operator.

Converts a single-attribute inhomogeneous MDPP into an approximately
homogeneous process at a target rate (paper Section IV-B.1, Eq. 3).  The
operator works over batches: tuples arriving between two ``flush()`` calls
form one batch; on flush the operator

1. estimates (or is given) the conditional intensity of the batch,
2. computes each tuple's retaining probability via Eq. (3),
3. clips probabilities above 1 and records the percent rate violation
   ``N_v`` for the batch,
4. Bernoulli-retains tuples and pushes the survivors downstream (and,
   optionally, the discarded tuples to a secondary output).

When ``online`` estimation is enabled the operator additionally feeds every
tuple to an :class:`~repro.pointprocess.estimation.OnlineIntensityEstimator`
so the intensity tracks drift across batches, as the paper's sliding-window
variant suggests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ...errors import PointProcessError, StreamError
from ...pointprocess import (
    EventBatch,
    IntensityModel,
    OnlineIntensityEstimator,
    fit_linear_intensity_mle,
    flatten_events,
    flatten_keep_mask,
)
from ...pointprocess.estimation import EstimationError
from ...streams import SensorTuple, TupleBatch
from .base import PMATOperator


@dataclass(frozen=True)
class FlattenBatchReport:
    """Per-batch report produced by a Flatten operator.

    ``violation_percent`` is the paper's ``N_v`` (share of tuples whose
    Eq. 3 probability was clipped to 1); ``shortfall_percent`` is the share
    of the target retention mass the batch could not supply.  The budget
    feedback signal (:attr:`FlattenOperator.last_violation_percent`) is the
    maximum of the two, because either one indicates the batch cannot
    fabricate the requested rate.
    """

    batch_size: int
    retained: int
    violation_percent: float
    shortfall_percent: float
    target_rate: float

    @property
    def feedback_percent(self) -> float:
        """The budget-tuning signal: the worse of ``N_v`` and the shortfall."""
        return max(self.violation_percent, self.shortfall_percent)


class FlattenOperator(PMATOperator):
    """Flatten an inhomogeneous point process to a homogeneous target rate.

    Parameters
    ----------
    target_rate:
        The desired output rate ``lambda-bar`` (per unit area per unit time).
    region:
        The spatial extent the operator serves (one grid cell in CrAQR).
    batch_duration:
        Nominal duration of one batch window; used when estimating the
        intensity from the batch itself.
    intensity:
        Optional known intensity model.  When omitted the operator estimates
        a linear intensity (Eq. 1) from each batch by maximum likelihood
        (falling back to a constant empirical rate for tiny batches).
    online:
        When true, maintain an online SGD estimate across batches instead of
        refitting from scratch each batch.
    emit_discarded:
        When true the operator gets a second output stream carrying the
        tuples it dropped ("the discarded tuples can be stored separately").
    min_batch_for_fit:
        Minimum batch size for attempting the MLE fit; smaller batches use
        the constant-rate fallback.
    """

    symbol = "F"

    def __init__(
        self,
        target_rate: float,
        *,
        region,
        attribute: Optional[str] = None,
        batch_duration: float = 1.0,
        intensity: Optional[IntensityModel] = None,
        online: bool = False,
        emit_discarded: bool = False,
        min_batch_for_fit: int = 20,
        name: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if target_rate <= 0:
            raise StreamError("the Flatten target rate must be strictly positive")
        if batch_duration <= 0:
            raise StreamError("batch_duration must be positive")
        if min_batch_for_fit < 4:
            raise StreamError("min_batch_for_fit must be at least 4")
        outputs = 2 if emit_discarded else 1
        super().__init__(
            name, attribute=attribute, region=region, outputs=outputs, rng=rng
        )
        self._target_rate = float(target_rate)
        self._batch_duration = float(batch_duration)
        self._intensity = intensity
        self._online = bool(online)
        self._emit_discarded = bool(emit_discarded)
        self._min_batch_for_fit = int(min_batch_for_fit)
        self._buffer: List[SensorTuple] = []
        self._reports: List[FlattenBatchReport] = []
        self._online_estimator: Optional[OnlineIntensityEstimator] = None
        if self._online:
            self._online_estimator = OnlineIntensityEstimator(
                self.region, batch_duration
            )

    # ------------------------------------------------------------------
    @property
    def target_rate(self) -> float:
        """The output rate ``lambda-bar`` the operator aims for."""
        return self._target_rate

    def set_target_rate(self, target_rate: float) -> None:
        """Change the output rate (the planner may bump it above the first T)."""
        if target_rate <= 0:
            raise StreamError("the Flatten target rate must be strictly positive")
        self._target_rate = float(target_rate)

    @property
    def last_violation_percent(self) -> float:
        """Rate-violation feedback of the most recent batch (0 before any batch).

        The maximum of the paper's ``N_v`` and the retention shortfall; see
        :class:`FlattenBatchReport`.
        """
        if not self._reports:
            return 0.0
        return self._reports[-1].feedback_percent

    @property
    def reports(self) -> List[FlattenBatchReport]:
        """Reports of every processed batch."""
        return list(self._reports)

    @property
    def pending(self) -> int:
        """Number of tuples buffered in the current batch."""
        return len(self._buffer)

    @property
    def discarded_output(self):
        """The secondary output stream carrying discarded tuples, if enabled."""
        if not self._emit_discarded:
            raise StreamError("this Flatten operator does not emit discarded tuples")
        return self.outputs[1]

    # ------------------------------------------------------------------
    def process(self, item: SensorTuple) -> None:
        self._buffer.append(item)

    def _estimate_intensity(
        self, batch: EventBatch, *, fused: bool = False
    ) -> IntensityModel:
        """Pick the intensity model used to flatten the current batch.

        ``fused`` selects the hoisted-compensator SGD kernel for the online
        estimator (bit-identical to the reference loop; used by the
        compiled plan path).
        """
        if self._intensity is not None:
            return self._intensity
        t_min, t_max = batch.time_span()
        if self._online and self._online_estimator is not None:
            # Anchor the SGD compensator at the batch's own window: without
            # it the per-event gradient integrated the basis over
            # [0, window_duration] forever while event times grew, biasing
            # theta_t more and more as simulation time advanced.
            if fused:
                self._online_estimator.observe_batch_fused(batch, window_start=t_min)
            else:
                self._online_estimator.observe_batch(batch, window_start=t_min)
            # Until the online estimate has warmed up fall back to MLE below.
            if self._online_estimator.updates >= 2 * self._min_batch_for_fit:
                return self._online_estimator.intensity
        duration = max(t_max - t_min, self._batch_duration)
        if len(batch) >= self._min_batch_for_fit:
            try:
                return fit_linear_intensity_mle(
                    batch, self.region, t_min, t_min + duration
                ).intensity
            except (EstimationError, PointProcessError):
                pass
        # Constant fallback: the empirical mean rate of the batch.
        from ...pointprocess import ConstantIntensity

        mean_rate = max(len(batch) / (self.region.area * duration), 1e-9)
        return ConstantIntensity(mean_rate)

    def flush(self) -> None:
        """Process the buffered batch: flatten, report ``N_v``, emit survivors."""
        if not self._buffer:
            # An empty batch cannot supply any of the target mass: report a
            # full shortfall so the budget tuner reacts to silent cells.
            self._reports.append(
                FlattenBatchReport(
                    batch_size=0,
                    retained=0,
                    violation_percent=0.0,
                    shortfall_percent=100.0,
                    target_rate=self._target_rate,
                )
            )
            return
        items = self._buffer
        self._buffer = []
        batch = EventBatch.from_rows([(it.t, it.x, it.y) for it in items])
        intensity = self._estimate_intensity(batch)
        # Eq. (3) normalises by the batch, so the target expected count is
        # target_rate * area * batch window; flatten_events keeps that
        # expectation when we pass the expected count as the "rate" knob.
        # The nominal batch duration is used (not the observed span) so that
        # straggler responses with long latencies do not inflate the target.
        target_expected = self._target_rate * self.region.area * self._batch_duration
        result = flatten_events(
            batch, intensity, target_expected, rng=self.rng
        )
        self._reports.append(
            FlattenBatchReport(
                batch_size=len(items),
                retained=result.retained_count,
                violation_percent=result.violation_percent,
                shortfall_percent=result.shortfall_percent,
                target_rate=self._target_rate,
            )
        )
        for item, kept in zip(items, result.keep_mask):
            if kept:
                self.emit(item, output_index=0)
            elif self._emit_discarded:
                self.emit(item, output_index=1)

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        """Vectorised flatten: Eq. (3) keep-mask applied to the whole batch.

        The columnar path hands the operator its batch directly instead of
        buffering tuples one at a time; the per-batch report (including the
        full-shortfall report for an empty batch) is identical to
        :meth:`flush`, and the thinning kernel's ``keep_mask`` is applied to
        the numpy columns without round-tripping through object lists.
        """
        if batch.is_empty:
            self._reports.append(
                FlattenBatchReport(
                    batch_size=0,
                    retained=0,
                    violation_percent=0.0,
                    shortfall_percent=100.0,
                    target_rate=self._target_rate,
                )
            )
            return batch
        n = len(batch)
        self._tuples_in += n
        events = EventBatch(batch.t, batch.x, batch.y)
        intensity = self._estimate_intensity(events)
        target_expected = self._target_rate * self.region.area * self._batch_duration
        result = flatten_events(events, intensity, target_expected, rng=self.rng)
        self._reports.append(
            FlattenBatchReport(
                batch_size=n,
                retained=result.retained_count,
                violation_percent=result.violation_percent,
                shortfall_percent=result.shortfall_percent,
                target_rate=self._target_rate,
            )
        )
        kept = batch.select(result.keep_mask)
        self._tuples_out += len(kept)
        if self._emit_discarded and result.discarded_count:
            discarded = batch.select(~result.keep_mask)
            self._tuples_out += len(discarded)
            stream = self.outputs[1]
            for item in discarded.to_tuples():
                stream.push(item)
        return kept

    def process_batch_mask(self, batch: TupleBatch) -> np.ndarray:
        """Compiled-path kernel: the Eq. (3) keep-mask without materialising.

        Byte-identical accounting to :meth:`process_batch` — same report
        (including the full-shortfall report for an empty batch), same
        counters, same single ``rng.random(n)`` draw — but returns the
        boolean keep-mask instead of gathering the surviving columns, so
        the executor can compose it with downstream thin/partition
        decisions and gather once at delivery.  The online estimator runs
        its fused (hoisted-compensator) SGD kernel.  Not available with
        ``emit_discarded`` (the discard store needs the dropped tuples
        materialised; the engine keeps those chains on the interpreted
        path).
        """
        if self._emit_discarded:
            raise StreamError(
                "the compiled flatten kernel cannot emit discarded tuples"
            )
        if batch.is_empty:
            self._reports.append(
                FlattenBatchReport(
                    batch_size=0,
                    retained=0,
                    violation_percent=0.0,
                    shortfall_percent=100.0,
                    target_rate=self._target_rate,
                )
            )
            return np.empty(0, dtype=bool)
        n = len(batch)
        self._tuples_in += n
        events = EventBatch(batch.t, batch.x, batch.y)
        intensity = self._estimate_intensity(events, fused=True)
        target_expected = self._target_rate * self.region.area * self._batch_duration
        result = flatten_keep_mask(events, intensity, target_expected, rng=self.rng)
        retained = result.retained_count
        self._reports.append(
            FlattenBatchReport(
                batch_size=n,
                retained=retained,
                violation_percent=result.violation_percent,
                shortfall_percent=result.shortfall_percent,
                target_rate=self._target_rate,
            )
        )
        self._tuples_out += retained
        return result.keep_mask

    def lower_ir(self) -> dict:
        """Describe this operator's compiled kernel for the plan IR."""
        estimator = "fixed"
        if self._intensity is None:
            estimator = "online-sgd" if self._online else "mle"
        return {
            "kind": "flatten-mask",
            "symbol": self.symbol,
            "name": self.name,
            "target_rate": self._target_rate,
            "batch_duration": self._batch_duration,
            "estimator": estimator,
            "rng_draws": "random(n)",
        }
