"""PMAT: point-process transformation operators (paper Section IV-B).

The four operators the paper describes in detail:

* :class:`FlattenOperator` (``F``) — inhomogeneous → approximately
  homogeneous at a target rate, reporting percent rate violation ``N_v``.
* :class:`ThinOperator` (``T``) — homogeneous rate reduction.
* :class:`PartitionOperator` (``P``) — split a process by sub-region.
* :class:`UnionOperator` (``U``) — merge equal-rate processes on adjacent
  regions.

Plus extension operators in :mod:`repro.core.pmat.extensions` (the paper
notes "we have researched many more operators"): superposition, shifting,
marking and fixed-probability sampling.
"""

from .base import PMATOperator
from .flatten import FlattenOperator
from .thin import ThinOperator
from .partition import PartitionOperator
from .union import UnionOperator
from .extensions import SuperposeOperator, ShiftOperator, MarkOperator, SampleOperator
from .cleaning import (
    ClampOperator,
    DeduplicateOperator,
    MajorityVoteOperator,
    OutlierFilterOperator,
)

__all__ = [
    "PMATOperator",
    "FlattenOperator",
    "ThinOperator",
    "PartitionOperator",
    "UnionOperator",
    "SuperposeOperator",
    "ShiftOperator",
    "MarkOperator",
    "SampleOperator",
    "ClampOperator",
    "DeduplicateOperator",
    "MajorityVoteOperator",
    "OutlierFilterOperator",
]
