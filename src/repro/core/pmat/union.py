"""The Union (``U``) operator.

Unions MDPPs of the same rate on adjacent regions into one process on the
union region (paper Section IV-B.1).  "Notice that for computing R*_1 ∪ R*_2
the rectangles should be adjacent and with a common side of equal length.
This operator can be easily extended to union multiple MDPPs at once."

The operator itself simply merges its input streams (the superposition of
the underlying processes); the geometric pre-condition is validated at
construction time when the input regions are supplied, mirroring the paper's
requirement.  The combined output region is exposed so downstream components
know the extent of the unioned process.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ...errors import StreamError
from ...geometry import Region, union_regions
from ...streams import SensorTuple, Stream, TupleBatch
from .base import PMATOperator, coerce_region


class UnionOperator(PMATOperator):
    """Union several same-rate processes on disjoint (adjacent) regions.

    Parameters
    ----------
    input_regions:
        Regions of the processes being unioned; when given they must be
        pairwise disjoint and their union is exposed as :attr:`region`.
        Pass ``None`` to skip geometric validation (e.g. when merging
        per-cell partial streams whose regions are known to tile the query
        region).
    rate:
        The common rate of the unioned processes (informational; used by
        topology descriptions and validation).
    """

    symbol = "U"

    def __init__(
        self,
        input_regions: Optional[Sequence] = None,
        *,
        rate: Optional[float] = None,
        attribute: Optional[str] = None,
        name: Optional[str] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        combined: Optional[Region] = None
        if input_regions is not None:
            regions = [coerce_region(region) for region in input_regions]
            if not regions:
                raise StreamError("Union needs at least one input region")
            combined = union_regions(regions)
        if rate is not None and rate <= 0:
            raise StreamError("the common rate must be strictly positive")
        super().__init__(
            name, attribute=attribute, region=combined, outputs=1, rng=rng
        )
        self._rate = rate
        self._inputs_attached = 0

    # ------------------------------------------------------------------
    @property
    def rate(self) -> Optional[float]:
        """The common rate of the unioned processes, when declared."""
        return self._rate

    def set_rate(self, rate: float) -> None:
        """Declare a new common rate (used when a query is altered in-flight)."""
        if rate <= 0:
            raise StreamError("the common rate must be strictly positive")
        self._rate = float(rate)

    @property
    def inputs_attached(self) -> int:
        """Number of upstream streams attached via :meth:`attach_input`."""
        return self._inputs_attached

    def attach_input(self, upstream: Stream) -> None:
        """Subscribe this union to one more upstream partial stream."""
        upstream.subscribe(self.accept)
        self._inputs_attached += 1

    # ------------------------------------------------------------------
    def process(self, item: SensorTuple) -> None:
        self.emit(item)

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        """Union is a pass-through: account for the batch and forward it."""
        n = len(batch)
        self._tuples_in += n
        self._tuples_out += n
        return batch

    def lower_ir(self) -> dict:
        """Describe this operator's compiled kernel for the plan IR."""
        return {
            "kind": "union",
            "symbol": self.symbol,
            "name": self.name,
            "rate": self._rate,
            "rng_draws": "none",
        }

    def describe(self) -> str:
        attribute = self.attribute or "*"
        rate = f"@{self._rate:g}" if self._rate is not None else ""
        return f"U<{attribute}>{rate}[{self.name}] inputs={self._inputs_attached}"
