"""Alternative merge topologies (Section VI extension).

The paper: "The execution topology presented in Section V is one of the many
ways in which queries can be processed.  For example, a tree-like topology
can be formed.  We have already started working on the necessary operators
to perform this task."

The default merge phase (Fig. 2c) unions every per-cell partial stream of a
query with a single U-operator (a flat, star-shaped merge).  For queries
spanning many cells a *tree* of U-operators with bounded fan-in is the
natural alternative: each operator handles a bounded number of inputs, the
merge work is spread over ``O(log k)`` levels, and intermediate unions can
be placed near the cells they merge in a distributed deployment.

:class:`TreeMergeBuilder` constructs such a tree from a list of upstream
streams and exposes its root output; :func:`merge_depth` and
:func:`operator_count` describe the resulting shape so the flat and tree
variants can be compared (see ``benchmarks/bench_merge_topologies.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import PlanningError
from ..rng import ensure_rng
from ..streams import Stream
from .pmat import UnionOperator


@dataclass
class MergeTree:
    """A built tree of Union operators.

    Attributes
    ----------
    root:
        The Union operator producing the query's final merged stream.
    operators:
        Every Union operator in the tree (root included), level by level
        from the leaves upward.
    fan_in:
        The maximum number of inputs each operator accepts.
    leaves:
        Number of upstream partial streams merged.
    """

    root: UnionOperator
    operators: List[UnionOperator]
    fan_in: int
    leaves: int

    @property
    def output(self) -> Stream:
        """The merged output stream."""
        return self.root.output

    @property
    def depth(self) -> int:
        """Number of Union levels between a leaf stream and the output."""
        return merge_depth(self.leaves, self.fan_in)

    @property
    def operator_count(self) -> int:
        """Number of Union operators in the tree."""
        return len(self.operators)


def merge_depth(leaves: int, fan_in: int) -> int:
    """Depth of a fan-in-bounded merge tree over ``leaves`` inputs."""
    if leaves <= 0:
        raise PlanningError("a merge tree needs at least one input")
    if fan_in < 2:
        raise PlanningError("the merge fan-in must be at least 2")
    if leaves == 1:
        return 1
    return int(math.ceil(math.log(leaves, fan_in)))


def operator_count(leaves: int, fan_in: int) -> int:
    """Number of Union operators a fan-in-bounded tree needs."""
    if leaves <= 0:
        raise PlanningError("a merge tree needs at least one input")
    if fan_in < 2:
        raise PlanningError("the merge fan-in must be at least 2")
    count = 0
    level = leaves
    while level > 1:
        level = int(math.ceil(level / fan_in))
        count += level
    return max(count, 1)


class TreeMergeBuilder:
    """Builds a tree of Union operators over a query's per-cell streams."""

    def __init__(
        self,
        *,
        fan_in: int = 2,
        attribute: Optional[str] = None,
        rate: Optional[float] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if fan_in < 2:
            raise PlanningError("the merge fan-in must be at least 2")
        self._fan_in = fan_in
        self._attribute = attribute
        self._rate = rate
        self._rng = ensure_rng(rng)

    @property
    def fan_in(self) -> int:
        """Maximum inputs per Union operator."""
        return self._fan_in

    def _make_union(self, level: int, index: int) -> UnionOperator:
        return UnionOperator(
            rate=self._rate,
            attribute=self._attribute,
            name=f"U-tree:L{level}#{index}",
            rng=np.random.default_rng(self._rng.integers(0, 2 ** 63 - 1)),
        )

    def build(self, inputs: Sequence[Stream]) -> MergeTree:
        """Build the tree over the given upstream streams and return it."""
        streams = list(inputs)
        if not streams:
            raise PlanningError("a merge tree needs at least one input stream")
        operators: List[UnionOperator] = []
        level = 0
        current: List[Stream] = streams
        root: Optional[UnionOperator] = None
        while True:
            next_level: List[Stream] = []
            for index in range(0, len(current), self._fan_in):
                group = current[index: index + self._fan_in]
                union = self._make_union(level, index // self._fan_in)
                for upstream in group:
                    union.attach_input(upstream)
                operators.append(union)
                next_level.append(union.output)
                root = union
            if len(next_level) == 1:
                break
            current = next_level
            level += 1
        assert root is not None
        return MergeTree(
            root=root,
            operators=operators,
            fan_in=self._fan_in,
            leaves=len(streams),
        )
