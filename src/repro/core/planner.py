"""Topology construction, query insertion and query deletion (Section V).

The planner maintains the hashmap from grid-cell coordinates to
:class:`~repro.core.topology.CellTopology` and the per-query merge stage
(the U-operators of Fig. 2c).  Only the grid cells with at least one
overlapping query are materialised ("in reality only the grid cells that are
useful for query processing are materialized").

Query insertion computes the overlap of the query region with every grid
cell, registers the query with the affected cell topologies and rebuilds
only those topologies; query deletion removes the query from its cells and
drops cells (hashmap entries) that become empty — the paper's delete-right-
to-left-until-a-branching-point rule expressed over the canonical form.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from ..errors import PlanningError, QueryError
from ..geometry import Grid, GridCell, Region
from ..rng import ensure_rng
from ..streams import CallbackSink, SensorTuple, TupleBatch
from .pmat import UnionOperator
from .query import AcquisitionalQuery
from .topology import CellTopology, DeliverBatchFn, DeliverFn, QueryDelivery

CellKey = Tuple[int, int]


def _drop_delivery(query_id: int, item: SensorTuple) -> None:
    """Fallback result handler of queries registered without a callback."""


@dataclass
class PlannerStats:
    """Aggregate statistics about the planner's current state."""

    queries: int = 0
    materialized_cells: int = 0
    pmat_operators: int = 0
    union_operators: int = 0
    rebuilds: int = 0
    insertions: int = 0
    deletions: int = 0
    updates: int = 0
    paused_queries: int = 0
    cells_touched_by_last_change: int = 0


@dataclass(frozen=True)
class QueryUpdate:
    """Outcome of one in-flight :meth:`QueryPlanner.update_query`.

    Attributes
    ----------
    query:
        The updated query object (same ``query_id``, new rate/region).
    added / removed / kept:
        Grid-cell keys the query newly overlaps, no longer overlaps, and
        keeps overlapping.  Only ``added`` cells need fresh budget seeding;
        ``kept`` and ``removed`` cells preserve their budget state.
    """

    query: AcquisitionalQuery
    added: List[CellKey]
    removed: List[CellKey]
    kept: List[CellKey]


@dataclass
class _QueryPlan:
    """Book-keeping for one registered query."""

    query: AcquisitionalQuery
    cells: List[CellKey]
    union: UnionOperator
    union_sink: CallbackSink
    overlaps: Dict[CellKey, Region] = field(default_factory=dict)


class QueryPlanner:
    """Builds and maintains the per-cell execution topologies."""

    def __init__(
        self,
        grid: Grid,
        *,
        batch_duration: float = 1.0,
        headroom: float = 1.25,
        online_estimation: bool = False,
        discard_recorder=None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._grid = grid
        self._batch_duration = batch_duration
        self._headroom = headroom
        self._online = online_estimation
        self._discard_recorder = discard_recorder
        self._rng = ensure_rng(rng)
        #: the hashmap of Section V: grid-cell key -> execution topology
        self._cells: Dict[CellKey, CellTopology] = {}
        self._plans: Dict[int, _QueryPlan] = {}
        self._result_handlers: Dict[int, DeliverFn] = {}
        self._batch_handlers: Dict[int, DeliverBatchFn] = {}
        self._paused: Set[int] = set()
        self._insertions = 0
        self._deletions = 0
        self._updates = 0
        self._last_touched = 0

    # ------------------------------------------------------------------
    @property
    def grid(self) -> Grid:
        """The logical grid over the deployment region."""
        return self._grid

    @property
    def materialized_cells(self) -> List[CellKey]:
        """Keys of the grid cells that currently have a topology."""
        return list(self._cells.keys())

    @property
    def queries(self) -> List[AcquisitionalQuery]:
        """All currently registered queries."""
        return [plan.query for plan in self._plans.values()]

    def has_query(self, query_id: int) -> bool:
        """Whether a query with this id is registered."""
        return query_id in self._plans

    def cell_topology(self, key: CellKey) -> CellTopology:
        """The topology materialised for a grid cell."""
        try:
            return self._cells[key]
        except KeyError:
            raise PlanningError(f"no topology materialised for cell {key}") from None

    def cells_for_query(self, query_id: int) -> List[CellKey]:
        """The grid cells a query's region overlaps."""
        return list(self._plan(query_id).cells)

    def query_for_id(self, query_id: int) -> AcquisitionalQuery:
        """The registered query object for an id."""
        return self._plan(query_id).query

    def union_operator(self, query_id: int) -> UnionOperator:
        """The merge-stage Union operator of a registered query."""
        return self._plan(query_id).union

    def _plan(self, query_id: int) -> _QueryPlan:
        try:
            return self._plans[query_id]
        except KeyError:
            raise PlanningError(f"query id {query_id} is not registered") from None

    # ------------------------------------------------------------------
    # Query insertion (Section V, "Query Insertions")
    # ------------------------------------------------------------------
    def insert_query(
        self,
        query: AcquisitionalQuery,
        *,
        on_result: Optional[DeliverFn] = None,
        on_result_batch: Optional[DeliverBatchFn] = None,
    ) -> List[CellKey]:
        """Insert a query; returns the keys of the grid cells it touches.

        Parameters
        ----------
        query:
            The acquisitional query to register.
        on_result:
            Callback ``(query_id, tuple)`` invoked for every tuple of the
            query's final, merged crowdsensed data stream.
        on_result_batch:
            Columnar counterpart: callback ``(query_id, batch)`` invoked
            once per delivered :class:`TupleBatch` when batches are
            processed columnar.  When omitted, columnar deliveries fall
            back to materialising tuples through ``on_result``.
        """
        if query.query_id in self._plans:
            raise PlanningError(f"query {query.label} is already registered")
        query.validate_against(self._grid.region, self._grid.cell_area)

        overlapping = self._grid.overlapping_cells(query.region)
        if not overlapping:
            raise QueryError(
                f"query {query.label} does not overlap any grid cell"
            )

        # The merge stage: one U-operator per query aggregates the per-cell
        # partial streams into the final MCDS (Fig. 2c).
        union = UnionOperator(
            rate=query.rate,
            attribute=query.attribute,
            name=f"U:{query.label}",
            rng=np.random.default_rng(self._rng.integers(0, 2 ** 63 - 1)),
        )
        handler = on_result or _drop_delivery
        union_sink = CallbackSink(
            QueryDelivery(handler, query.query_id),
            name=f"result:{query.label}",
        )
        union_sink.attach(union.output)

        plan = _QueryPlan(query=query, cells=[], union=union, union_sink=union_sink)
        self._plans[query.query_id] = plan
        self._result_handlers[query.query_id] = handler
        if on_result_batch is not None:
            self._batch_handlers[query.query_id] = on_result_batch

        touched: List[CellKey] = []
        for cell in overlapping:
            overlap = query.region.intersection(cell.region)
            if overlap is None:
                continue
            self._topology_for(cell).add_query(query, overlap)
            plan.overlaps[cell.key] = overlap
            touched.append(cell.key)
        plan.cells = touched

        self._rebuild_cells(touched)
        self._insertions += 1
        self._last_touched = len(touched)
        return touched

    def _topology_for(self, cell) -> CellTopology:
        """The cell's topology, materialising the hashmap entry on demand."""
        topology = self._cells.get(cell.key)
        if topology is None:
            topology = CellTopology(
                cell,
                batch_duration=self._batch_duration,
                headroom=self._headroom,
                online_estimation=self._online,
                discard_recorder=self._discard_recorder,
                rng=np.random.default_rng(self._rng.integers(0, 2 ** 63 - 1)),
            )
            self._cells[cell.key] = topology
        return topology

    # ------------------------------------------------------------------
    # In-flight query mutation (the session API's ALTER path)
    # ------------------------------------------------------------------
    def update_query(
        self,
        query_id: int,
        *,
        rate=None,
        region=None,
    ) -> QueryUpdate:
        """Replan a registered query's rate and/or region in place.

        The query keeps its id, result routing and merge stage; only the
        per-cell PMAT topology is adjusted: cells the new region no longer
        overlaps drop the query (and are dematerialised when empty), cells
        it keeps are re-taped with the new rate/overlap, and newly
        overlapped cells are materialised.  Cells of *other* queries are
        untouched, so their operators, accounting and budget state survive.

        Parameters
        ----------
        rate:
            New requested rate (a number or
            :class:`~repro.core.query.RateSpec`); ``None`` keeps the rate.
        region:
            New query region (a :class:`~repro.geometry.Region` or
            :class:`~repro.geometry.Rectangle`); ``None`` keeps the region.
        """
        plan = self._plan(query_id)
        if rate is None and region is None:
            raise PlanningError("update_query needs a new rate and/or region")
        old_query = plan.query
        changes = {}
        if rate is not None:
            changes["rate"] = rate
        if region is not None:
            changes["region"] = region
        new_query = replace(old_query, **changes)
        new_query.validate_against(self._grid.region, self._grid.cell_area)

        new_overlaps: Dict[CellKey, Tuple] = {}
        for cell in self._grid.overlapping_cells(new_query.region):
            overlap = new_query.region.intersection(cell.region)
            if overlap is not None:
                new_overlaps[cell.key] = (cell, overlap)
        if not new_overlaps:
            raise QueryError(
                f"query {new_query.label} does not overlap any grid cell"
            )

        old_keys = set(plan.cells)
        removed = [key for key in plan.cells if key not in new_overlaps]
        kept = [key for key in plan.cells if key in new_overlaps]
        added = [key for key in new_overlaps if key not in old_keys]

        for key in removed:
            topology = self._cells.get(key)
            if topology is None:
                continue
            topology.remove_query(old_query)
            if topology.is_empty:
                del self._cells[key]
        for key in kept:
            topology = self._cells[key]
            topology.remove_query(old_query)
            topology.add_query(new_query, new_overlaps[key][1])
        for key in added:
            cell, overlap = new_overlaps[key]
            self._topology_for(cell).add_query(new_query, overlap)

        plan.query = new_query
        plan.cells = list(new_overlaps.keys())
        plan.overlaps = {key: overlap for key, (_, overlap) in new_overlaps.items()}
        if rate is not None:
            plan.union.set_rate(new_query.rate)

        rebuild = [key for key in removed if key in self._cells] + kept + added
        self._rebuild_cells(rebuild)
        self._updates += 1
        self._last_touched = len(rebuild)
        return QueryUpdate(query=new_query, added=added, removed=removed, kept=kept)

    # ------------------------------------------------------------------
    # Pause / resume (detach acquisition without tearing down topology)
    # ------------------------------------------------------------------
    def set_paused(self, query_id: int, paused: bool) -> None:
        """Mark a query paused (or resumed).

        A paused query keeps its whole topology, but it no longer demands
        acquisition (:meth:`attribute_cells` skips (attribute, cell) pairs
        whose every query is paused) and its rate violations are not
        reported to the budget tuner (:meth:`violations` applies the same
        filter).  The engine suppresses deliveries to paused queries, so
        data acquired for co-located active queries is not forwarded.
        """
        self._plan(query_id)  # validate registration
        if paused:
            self._paused.add(query_id)
        else:
            self._paused.discard(query_id)

    def is_paused(self, query_id: int) -> bool:
        """Whether the query is currently paused (``False`` for unknown ids)."""
        return query_id in self._paused

    def _all_paused(self, query_ids: List[int]) -> bool:
        """Whether every one of the chain's queries is paused."""
        return bool(self._paused) and all(
            query_id in self._paused for query_id in query_ids
        )

    # ------------------------------------------------------------------
    # Query deletion (Section V, "Query Deletions")
    # ------------------------------------------------------------------
    def delete_query(self, query_id: int) -> List[CellKey]:
        """Delete a query; returns the keys of the grid cells it touched.

        Cells whose topology no longer serves any query are dropped from the
        hashmap entirely, matching the paper's "until all the streams and the
        key in the hashmap are deleted".
        """
        plan = self._plan(query_id)
        touched: List[CellKey] = []
        for key in plan.cells:
            topology = self._cells.get(key)
            if topology is None:
                continue
            topology.remove_query(plan.query)
            touched.append(key)
            if topology.is_empty:
                del self._cells[key]
        self._rebuild_cells([key for key in touched if key in self._cells])
        del self._plans[query_id]
        self._result_handlers.pop(query_id, None)
        self._batch_handlers.pop(query_id, None)
        self._paused.discard(query_id)
        self._deletions += 1
        self._last_touched = len(touched)
        return touched

    # ------------------------------------------------------------------
    # Internal plumbing
    # ------------------------------------------------------------------
    def _deliver(self, query_id: int, item: SensorTuple) -> None:
        """Route a per-cell partial-stream tuple into the query's merge stage.

        Paused queries are skipped before the merge stage: tuples acquired
        for co-located active queries must not leak into a detached
        session's stream or accounting.
        """
        plan = self._plans.get(query_id)
        if plan is None or query_id in self._paused:
            return
        plan.union.accept(item)

    def _deliver_batch(self, query_id: int, batch: TupleBatch) -> None:
        """Route a per-cell partial batch into the query's merge stage.

        The merge stage's Union operator accounts for the batch; delivery
        to the engine happens through the query's batch handler in one call
        per (query, cell, batch).  Queries registered without a batch
        handler fall back to the object path's per-tuple union flow.
        """
        plan = self._plans.get(query_id)
        if plan is None or query_id in self._paused:
            return
        handler = self._batch_handlers.get(query_id)
        if handler is None:
            for item in batch.to_tuples():
                plan.union.accept(item)
            return
        plan.union.process_batch(batch)
        handler(query_id, batch)

    def _rebuild_cells(self, keys: List[CellKey]) -> None:
        for key in keys:
            topology = self._cells.get(key)
            if topology is not None and not topology.is_empty:
                topology.rebuild(self._deliver)

    # ------------------------------------------------------------------
    # Batch processing helpers used by the fabricator
    # ------------------------------------------------------------------
    def attribute_cells(self) -> Dict[str, List[GridCell]]:
        """Which grid cells each attribute must be acquired from.

        The request/response handler uses this to know where to send
        acquisition requests: exactly the (attribute, cell) pairs with at
        least one overlapping query.  Pairs whose every overlapping query
        is paused are excluded — a paused query keeps its topology but
        stops demanding acquisition.
        """
        needed: Dict[str, List[GridCell]] = {}
        for key, topology in self._cells.items():
            cell = self._grid.cell(*key)
            for attribute in topology.attributes:
                if self._all_paused(topology.chain(attribute).query_ids):
                    continue
                needed.setdefault(attribute, []).append(cell)
        return needed

    def route_cell_batch(self, key: CellKey, items: List[SensorTuple]) -> int:
        """Inject one cell's batch of raw tuples into its topology."""
        topology = self._cells.get(key)
        if topology is None:
            return 0
        return topology.inject_many(items)

    def process_columnar(
        self,
        mapped: Dict[CellKey, Dict[str, TupleBatch]],
        *,
        programs: Optional[Dict[CellKey, Dict[str, object]]] = None,
    ) -> int:
        """Columnar process phase: run every materialised cell for one window.

        Cells without tuples this round still run (their Flatten operators
        report a full shortfall, as the object path's flush does); batches
        mapped to cells without a topology are dropped, mirroring
        :meth:`route_cell_batch` returning 0.  Returns the number of tuples
        routed to materialised cells.

        ``programs`` optionally carries the compiled plan's per-cell chain
        programs (see :mod:`repro.plan`); cells found in it run fused
        kernels, the rest interpret their operators.  Either way the cell
        iteration order — and with it the per-query delivery order that
        shapes result-buffer chunks — is this method's, so compiled and
        interpreted runs stay byte-identical.
        """
        routed = 0
        deliver = self._deliver_batch
        for key, topology in self._cells.items():
            routed += topology.process_batches(
                mapped.get(key, {}),
                deliver,
                programs=programs.get(key) if programs else None,
            )
        return routed

    def flush_all(self) -> None:
        """Flush every materialised cell topology (end of batch)."""
        for topology in self._cells.values():
            topology.flush()

    def violations(self) -> Dict[Tuple[str, CellKey], float]:
        """Last-batch ``N_v`` per (attribute, cell) pair.

        Pairs whose every query is paused are excluded: no acquisition was
        requested for them, so their Flatten shortfall is not a signal the
        budget tuner should react to.
        """
        report: Dict[Tuple[str, CellKey], float] = {}
        for key, topology in self._cells.items():
            for attribute, violation in topology.violations().items():
                if self._all_paused(topology.chain(attribute).query_ids):
                    continue
                report[(attribute, key)] = violation
        return report

    def check_invariants(self) -> None:
        """Check the structural invariants of every materialised topology."""
        for topology in self._cells.values():
            topology.check_invariants()

    # ------------------------------------------------------------------
    def stats(self) -> PlannerStats:
        """A snapshot of the planner's current state."""
        return PlannerStats(
            queries=len(self._plans),
            materialized_cells=len(self._cells),
            pmat_operators=sum(t.operator_count() for t in self._cells.values()),
            union_operators=len(self._plans),
            rebuilds=sum(t.rebuilds for t in self._cells.values()),
            insertions=self._insertions,
            deletions=self._deletions,
            updates=self._updates,
            paused_queries=len(self._paused),
            cells_touched_by_last_change=self._last_touched,
        )

    def describe(self) -> str:
        """Human-readable dump of every materialised cell topology."""
        lines = [
            f"planner: {len(self._plans)} queries over "
            f"{len(self._cells)} materialised cells"
        ]
        for key in sorted(self._cells):
            lines.append(self._cells[key].describe())
        return "\n".join(lines)
