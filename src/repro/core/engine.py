"""The CrAQR engine: the facade tying every component together (Fig. 1).

A :class:`CraqrEngine` owns

* the logical grid over the deployment region,
* the request/response handler talking to a :class:`~repro.sensing.SensingWorld`,
* the query planner (per-cell PMAT topologies + per-query merge stage),
* the stream fabricator (map / process / merge per batch),
* the budget tuner (``N_v`` feedback control of acquisition budgets), and
* per-query result buffers.

The engine's public surface is organised around *live query sessions*: a
:class:`QueryHandle` is not just a window onto a finished run but the
control point of a continuously executing query —

* **continuous views** — the primary serving API:
  :meth:`QueryHandle.view` (or a ``CREATE VIEW`` statement) attaches a
  declaratively specified windowed aggregate
  (:class:`~repro.views.ViewSpec`) that is maintained incrementally off
  the subscription path and read as immutable
  :class:`~repro.views.ViewFrame`\\ s through resumable frame cursors —
  a dashboard fan-out never rescans (or even sees) raw tuples;
* **incremental consumption** — the power-user path:
  :meth:`QueryHandle.cursor` returns a resumable cursor over the raw
  stream whose reads cost O(new tuples) regardless of history, and
  :meth:`QueryHandle.subscribe` registers push callbacks fired once per
  batch with the delivered :class:`~repro.streams.TupleBatch`;
* **in-flight mutation** — :meth:`QueryHandle.set_rate` /
  :meth:`QueryHandle.set_region` replan the per-cell PMAT topology in place
  (buffer, batch accounting and untouched cells' budget state survive), and
  :meth:`QueryHandle.pause` / :meth:`QueryHandle.resume` detach and
  reattach acquisition without tearing the topology down;
* **statements** — :meth:`CraqrEngine.execute` runs parsed (or textual)
  ``ACQUIRE`` / ``ALTER`` / ``STOP`` / ``SHOW QUERIES`` / ``CREATE VIEW``
  / ``DROP VIEW`` / ``SHOW VIEWS`` statements against the same session
  API, and :meth:`CraqrEngine.query` resolves the ``AS <name>`` labels to
  handles;
* **bounded retention** — with
  :attr:`~repro.config.EngineConfig.retention_batches` set, buffers,
  engine reports and tuner history are evicted past the window while the
  lifetime accounting stays exact, so a service-mode engine runs
  indefinitely in bounded memory.

A typical session::

    engine = CraqrEngine(config, world)
    handle = engine.execute(
        "ACQUIRE rain FROM RECT(0, 0, 2, 2) AT RATE 10 PER KM2 PER MIN AS Storm"
    )
    rainfall = engine.execute(
        "CREATE VIEW Rainfall ON Storm AS AVG(value) GROUP BY CELL WINDOW 5"
    )
    frames = rainfall.frame_cursor()
    for _ in range(30):
        engine.run_batch()
        for frame in frames.fetch():
            ...                       # only the newly closed windows
    engine.execute("ALTER Storm SET RATE 5")
    engine.execute("DROP VIEW Rainfall")
    engine.execute("STOP Storm")

Each :meth:`run_batch` call acquires one batch window of crowdsensed tuples
from the world, fabricates every registered query's stream and adjusts
budgets from the rate-violation feedback.  ``register_query``/``run_batch``
keep their original behaviour, so pre-session code keeps working unchanged.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from ..config import EngineConfig
from ..errors import CraqrError, PlanningError, QueryError, RecoveryError, ViewError
from ..faults import (
    CrashInjector,
    CrashPoint,
    DegradationTracker,
    FaultInjector,
    SensorHealthMonitor,
)
from ..recovery import CheckpointStore, EngineSnapshot
from ..geometry import Grid
from ..sensing import HandlerReport, IncentiveScheme, RequestResponseHandler, SensingWorld
from ..storage import (
    DiscardedStore,
    QueryResultBuffer,
    RateEstimate,
    ResultCursor,
    Subscription,
)
from ..streams import SensorTuple, TupleBatch
from ..views import (
    ContinuousView,
    SharedSortCache,
    ViewHandle,
    ViewSessionInfo,
    ViewSpec,
)
from .budget import BudgetDecision, BudgetTuner
from .fabricator import BatchResult, StreamFabricator
from .planner import PlannerStats, QueryPlanner
from .query import AcquisitionalQuery

CellKey = Tuple[int, int]


@dataclass
class EngineReport:
    """Outcome of one :meth:`CraqrEngine.run_batch` call."""

    batch_index: int
    handler: HandlerReport
    fabrication: BatchResult
    budget_decisions: List[BudgetDecision] = field(default_factory=list)
    #: (attribute, cell) pairs the degradation tracker classified as
    #: fault-degraded after this batch (empty without a ResilienceConfig).
    degraded_pairs: FrozenSet[Tuple[str, CellKey]] = frozenset()

    @property
    def tuples_acquired(self) -> int:
        """Raw tuples the handler collected this batch."""
        return self.handler.responses_received

    @property
    def tuples_delivered(self) -> int:
        """Tuples delivered to query result streams this batch."""
        return self.fabrication.tuples_delivered


@dataclass(frozen=True)
class ViolationInfo:
    """One pair's rate violation of the last batch, fault-attributed.

    ``fault_attributed`` separates shortfalls the degradation tracker pins
    on faults (collapsed response rate — outage, quarantined population)
    from planner error (budget still converging); ``response_rate`` is the
    tracker's smoothed accepted-response rate for the pair (``None`` when
    no resilience config is attached or the pair was never requested).
    """

    attribute: str
    cell: CellKey
    violation_percent: float
    fault_attributed: bool
    response_rate: Optional[float]


@dataclass(frozen=True)
class QuerySessionInfo:
    """One row of :meth:`CraqrEngine.sessions` (the ``SHOW QUERIES`` output).

    ``paused`` reflects the live pause/resume state and ``total_tuples``
    the *lifetime* delivered count (exact across retention eviction);
    ``views`` counts the continuous views currently maintained on the
    session.
    """

    label: str
    query_id: int
    attribute: str
    requested_rate: float
    region_area: float
    paused: bool
    total_tuples: int
    batches_completed: int
    achieved_rate: Optional[float]
    views: int = 0
    #: cells of this query currently classified as fault-degraded (empty
    #: without a ResilienceConfig).
    degraded_pairs: Tuple[CellKey, ...] = ()


@dataclass
class StatementResult:
    """Outcome of one statement of an :meth:`CraqrEngine.execute_script` run.

    Exactly one of ``result`` / ``error`` is meaningful: ``error`` holds
    the :class:`~repro.errors.CraqrError` the statement raised (only under
    ``on_error="continue"``), otherwise ``result`` is whatever
    :meth:`CraqrEngine.execute` returned for the statement.
    """

    statement: object
    result: object = None
    error: Optional[Exception] = None

    @property
    def ok(self) -> bool:
        """Whether the statement executed without raising."""
        return self.error is None


class _ReportsView(Sequence):
    """A live, read-only view over the engine's report list.

    Returned by :attr:`CraqrEngine.reports` so every property access costs
    O(1) instead of copying a list that grows with the number of batches.
    With :attr:`~repro.config.EngineConfig.retention_batches` set, index 0
    is the oldest *retained* report.
    """

    __slots__ = ("_items",)

    def __init__(self, items: List[EngineReport]) -> None:
        self._items = items

    def __getitem__(self, index):
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_ReportsView({len(self._items)} reports)"


class QueryHandle:
    """The user-facing handle to one live query session."""

    def __init__(
        self,
        query: AcquisitionalQuery,
        buffer: QueryResultBuffer,
        engine: "CraqrEngine",
    ) -> None:
        self._query = query
        self._buffer = buffer
        self._engine = engine

    @property
    def query(self) -> AcquisitionalQuery:
        """The underlying acquisitional query (reflects in-flight ALTERs)."""
        return self._query

    @property
    def query_id(self) -> int:
        """The query's id."""
        return self._query.query_id

    @property
    def buffer(self) -> QueryResultBuffer:
        """The query's result buffer (outlives deregistration)."""
        return self._buffer

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def results(self) -> List[SensorTuple]:
        """The *retained* tuples of the fabricated stream, oldest first.

        Copies the whole retained history on every call; a polling consumer
        should prefer :meth:`cursor`, whose reads cost O(new tuples).
        """
        return self._buffer.items()

    def cursor(self, *, tail: bool = False) -> ResultCursor:
        """A resumable cursor over the query's stream.

        Every read returns only the tuples appended since the previous
        read — in object form (:meth:`~repro.storage.ResultCursor.fetch`)
        or as one columnar batch
        (:meth:`~repro.storage.ResultCursor.fetch_batch`) — at a cost
        independent of how much history the buffer holds.  ``tail=True``
        skips everything already delivered.  A cursor that falls behind the
        retention window raises :class:`~repro.errors.StorageError` on its
        next read.
        """
        return self._buffer.cursor(tail=tail)

    def subscribe(self, fn: Callable[[TupleBatch], None]) -> Subscription:
        """Push consumption: call ``fn`` once per batch with the new tuples.

        The callback receives each completed batch's deliveries as one
        :class:`~repro.streams.TupleBatch` (batches that delivered nothing
        do not fire).  Returns a :class:`~repro.storage.Subscription`;
        cancel it to detach.
        """
        return self._buffer.subscribe(fn)

    def view(self, spec: ViewSpec, *, name: Optional[str] = None) -> ViewHandle:
        """Attach a continuous view to this query's delivery stream.

        The primary serving API: instead of polling raw tuples, declare a
        windowed aggregate (:class:`~repro.views.ViewSpec`) and read the
        emitted :class:`~repro.views.ViewFrame`\\ s through
        :meth:`~repro.views.ViewHandle.frames` or a resumable
        :meth:`~repro.views.ViewHandle.frame_cursor` (O(new frames) per
        read).  Maintenance is incremental off the subscription path —
        each delivered batch is folded into per-group partials, history is
        never rescanned.  ``name`` (or ``spec.name``) must be unique
        across the engine; omitted names are auto-assigned ``V<n>``.
        """
        return self._engine.create_view(self._query.query_id, spec, name=name)

    def views(self) -> List[ViewHandle]:
        """Handles of the views currently maintained on this query."""
        return self._engine.views_of(self._query.query_id)

    def achieved_rate(self, last_batches: Optional[int] = None) -> RateEstimate:
        """Achieved spatio-temporal rate (over all or the last N batches).

        ``last_batches`` must be positive when given; ``None`` covers the
        query's whole history (exact even after retention evicted old
        batches).
        """
        return self._buffer.rate_over_batches(
            self._engine.config.batch_duration, last=last_batches
        )

    # ------------------------------------------------------------------
    # In-flight mutation
    # ------------------------------------------------------------------
    def set_rate(self, rate) -> "QueryHandle":
        """Change the query's requested rate on the live engine.

        Accepts a number or a :class:`~repro.core.query.RateSpec`.  The
        per-cell topology is replanned in place: the result buffer, batch
        accounting and the budget state of every cell the query keeps are
        preserved, so the achieved rate converges to the new target without
        restarting the query.
        """
        return self._engine.update_query(self._query.query_id, rate=rate)

    def set_region(self, region) -> "QueryHandle":
        """Change the query's region on the live engine.

        Accepts a :class:`~repro.geometry.Region` or
        :class:`~repro.geometry.Rectangle`.  Cells left behind drop the
        query (and are dematerialised when empty), newly covered cells are
        materialised and budget-seeded; the result buffer keeps the tuples
        acquired under the old region.
        """
        return self._engine.update_query(self._query.query_id, region=region)

    def pause(self) -> None:
        """Detach acquisition for this query without tearing down its topology.

        While paused the query demands no acquisition, receives no
        deliveries (even from cells shared with active queries) and its
        batch accounting is frozen, so the achieved rate is not diluted by
        the paused interval.
        """
        self._engine.pause_query(self._query.query_id)

    def resume(self) -> None:
        """Reattach acquisition after :meth:`pause`."""
        self._engine.resume_query(self._query.query_id)

    def is_paused(self) -> bool:
        """Whether the query is currently paused."""
        return self._engine.planner.is_paused(self._query.query_id)

    # ------------------------------------------------------------------
    def is_active(self) -> bool:
        """Whether the query is still registered with the engine."""
        return self._engine.has_query(self._query.query_id)

    def delete(self) -> None:
        """Deregister the query from the engine.

        The handle's buffer stays readable (results, cursors), but the
        engine drops its own reference so the memory is reclaimable once
        the caller lets go of the handle.
        """
        self._engine.delete_query(self._query.query_id)


class CraqrEngine:
    """The complete CrAQR query processor."""

    #: Runtime wiring __getstate__ deliberately drops from checkpoints;
    #: craqr-lint (CRQ302) checks this declaration against the exclusions.
    _DERIVED_STATE = ("_crash", "_plan_cache")

    def __init__(
        self,
        config: EngineConfig,
        world: SensingWorld,
        *,
        incentive: Optional[IncentiveScheme] = None,
    ) -> None:
        self._config = config
        self._world = world
        self._rng = np.random.default_rng(config.seed)
        self._grid = Grid(world.region, config.grid_side)
        faults = (
            FaultInjector(config.faults, world.state_arrays)
            if config.faults is not None
            else None
        )
        resilience = config.resilience
        health = (
            SensorHealthMonitor(resilience.health, world.state_arrays)
            if resilience is not None and resilience.health is not None
            else None
        )
        self._handler = RequestResponseHandler(
            world,
            self._grid,
            default_budget=config.budget.initial,
            incentive=incentive,
            faults=faults,
            resilience=resilience,
            health=health,
        )
        self._degradation = (
            DegradationTracker(
                threshold=resilience.degraded_response_rate,
                alpha=resilience.degraded_alpha,
            )
            if resilience is not None
            else None
        )
        self._discarded = DiscardedStore() if config.store_discarded else None
        self._planner = QueryPlanner(
            self._grid,
            batch_duration=config.batch_duration,
            online_estimation=config.online_estimation,
            discard_recorder=(self._discarded.record if self._discarded is not None else None),
            rng=np.random.default_rng(self._rng.integers(0, 2 ** 63 - 1)),
        )
        self._fabricator = StreamFabricator(self._planner, self._grid)
        self._tuner = BudgetTuner(
            self._handler, config.budget, history_batches=config.retention_batches
        )
        self._buffers: Dict[int, QueryResultBuffer] = {}
        self._handles: Dict[int, QueryHandle] = {}
        #: continuous views by name, plus their user-facing handles.
        self._views: Dict[str, ContinuousView] = {}
        self._view_handles: Dict[str, ViewHandle] = {}
        self._view_counter = 0
        self._reports: List[EngineReport] = []
        self._reports_view = _ReportsView(self._reports)
        self._batch_index = 0
        #: true while run_batch is dispatching end-of-batch notifications;
        #: a view created from inside a subscriber callback must not claim
        #: to have observed the batch being dispatched.
        self._ending_batch = False
        #: tuples delivered to queries whose buffers were since dropped by
        #: delete_query; keeps total_tuples_delivered exact.
        self._delivered_dropped = 0
        #: periodic checkpoint store, when config.checkpoints is set.
        self._checkpoints = (
            CheckpointStore(
                config.checkpoints.directory, retain=config.checkpoints.retain
            )
            if config.checkpoints is not None
            else None
        )
        #: armed crash injector (tests only); never survives a restore.
        self._crash: Optional[CrashInjector] = None
        #: compiled-plan cache (repro.plan.PlanCache) — derived state,
        #: created lazily, never checkpointed, rebuilt after restore.
        self._plan_cache = None

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def config(self) -> EngineConfig:
        """The engine configuration."""
        return self._config

    @property
    def world(self) -> SensingWorld:
        """The sensing world the engine acquires from."""
        return self._world

    @property
    def fast_sim(self) -> bool:
        """Whether the world runs in shared-stream fast-sim mode.

        Set via :attr:`repro.sensing.WorldConfig.vectorized_rng`; with it on
        (and ``config.columnar``) both the simulation and the query pipeline
        are vectorised end-to-end, at the cost of per-sensor-stream
        reproducibility.
        """
        return self._world.vectorized

    @property
    def grid(self) -> Grid:
        """The logical grid over the deployment region."""
        return self._grid

    @property
    def handler(self) -> RequestResponseHandler:
        """The request/response handler."""
        return self._handler

    @property
    def planner(self) -> QueryPlanner:
        """The query planner."""
        return self._planner

    @property
    def fabricator(self) -> StreamFabricator:
        """The crowdsensed stream fabricator."""
        return self._fabricator

    @property
    def budget_tuner(self) -> BudgetTuner:
        """The budget tuner."""
        return self._tuner

    @property
    def discarded_store(self) -> Optional[DiscardedStore]:
        """The store of discarded tuples, when enabled."""
        return self._discarded

    @property
    def fault_injector(self) -> Optional[FaultInjector]:
        """The configured fault injector, if any."""
        return self._handler.faults

    @property
    def health_monitor(self) -> Optional[SensorHealthMonitor]:
        """The sensor-health monitor, if a resilience config attached one."""
        return self._handler.health_monitor

    @property
    def degradation(self) -> Optional[DegradationTracker]:
        """The per-(attribute, cell) degradation tracker, if any."""
        return self._degradation

    def degraded_pairs(self) -> FrozenSet[Tuple[str, CellKey]]:
        """Pairs currently classified as fault-degraded (empty without
        a :class:`~repro.faults.ResilienceConfig`)."""
        if self._degradation is None:
            return frozenset()
        return self._degradation.degraded

    def violations(self) -> List[ViolationInfo]:
        """The last batch's rate violations with fault attribution.

        One :class:`ViolationInfo` row per (attribute, cell) pair the
        F-operators reported on, separating fault-attributed shortfalls
        (degraded response rate — the tuner froze these budgets) from
        planner error (budget still converging — the tuner acts on these).
        Empty before the first batch.
        """
        if not self._reports:
            return []
        report = self._reports[-1]
        rows: List[ViolationInfo] = []
        for (attribute, cell), violation in report.fabrication.violations.items():
            response_rate = (
                self._degradation.response_rate_for(attribute, cell)
                if self._degradation is not None
                else None
            )
            rows.append(
                ViolationInfo(
                    attribute=attribute,
                    cell=cell,
                    violation_percent=violation,
                    fault_attributed=(attribute, cell) in report.degraded_pairs,
                    response_rate=response_rate,
                )
            )
        return rows

    @property
    def reports(self) -> Sequence[EngineReport]:
        """Reports of retained batches (a live, read-only view).

        Without retention this is every batch ever run; with
        :attr:`~repro.config.EngineConfig.retention_batches` only the most
        recent window is kept.
        """
        return self._reports_view

    @property
    def batches_run(self) -> int:
        """Number of batches executed (survives report eviction)."""
        return self._batch_index

    def planner_stats(self) -> PlannerStats:
        """Snapshot of the planner's state (operator counts, materialised cells)."""
        return self._planner.stats()

    # ------------------------------------------------------------------
    # Compiled plans (repro.plan)
    # ------------------------------------------------------------------
    @property
    def plan_cache(self):
        """The compiled-plan cache (``None`` until the first compiled batch).

        Derived state: it is never checkpointed and a restored engine
        rebuilds it lazily; its ``compiles``/``reuses`` counters are what
        the churn-storm regression test pins.
        """
        return self._plan_cache

    def _compiled_enabled(self) -> bool:
        """Whether batches run through compiled chain programs.

        Requires the columnar path and ``config.compile_plans``; chains
        recording discarded tuples materialise every dropped batch, so a
        ``store_discarded`` engine stays on the interpreted reference path.
        """
        return (
            self._config.columnar
            and self._config.compile_plans
            and self._discarded is None
        )

    def _compiled_programs(self):
        """Valid compiled programs for this batch (``None`` when disabled)."""
        if not self._compiled_enabled():
            return None
        if self._plan_cache is None:
            from ..plan import PlanCache

            self._plan_cache = PlanCache()
        return self._plan_cache.programs_for(self._planner)

    def explain(self, name: str) -> str:
        """Render the compiled plan slice for a query label or view name.

        The ``EXPLAIN <query|view>`` statement: lowers the live topology
        (and every active view) into the plan graph, runs the optimizer
        pass pipeline, and renders the nodes the target rides on together
        with the fused kernel groupings, cross-query sharing, the merge
        stage structure and the seed cost model's steady-state estimate.
        """
        from ..plan import build_plan_graph, optimize, render_explain
        from .optimizer import estimate_query_cost

        view = self._views.get(name)
        view_name: Optional[str] = None
        if view is not None:
            view_name = name
            handle = self._handles.get(view.query_id)
            if handle is None:  # pragma: no cover - drop_view removes these
                raise QueryError(f"view {name!r} has no registered query")
        else:
            try:
                handle = self.query(name)
            except QueryError:
                raise QueryError(
                    f"EXPLAIN target {name!r} matches no registered query "
                    f"label and no view name"
                ) from None
        query = handle.query
        graph = build_plan_graph(self._planner, self._views.values())
        optimize(graph, batch_duration=self._config.batch_duration)
        cost = estimate_query_cost(
            query, self._grid, batch_duration=self._config.batch_duration
        )
        return render_explain(
            graph,
            query_id=query.query_id,
            query_label=query.label,
            view_name=view_name,
            compiled=self._compiled_enabled(),
            cost_estimate=cost,
        )

    # ------------------------------------------------------------------
    # Query lifecycle
    # ------------------------------------------------------------------
    def has_query(self, query_id: int) -> bool:
        """Whether the query is currently registered."""
        return query_id in self._handles

    def query_handles(self) -> List[QueryHandle]:
        """Handles of every registered query."""
        return list(self._handles.values())

    def query(self, label: str) -> QueryHandle:
        """Resolve a query by its label (the ``AS <name>`` of the query language).

        Unnamed queries answer to their default ``Q<id>`` label.  Raises
        :class:`~repro.errors.QueryError` when no registered query carries
        the label, or when several do (labels are not enforced unique at
        registration, so lookup is where ambiguity surfaces).
        """
        matches = [
            handle
            for handle in self._handles.values()
            if handle.query.label == label
        ]
        if not matches:
            raise QueryError(f"no registered query is labelled {label!r}")
        if len(matches) > 1:
            raise QueryError(
                f"label {label!r} is ambiguous: {len(matches)} registered "
                f"queries share it; address them by query_id instead"
            )
        return matches[0]

    def register_query(self, query: AcquisitionalQuery) -> QueryHandle:
        """Register an acquisitional query and return a handle to its results."""
        if query.query_id in self._handles:
            raise QueryError(f"query {query.label} is already registered")
        buffer = QueryResultBuffer(
            query.query_id,
            requested_rate=query.rate,
            region_area=query.region.area,
            retention_batches=self._config.retention_batches,
        )
        self._buffers[query.query_id] = buffer
        touched = self._planner.insert_query(
            query,
            on_result=self._deliver_item,
            on_result_batch=self._deliver_batch,
        )
        # Seed the handler's budget for every (attribute, cell) pair the
        # query activates so the first batch already respects the config.
        for key in touched:
            self._tuner.ensure_initial_budget(query.attribute, key)
        handle = QueryHandle(query, buffer, self)
        self._handles[query.query_id] = handle
        return handle

    def _deliver_item(self, query_id: int, item: SensorTuple) -> None:
        """Object-path delivery into a query's result buffer.

        A bound method (not a per-query closure) so the planner's stored
        handlers — and with them the whole engine — pickle into a
        checkpoint.
        """
        target = self._buffers.get(query_id)
        if target is None:
            return
        target.append(item)
        self._fabricator.register_delivery(query_id)

    def _deliver_batch(self, query_id: int, batch: TupleBatch) -> None:
        """Columnar counterpart of :meth:`_deliver_item`."""
        target = self._buffers.get(query_id)
        if target is None:
            return
        target.extend_batch(batch)
        self._fabricator.register_delivery_batch(query_id, len(batch))

    def update_query(
        self, query_id: int, *, rate=None, region=None
    ) -> QueryHandle:
        """Replan a live query's rate and/or region in place.

        The planner rewires only the cells the query touches (see
        :meth:`~repro.core.planner.QueryPlanner.update_query`); newly
        covered cells get the configured initial budget, cells the query
        keeps retain their tuned budget, and the result buffer, batch index
        and accounting all survive, so rate estimates continue seamlessly
        against the new target.
        """
        handle = self._handles.get(query_id)
        if handle is None:
            raise PlanningError(f"query id {query_id} is not registered")
        update = self._planner.update_query(query_id, rate=rate, region=region)
        for key in update.added:
            self._tuner.ensure_initial_budget(update.query.attribute, key)
        buffer = handle.buffer
        if rate is not None:
            buffer.set_requested_rate(update.query.rate)
        if region is not None:
            buffer.set_region_area(update.query.region.area)
        handle._query = update.query
        return handle

    def pause_query(self, query_id: int) -> None:
        """Detach a query's acquisition without tearing down its topology."""
        if query_id not in self._handles:
            raise PlanningError(f"query id {query_id} is not registered")
        self._planner.set_paused(query_id, True)

    def resume_query(self, query_id: int) -> None:
        """Reattach a paused query's acquisition."""
        if query_id not in self._handles:
            raise PlanningError(f"query id {query_id} is not registered")
        self._planner.set_paused(query_id, False)

    def delete_query(self, query_id: int) -> None:
        """Deregister a query and tear down its topology pieces.

        The engine drops its reference to the query's result buffer — any
        surviving :class:`QueryHandle` keeps the fabricated results
        readable, but a long-running engine no longer accumulates buffers
        of dead queries (lifetime delivery totals stay exact).
        """
        if query_id not in self._handles:
            raise PlanningError(f"query id {query_id} is not registered")
        # Views of a stopped query stop being maintained (their frames stay
        # readable through surviving ViewHandles), mirroring the buffer.
        for name in [
            name for name, view in self._views.items() if view.query_id == query_id
        ]:
            self.drop_view(name)
        self._planner.delete_query(query_id)
        del self._handles[query_id]
        buffer = self._buffers.pop(query_id, None)
        if buffer is not None:
            self._delivered_dropped += buffer.total_tuples

    # ------------------------------------------------------------------
    # Continuous views (the serving API over query sessions)
    # ------------------------------------------------------------------
    def create_view(
        self, query_id: int, spec: ViewSpec, *, name: Optional[str] = None
    ) -> ViewHandle:
        """Attach a continuous view to a registered query's stream.

        The view subscribes to the query's delivery stream (so only
        batches completed after creation are folded in), its frame
        boundaries are validated against the engine's batch duration, and
        its frame buffer inherits the engine's
        :attr:`~repro.config.EngineConfig.retention_batches` bound.  The
        view name (explicit, from ``spec.name``, or auto-assigned
        ``V<n>``) must be unique across the engine — ``DROP VIEW`` and
        ``SHOW VIEWS`` address views by it.
        """
        handle = self._handles.get(query_id)
        if handle is None:
            raise PlanningError(f"query id {query_id} is not registered")
        view_name = name or spec.name
        if view_name is None:
            # Auto-assignment skips names the user already took: an unnamed
            # request must never fail over a collision it didn't choose.
            while True:
                self._view_counter += 1
                view_name = f"V{self._view_counter}"
                if view_name not in self._views:
                    break
        if view_name in self._views:
            raise ViewError(
                f"a view named {view_name!r} already exists "
                f"(on query {self._views[view_name].query_label!r}); "
                f"DROP VIEW it first or pick another name"
            )
        # A view only observes deliveries subscribed *before* a batch's
        # end_batch notifications fire; when create_view runs from inside
        # one of those callbacks, the in-flight batch is already partially
        # dispatched, so the view's origin moves past it — every emitted
        # frame must cover a fully observed window.
        observed_from = self._batch_index + (1 if self._ending_batch else 0)
        view = ContinuousView(
            spec,
            name=view_name,
            query_id=query_id,
            query_label=handle.query.label,
            grid=self._grid,
            batch_duration=self._config.batch_duration,
            retention_batches=self._config.retention_batches,
            start_time=observed_from * self._config.batch_duration,
        )

        view.attach(handle.subscribe(view.accept))
        self._views[view_name] = view
        self._install_shared_sort(view)
        view_handle = ViewHandle(view, self)
        self._view_handles[view_name] = view_handle
        return view_handle

    def _install_shared_sort(self, view: ContinuousView) -> None:
        """Give the view its query's shared lexsort cache (compiled path).

        Every view on one query folds the same delivered batch; with
        compiled plans on, views sharing a ``(slide, group_by)`` signature
        reuse one (pane, group) sort per batch.  The cache lives only on
        the views themselves (runtime wiring, dropped from checkpoints),
        so installation finds a sibling's cache or starts a fresh one.
        """
        if not self._compiled_enabled():
            return
        for other in self._views.values():
            if other is view or other.query_id != view.query_id:
                continue
            cache = getattr(other, "_shared_sort", None)
            if cache is not None:
                view._shared_sort = cache
                return
        view._shared_sort = SharedSortCache()

    def has_view(self, name: str) -> bool:
        """Whether a view with this name is currently maintained."""
        return name in self._views

    def view(self, name: str) -> ViewHandle:
        """Resolve a maintained view by name."""
        handle = self._view_handles.get(name)
        if handle is None:
            raise ViewError(f"no view is named {name!r}")
        return handle

    def view_handles(self) -> List[ViewHandle]:
        """Handles of every maintained view."""
        return list(self._view_handles.values())

    def views_of(self, query_id: int) -> List[ViewHandle]:
        """Handles of the views maintained on one query."""
        return [
            self._view_handles[name]
            for name, view in self._views.items()
            if view.query_id == query_id
        ]

    def drop_view(self, name: str) -> ViewHandle:
        """Stop maintaining a view (its frames stay readable).

        The delivery subscription is cancelled and the view is removed
        from the registry; the returned (now inactive) handle keeps the
        frame buffer readable, mirroring how ``STOP`` leaves a query's
        result buffer readable.
        """
        view = self._views.pop(name, None)
        if view is None:
            raise ViewError(f"no view is named {name!r}")
        view.detach()
        return self._view_handles.pop(name)

    def views(self) -> List[ViewSessionInfo]:
        """One :class:`~repro.views.ViewSessionInfo` row per maintained view
        (the ``SHOW VIEWS`` output)."""
        return [view.info() for view in self._views.values()]

    # ------------------------------------------------------------------
    # Statement execution (the query language's session surface)
    # ------------------------------------------------------------------
    def execute(self, statement):
        """Execute one query-language statement against the live engine.

        ``statement`` is an AST node from
        :func:`repro.query.parse_statements`, or a string holding exactly
        one statement.  Returns

        * :class:`QueryHandle` for ``ACQUIRE`` (the new session) and
          ``ALTER`` (the updated session),
        * the deleted query's :class:`QueryHandle` for ``STOP`` (its buffer
          stays readable),
        * a list of :class:`QuerySessionInfo` rows for ``SHOW QUERIES``,
        * :class:`~repro.views.ViewHandle` for ``CREATE VIEW`` (the live
          view) and ``DROP VIEW`` (the detached view, frames still
          readable),
        * a list of :class:`~repro.views.ViewSessionInfo` rows for ``SHOW
          VIEWS``,
        * the rendered plan string for ``EXPLAIN <query|view>``.
        """
        # Imported lazily: repro.query imports repro.core.query, so a
        # module-level import would be order-sensitive during package init.
        from ..query.ast import (
            AlterStatement,
            CreateViewStatement,
            DropViewStatement,
            ExplainStatement,
            ParsedQuery,
            ShowQueriesStatement,
            ShowViewsStatement,
            StopStatement,
        )
        from ..query.parser import parse_statements

        if isinstance(statement, str):
            statements = parse_statements(statement)
            if len(statements) != 1:
                raise QueryError(
                    f"execute() takes exactly one statement, got "
                    f"{len(statements)}; parse_statements() + a loop runs scripts"
                )
            statement = statements[0]
        if isinstance(statement, ParsedQuery):
            return self.register_query(statement.to_query())
        if isinstance(statement, AlterStatement):
            handle = self.query(statement.name)
            rate = statement.rate_spec()
            region = statement.region.to_region() if statement.region is not None else None
            return self.update_query(handle.query_id, rate=rate, region=region)
        if isinstance(statement, StopStatement):
            handle = self.query(statement.name)
            self.delete_query(handle.query_id)
            return handle
        if isinstance(statement, ShowQueriesStatement):
            return self.sessions()
        if isinstance(statement, CreateViewStatement):
            handle = self.query(statement.query_name)
            return self.create_view(
                handle.query_id, statement.to_spec(), name=statement.name
            )
        if isinstance(statement, DropViewStatement):
            return self.drop_view(statement.name)
        if isinstance(statement, ShowViewsStatement):
            return self.views()
        if isinstance(statement, ExplainStatement):
            return self.explain(statement.name)
        raise QueryError(
            f"cannot execute a {type(statement).__name__}; expected a parsed "
            f"ACQUIRE/ALTER/STOP/SHOW QUERIES/CREATE VIEW/DROP VIEW/SHOW "
            f"VIEWS/EXPLAIN statement or its text"
        )

    def execute_script(self, script, *, on_error: str = "raise", validate=None):
        """Parse and run a multi-statement script in order.

        ``script`` is a string of semicolon/newline-separated statements
        (or an already-parsed statement sequence).  Each statement goes
        through :meth:`execute`; the per-statement outcomes come back as a
        list of :class:`StatementResult` in script order.

        ``on_error`` picks the mid-script failure contract:

        * ``"raise"`` (default) — the first failing statement raises a
          :class:`~repro.errors.QueryError` naming its position; the
          effects of the statements before it persist (there is no
          rollback — sessions are live engine state, not a transaction).
        * ``"continue"`` — failures are captured on their
          :class:`StatementResult` (``.error``) and the script keeps
          going, the repl/server behaviour.

        Parse errors always raise: a script that does not parse has no
        statement positions to attribute results to.  ``validate`` is an
        optional per-statement hook (e.g. an attribute-catalog check) run
        before execution; a :class:`~repro.errors.CraqrError` it raises is
        handled exactly like an execution error.
        """
        from ..query.parser import parse_statements

        if on_error not in ("raise", "continue"):
            raise QueryError(
                f"on_error must be 'raise' or 'continue', got {on_error!r}"
            )
        if isinstance(script, str):
            statements = parse_statements(script)
        else:
            statements = list(script)
        results: List[StatementResult] = []
        total = len(statements)
        for index, statement in enumerate(statements):
            try:
                if validate is not None:
                    validate(statement)
                results.append(
                    StatementResult(statement=statement, result=self.execute(statement))
                )
            except CraqrError as exc:
                if on_error == "raise":
                    raise QueryError(
                        f"script statement {index + 1} of {total} failed: {exc}"
                    ) from exc
                results.append(StatementResult(statement=statement, error=exc))
        return results

    def sessions(self) -> List[QuerySessionInfo]:
        """One :class:`QuerySessionInfo` row per registered query."""
        rows: List[QuerySessionInfo] = []
        degraded = self.degraded_pairs()
        for handle in self._handles.values():
            buffer = handle.buffer
            achieved: Optional[float] = None
            if buffer.batches_completed > 0:
                achieved = handle.achieved_rate().achieved_rate
            degraded_cells: Tuple[CellKey, ...] = ()
            if degraded:
                attribute = handle.query.attribute
                degraded_cells = tuple(
                    cell
                    for cell in self._planner.cells_for_query(handle.query_id)
                    if (attribute, cell) in degraded
                )
            rows.append(
                QuerySessionInfo(
                    label=handle.query.label,
                    query_id=handle.query_id,
                    attribute=handle.query.attribute,
                    requested_rate=handle.query.rate,
                    region_area=handle.query.region.area,
                    paused=handle.is_paused(),
                    total_tuples=buffer.total_tuples,
                    batches_completed=buffer.batches_completed,
                    achieved_rate=achieved,
                    views=sum(
                        1
                        for view in self._views.values()
                        if view.query_id == handle.query_id
                    ),
                    degraded_pairs=degraded_cells,
                )
            )
        return rows

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def run_batch(self) -> EngineReport:
        """Acquire and fabricate one batch window.

        With ``config.columnar`` (the default) acquisition and fabrication
        move whole :class:`TupleBatch` columns; otherwise every tuple is an
        individual object.  Both paths are seeded identically and deliver
        the same tuples.  When the world additionally runs in fast-sim mode
        (:attr:`~repro.sensing.WorldConfig.vectorized_rng`), sensor movement
        and acquisition sampling vectorise across the whole crowd — the
        handler then serves each attribute with one fused
        :meth:`~repro.sensing.RequestResponseHandler.acquire_attribute_batch`
        round instead of one round per ``(attribute, cell)`` pair — faster
        still, but statistically rather than bit-for-bit reproducible.
        """
        duration = self._config.batch_duration
        batch = self._batch_index
        attribute_cells = self._planner.attribute_cells()
        if self._config.columnar:
            batches, handler_report = self._handler.acquire_batches(
                attribute_cells, duration=duration
            )
            self._world.advance(duration)
            self._crash_barrier(CrashPoint.POST_ACQUISITION, batch)
            fabrication = self._fabricator.process_batch_columnar(
                batches, programs=self._compiled_programs()
            )
        else:
            tuples_by_cell, handler_report = self._handler.acquire(
                attribute_cells, duration=duration
            )
            # Move the world forward to the end of the batch window.
            self._world.advance(duration)
            self._crash_barrier(CrashPoint.POST_ACQUISITION, batch)
            fabrication = self._fabricator.process_batch(tuples_by_cell)
        self._crash_barrier(CrashPoint.POST_MERGE, batch)
        degraded: FrozenSet[Tuple[str, CellKey]] = frozenset()
        if self._degradation is not None:
            degraded = self._degradation.update(handler_report)
        decisions = self._tuner.tune(fabrication.violations, degraded=degraded)
        self._crash_barrier(CrashPoint.PRE_VIEW_FOLD, batch)
        # Snapshot: a subscriber callback firing inside end_batch may
        # register or delete queries, mutating the buffer dict.
        self._ending_batch = True
        try:
            for query_id, buffer in list(self._buffers.items()):
                # Paused queries freeze their batch accounting: the pause
                # window neither counts batches nor dilutes the achieved rate.
                if not self._planner.is_paused(query_id):
                    buffer.end_batch()
        finally:
            self._ending_batch = False
        report = EngineReport(
            batch_index=self._batch_index,
            handler=handler_report,
            fabrication=fabrication,
            budget_decisions=decisions,
            degraded_pairs=degraded,
        )
        self._reports.append(report)
        retention = self._config.retention_batches
        if retention is not None and len(self._reports) > retention:
            del self._reports[: len(self._reports) - retention]
        self._batch_index += 1
        # Advance the continuous views' window clocks.  Deliveries already
        # arrived through the subscription path inside end_batch above;
        # this closes every window whose end the sim clock just passed —
        # including windows of paused or quiet queries, which emit empty
        # frames so the frame sequence stays gap-free in sim time.
        if self._views:
            now = self._batch_index * duration
            for view in list(self._views.values()):
                if view.is_active:  # failed views are quarantined, not advanced
                    view.advance_to(now)
        # The batch is fully committed: acquisition, deliveries, tuning,
        # dispatch and view folds are all done — the crash-consistent point
        # where a periodic checkpoint captures the engine.
        if self._checkpoints is not None:
            every = self._config.checkpoints.every
            if every is not None and self._batch_index % every == 0:
                self._write_checkpoint(batch)
        return report

    def run(self, batches: int) -> List[EngineReport]:
        """Run several consecutive batches."""
        if batches <= 0:
            raise QueryError("the number of batches must be positive")
        return [self.run_batch() for _ in range(batches)]

    # ------------------------------------------------------------------
    # Checkpoints, crash injection and recovery
    # ------------------------------------------------------------------
    @property
    def checkpoint_store(self) -> Optional[CheckpointStore]:
        """The periodic checkpoint store (``None`` without a
        :class:`~repro.config.CheckpointConfig`)."""
        return self._checkpoints

    def arm_crash(self, injector: Optional[CrashInjector]) -> None:
        """Arm (or with ``None`` disarm) a process-crash injection.

        Test plumbing for the recovery harness: the armed
        :class:`~repro.faults.CrashInjector` fires at its
        :class:`~repro.faults.CrashPoint` barrier of the batch loop.  An
        armed injector is never checkpointed — a restored engine does not
        inherit the crash plan.
        """
        self._crash = injector

    def _crash_barrier(self, point: CrashPoint, batch_index: int) -> None:
        if self._crash is not None:
            self._crash.barrier(point, batch_index)

    def snapshot(self) -> EngineSnapshot:
        """Capture the complete engine state, in memory.

        Only valid at a batch boundary (never from inside a subscriber
        callback): result buffers have closed their batch and operator
        scratch buffers are empty, which is what makes the capture
        crash-consistent.
        """
        if self._ending_batch:
            raise RecoveryError(
                "cannot snapshot from inside a batch's subscriber dispatch; "
                "checkpoint at a batch boundary instead"
            )
        return EngineSnapshot.capture(self)

    def checkpoint(self, path: Optional[str] = None) -> pathlib.Path:
        """Write a checkpoint file and return its path.

        With ``path`` the snapshot goes to that exact file; without it the
        engine's configured :class:`~repro.recovery.CheckpointStore` names
        the file after the batch index and prunes past the retention cap.
        Raises :class:`~repro.errors.RecoveryError` when neither is
        available.
        """
        snap = self.snapshot()
        if path is not None:
            return snap.write(pathlib.Path(path))
        if self._checkpoints is None:
            raise RecoveryError(
                "no checkpoint directory configured "
                "(EngineConfig.checkpoints); pass an explicit path"
            )
        return self._checkpoints.write(snap)

    def _write_checkpoint(self, batch: int) -> pathlib.Path:
        """Periodic checkpoint with the mid-write crash barrier threaded in."""

        def mid_write() -> None:
            self._crash_barrier(CrashPoint.MID_CHECKPOINT_WRITE, batch)

        return self._checkpoints.write(self.snapshot(), pre_replace_hook=mid_write)

    @classmethod
    def restore(cls, path) -> "CraqrEngine":
        """Rebuild a live engine from one checkpoint file.

        The restored engine resumes exactly where the checkpoint left off:
        its next batch is seeded byte-identical to the batch the
        uninterrupted engine ran next (the contract pinned by
        ``tests/recovery/``).  Engine-managed view subscriptions are
        re-attached; user push subscriptions and cursors held by callers do
        not survive — re-subscribe after restore.
        """
        from ..recovery import restore_engine

        return restore_engine(path)

    @classmethod
    def restore_latest(cls, directory) -> "CraqrEngine":
        """Rebuild a live engine from the newest good checkpoint in a directory.

        Skips over torn or corrupt files (a crash mid-write leaves the
        previous checkpoint intact); raises
        :class:`~repro.errors.RecoveryError` when no file verifies.
        """
        from ..recovery import restore_latest

        return restore_latest(directory)

    def __getstate__(self):
        # An armed crash injector is test plumbing for the run being
        # captured, not engine state: a restored engine must replay the
        # crashed batch to completion, not crash again.
        state = dict(self.__dict__)
        state["_crash"] = None
        # The compiled-plan cache is derived state: it holds no RNG, no
        # counters and no results, and is rebuilt lazily from the restored
        # topology (the recovery contract of tests/plan/).
        state["_plan_cache"] = None
        return state

    def _reattach_after_restore(self) -> None:
        """Re-wire the subscription plumbing a snapshot deliberately drops.

        Buffers pickle without their subscriber lists, so after a restore
        every active view is re-subscribed to its query's delivery stream —
        in ``_views`` insertion order, with the same ``view.accept`` bound
        method ``create_view`` registered, so dispatch order (and therefore
        the replayed run) is identical to the captured engine's.
        Quarantined views stay detached, exactly as they were.
        """
        for view in self._views.values():
            if not view.is_active:
                continue
            handle = self._handles.get(view.query_id)
            if handle is None:  # pragma: no cover - drop_view removes these
                continue
            view.attach(handle.subscribe(view.accept))
            self._install_shared_sort(view)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def total_requests_sent(self) -> int:
        """Acquisition requests sent since the engine was created."""
        return self._handler.total_requests

    def total_tuples_acquired(self) -> int:
        """Raw tuples collected since the engine was created."""
        return self._handler.total_responses

    def total_tuples_delivered(self) -> int:
        """Tuples delivered to query streams since the engine was created.

        Exact across deletions: deliveries to since-deleted queries are
        carried in a running total after their buffers are dropped.
        """
        return (
            sum(buffer.total_tuples for buffer in self._buffers.values())
            + self._delivered_dropped
        )

    def describe(self) -> str:
        """Human-readable dump of the engine's planner state."""
        return self._planner.describe()
