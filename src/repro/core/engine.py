"""The CrAQR engine: the facade tying every component together (Fig. 1).

A :class:`CraqrEngine` owns

* the logical grid over the deployment region,
* the request/response handler talking to a :class:`~repro.sensing.SensingWorld`,
* the query planner (per-cell PMAT topologies + per-query merge stage),
* the stream fabricator (map / process / merge per batch),
* the budget tuner (``N_v`` feedback control of acquisition budgets), and
* per-query result buffers.

A typical session::

    engine = CraqrEngine(config, world)
    handle = engine.register_query(AcquisitionalQuery("rain", region, rate=10.0))
    for _ in range(30):
        engine.run_batch()
    print(handle.achieved_rate())

Each :meth:`run_batch` call acquires one batch window of crowdsensed tuples
from the world, fabricates every registered query's stream and adjusts
budgets from the rate-violation feedback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import EngineConfig
from ..errors import PlanningError, QueryError
from ..geometry import Grid
from ..sensing import HandlerReport, IncentiveScheme, RequestResponseHandler, SensingWorld
from ..storage import DiscardedStore, QueryResultBuffer, RateEstimate
from ..streams import SensorTuple, TupleBatch
from .budget import BudgetDecision, BudgetTuner
from .fabricator import BatchResult, StreamFabricator
from .planner import PlannerStats, QueryPlanner
from .query import AcquisitionalQuery

CellKey = Tuple[int, int]


@dataclass
class EngineReport:
    """Outcome of one :meth:`CraqrEngine.run_batch` call."""

    batch_index: int
    handler: HandlerReport
    fabrication: BatchResult
    budget_decisions: List[BudgetDecision] = field(default_factory=list)

    @property
    def tuples_acquired(self) -> int:
        """Raw tuples the handler collected this batch."""
        return self.handler.responses_received

    @property
    def tuples_delivered(self) -> int:
        """Tuples delivered to query result streams this batch."""
        return self.fabrication.tuples_delivered


class _ReportsView(Sequence):
    """A live, read-only view over the engine's report list.

    Returned by :attr:`CraqrEngine.reports` so every property access costs
    O(1) instead of copying a list that grows with the number of batches.
    """

    __slots__ = ("_items",)

    def __init__(self, items: List[EngineReport]) -> None:
        self._items = items

    def __getitem__(self, index):
        return self._items[index]

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_ReportsView({len(self._items)} reports)"


class QueryHandle:
    """The user-facing handle to one registered query's results."""

    def __init__(
        self,
        query: AcquisitionalQuery,
        buffer: QueryResultBuffer,
        engine: "CraqrEngine",
    ) -> None:
        self._query = query
        self._buffer = buffer
        self._engine = engine

    @property
    def query(self) -> AcquisitionalQuery:
        """The underlying acquisitional query."""
        return self._query

    @property
    def query_id(self) -> int:
        """The query's id."""
        return self._query.query_id

    @property
    def buffer(self) -> QueryResultBuffer:
        """The query's result buffer."""
        return self._buffer

    def results(self) -> List[SensorTuple]:
        """Tuples of the fabricated crowdsensed data stream so far."""
        return self._buffer.items()

    def achieved_rate(self, last_batches: Optional[int] = None) -> RateEstimate:
        """Achieved spatio-temporal rate (over all or the last N batches).

        ``last_batches`` must be positive when given; ``None`` covers the
        query's whole history.
        """
        return self._buffer.rate_over_batches(
            self._engine.config.batch_duration, last=last_batches
        )

    def is_active(self) -> bool:
        """Whether the query is still registered with the engine."""
        return self._engine.has_query(self._query.query_id)

    def delete(self) -> None:
        """Deregister the query from the engine."""
        self._engine.delete_query(self._query.query_id)


class CraqrEngine:
    """The complete CrAQR query processor."""

    def __init__(
        self,
        config: EngineConfig,
        world: SensingWorld,
        *,
        incentive: Optional[IncentiveScheme] = None,
    ) -> None:
        self._config = config
        self._world = world
        self._rng = np.random.default_rng(config.seed)
        self._grid = Grid(world.region, config.grid_side)
        self._handler = RequestResponseHandler(
            world,
            self._grid,
            default_budget=config.budget.initial,
            incentive=incentive,
        )
        self._discarded = DiscardedStore() if config.store_discarded else None
        self._planner = QueryPlanner(
            self._grid,
            batch_duration=config.batch_duration,
            online_estimation=config.online_estimation,
            discard_recorder=(self._discarded.record if self._discarded is not None else None),
            rng=np.random.default_rng(self._rng.integers(0, 2 ** 63 - 1)),
        )
        self._fabricator = StreamFabricator(self._planner, self._grid)
        self._tuner = BudgetTuner(self._handler, config.budget)
        self._buffers: Dict[int, QueryResultBuffer] = {}
        self._handles: Dict[int, QueryHandle] = {}
        self._reports: List[EngineReport] = []
        self._reports_view = _ReportsView(self._reports)
        self._batch_index = 0

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def config(self) -> EngineConfig:
        """The engine configuration."""
        return self._config

    @property
    def world(self) -> SensingWorld:
        """The sensing world the engine acquires from."""
        return self._world

    @property
    def fast_sim(self) -> bool:
        """Whether the world runs in shared-stream fast-sim mode.

        Set via :attr:`repro.sensing.WorldConfig.vectorized_rng`; with it on
        (and ``config.columnar``) both the simulation and the query pipeline
        are vectorised end-to-end, at the cost of per-sensor-stream
        reproducibility.
        """
        return self._world.vectorized

    @property
    def grid(self) -> Grid:
        """The logical grid over the deployment region."""
        return self._grid

    @property
    def handler(self) -> RequestResponseHandler:
        """The request/response handler."""
        return self._handler

    @property
    def planner(self) -> QueryPlanner:
        """The query planner."""
        return self._planner

    @property
    def fabricator(self) -> StreamFabricator:
        """The crowdsensed stream fabricator."""
        return self._fabricator

    @property
    def budget_tuner(self) -> BudgetTuner:
        """The budget tuner."""
        return self._tuner

    @property
    def discarded_store(self) -> Optional[DiscardedStore]:
        """The store of discarded tuples, when enabled."""
        return self._discarded

    @property
    def reports(self) -> Sequence[EngineReport]:
        """Reports of every batch run so far (a live, read-only view)."""
        return self._reports_view

    @property
    def batches_run(self) -> int:
        """Number of batches executed."""
        return self._batch_index

    def planner_stats(self) -> PlannerStats:
        """Snapshot of the planner's state (operator counts, materialised cells)."""
        return self._planner.stats()

    # ------------------------------------------------------------------
    # Query lifecycle
    # ------------------------------------------------------------------
    def has_query(self, query_id: int) -> bool:
        """Whether the query is currently registered."""
        return query_id in self._handles

    def query_handles(self) -> List[QueryHandle]:
        """Handles of every registered query."""
        return list(self._handles.values())

    def register_query(self, query: AcquisitionalQuery) -> QueryHandle:
        """Register an acquisitional query and return a handle to its results."""
        if query.query_id in self._handles:
            raise QueryError(f"query {query.label} is already registered")
        buffer = QueryResultBuffer(
            query.query_id,
            requested_rate=query.rate,
            region_area=query.region.area,
        )
        self._buffers[query.query_id] = buffer

        def deliver(query_id: int, item: SensorTuple) -> None:
            target = self._buffers.get(query_id)
            if target is None:
                return
            target.append(item)
            self._fabricator.register_delivery(query_id)

        def deliver_batch(query_id: int, batch: TupleBatch) -> None:
            target = self._buffers.get(query_id)
            if target is None:
                return
            target.extend_batch(batch)
            self._fabricator.register_delivery_batch(query_id, len(batch))

        touched = self._planner.insert_query(
            query, on_result=deliver, on_result_batch=deliver_batch
        )
        # Seed the handler's budget for every (attribute, cell) pair the
        # query activates so the first batch already respects the config.
        for key in touched:
            self._tuner.ensure_initial_budget(query.attribute, key)
        handle = QueryHandle(query, buffer, self)
        self._handles[query.query_id] = handle
        return handle

    def delete_query(self, query_id: int) -> None:
        """Deregister a query and tear down its topology pieces."""
        if query_id not in self._handles:
            raise PlanningError(f"query id {query_id} is not registered")
        self._planner.delete_query(query_id)
        del self._handles[query_id]
        # The buffer is kept so already-fabricated results stay readable.

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------
    def run_batch(self) -> EngineReport:
        """Acquire and fabricate one batch window.

        With ``config.columnar`` (the default) acquisition and fabrication
        move whole :class:`TupleBatch` columns; otherwise every tuple is an
        individual object.  Both paths are seeded identically and deliver
        the same tuples.  When the world additionally runs in fast-sim mode
        (:attr:`~repro.sensing.WorldConfig.vectorized_rng`), sensor movement
        and acquisition sampling vectorise across the whole crowd — the
        handler then serves each attribute with one fused
        :meth:`~repro.sensing.RequestResponseHandler.acquire_attribute_batch`
        round instead of one round per ``(attribute, cell)`` pair — faster
        still, but statistically rather than bit-for-bit reproducible.
        """
        duration = self._config.batch_duration
        attribute_cells = self._planner.attribute_cells()
        if self._config.columnar:
            batches, handler_report = self._handler.acquire_batches(
                attribute_cells, duration=duration
            )
            self._world.advance(duration)
            fabrication = self._fabricator.process_batch_columnar(batches)
        else:
            tuples_by_cell, handler_report = self._handler.acquire(
                attribute_cells, duration=duration
            )
            # Move the world forward to the end of the batch window.
            self._world.advance(duration)
            fabrication = self._fabricator.process_batch(tuples_by_cell)
        decisions = self._tuner.tune(fabrication.violations)
        for buffer in self._buffers.values():
            buffer.end_batch()
        report = EngineReport(
            batch_index=self._batch_index,
            handler=handler_report,
            fabrication=fabrication,
            budget_decisions=decisions,
        )
        self._reports.append(report)
        self._batch_index += 1
        return report

    def run(self, batches: int) -> List[EngineReport]:
        """Run several consecutive batches."""
        if batches <= 0:
            raise QueryError("the number of batches must be positive")
        return [self.run_batch() for _ in range(batches)]

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def total_requests_sent(self) -> int:
        """Acquisition requests sent since the engine was created."""
        return self._handler.total_requests

    def total_tuples_acquired(self) -> int:
        """Raw tuples collected since the engine was created."""
        return self._handler.total_responses

    def total_tuples_delivered(self) -> int:
        """Tuples delivered to query streams since the engine was created."""
        return sum(buffer.total_tuples for buffer in self._buffers.values())

    def describe(self) -> str:
        """Human-readable dump of the engine's planner state."""
        return self._planner.describe()
