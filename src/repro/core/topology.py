"""Per-grid-cell execution topologies built from PMAT operators.

Section V of the paper stores, under each grid-cell key of a hashmap, "the
execution topology that is responsible for processing all the tuples that
are crowdsensed in R(q,r)".  :class:`CellTopology` is that value.  For every
attribute with at least one query overlapping the cell it holds an
:class:`AttributeChain`:

    entry --(attribute filter)--> F --> T(rate_1) --> T(rate_2) --> ...

where the Flatten operator is always first ("the first operator is always
the F-operator"), the Thin operators are sorted by descending output rate
("the highest rate T-operator is closest to the F-operator"), the Flatten
output rate is strictly greater than the first Thin's output rate, and a
query taps the stream whose rate equals its requested rate — through a
Partition operator when the query only partially overlaps the cell.

The chain is (re)built canonically whenever the set of queries for the cell
changes; the canonical form is exactly the fixed point of the paper's
incremental insertion/deletion rules (sorted T-operators, no two consecutive
T-operators without a branching point between them), so the structural
invariants hold by construction and are asserted in
:meth:`AttributeChain.check_invariants`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import PlanningError
from ..geometry import GridCell, Region
from ..rng import ensure_rng
from ..streams import (
    CallbackSink,
    FilterOperator,
    SensorTuple,
    StreamTopology,
    TupleBatch,
)
from .pmat import FlattenOperator, PartitionOperator, ThinOperator
from .query import AcquisitionalQuery

#: Callback the engine supplies for delivering a tuple to a query's stream.
DeliverFn = Callable[[int, SensorTuple], None]

#: Columnar counterpart: delivers a whole batch of one query's tuples.
DeliverBatchFn = Callable[[int, TupleBatch], None]

#: Factor by which the Flatten output rate exceeds the highest query rate,
#: satisfying the paper's "output rate of the F-operator is ... greater than
#: the output rate of the first T-operator".
DEFAULT_HEADROOM = 1.25


class AttributeRoute:
    """Routing predicate keeping only one attribute's tuples.

    A plain class (not a lambda) so a built topology — and with it the
    whole engine — can be pickled into a checkpoint.
    """

    __slots__ = ("attribute",)

    def __init__(self, attribute: str) -> None:
        self.attribute = attribute

    def __call__(self, item: SensorTuple) -> bool:
        return item.attribute == self.attribute


class QueryDelivery:
    """Delivers one query's tuples to a ``(query_id, item)`` handler.

    Binds the query id to a two-argument delivery callable, exactly like
    the ``lambda item, qid=...: deliver(qid, item)`` closures it replaces —
    but picklable, so sinks survive engine checkpointing.
    """

    __slots__ = ("deliver", "query_id")

    def __init__(self, deliver: DeliverFn, query_id: int) -> None:
        self.deliver = deliver
        self.query_id = query_id

    def __call__(self, item: SensorTuple) -> None:
        self.deliver(self.query_id, item)


class DiscardRecording:
    """Forwards one operator's discarded tuples to a discard recorder."""

    __slots__ = ("recorder", "operator_name")

    def __init__(self, recorder: Callable[[str, SensorTuple], None], operator_name: str) -> None:
        self.recorder = recorder
        self.operator_name = operator_name

    def __call__(self, item: SensorTuple) -> None:
        self.recorder(self.operator_name, item)


@dataclass
class QueryTap:
    """Where one query taps the chain.

    Attributes
    ----------
    query_id:
        The tapping query.
    overlap:
        The part of the query region inside this cell.
    partition:
        The Partition operator carving the overlap out of the cell, or
        ``None`` when the query covers the whole cell ("P-operators are
        required only ... since Q1 and Q2 perfectly overlap the grid cells").
    sink:
        The callback sink forwarding tuples to the query's merge stage.
    """

    query_id: int
    overlap: Region
    partition: Optional[PartitionOperator]
    sink: CallbackSink


@dataclass
class RateLevel:
    """One Thin stage of the chain and the queries tapping it."""

    rate: float
    thin: ThinOperator
    taps: List[QueryTap] = field(default_factory=list)


@dataclass
class _QueryEntry:
    query: AcquisitionalQuery
    overlap: Region
    full_overlap: bool


class AttributeChain:
    """The F -> T... chain for one attribute within one cell topology."""

    def __init__(
        self,
        attribute: str,
        cell: GridCell,
        *,
        headroom: float = DEFAULT_HEADROOM,
        batch_duration: float = 1.0,
        online_estimation: bool = False,
        discard_recorder: Optional[Callable[[str, SensorTuple], None]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if headroom <= 1.0:
            raise PlanningError(
                "the Flatten headroom must exceed 1 so the F output rate is "
                "strictly greater than the first T output rate"
            )
        self._attribute = attribute
        self._cell = cell
        self._headroom = headroom
        self._batch_duration = batch_duration
        self._online = online_estimation
        self._discard_recorder = discard_recorder
        self._rng = ensure_rng(rng)
        self._entries: Dict[int, _QueryEntry] = {}
        self._flatten: Optional[FlattenOperator] = None
        self._levels: List[RateLevel] = []
        self._router: Optional[FilterOperator] = None

    # ------------------------------------------------------------------
    @property
    def attribute(self) -> str:
        """The attribute this chain serves."""
        return self._attribute

    @property
    def cell(self) -> GridCell:
        """The grid cell this chain serves."""
        return self._cell

    @property
    def flatten(self) -> FlattenOperator:
        """The chain's Flatten operator (present after the first build)."""
        if self._flatten is None:
            raise PlanningError("the chain has not been built yet")
        return self._flatten

    @property
    def levels(self) -> List[RateLevel]:
        """The Thin levels, sorted by descending rate."""
        return list(self._levels)

    @property
    def router(self) -> Optional[FilterOperator]:
        """The attribute filter at the chain's head (``None`` before build)."""
        return self._router

    @property
    def query_ids(self) -> List[int]:
        """Ids of the queries currently routed through this chain."""
        return list(self._entries.keys())

    @property
    def is_empty(self) -> bool:
        """Whether no query uses this chain any more."""
        return not self._entries

    @property
    def max_rate(self) -> float:
        """Highest requested rate among the chain's queries."""
        if not self._entries:
            raise PlanningError("an empty chain has no maximum rate")
        return max(entry.query.rate for entry in self._entries.values())

    @property
    def flatten_rate(self) -> float:
        """The Flatten output rate (headroom above the highest query rate)."""
        return self._headroom * self.max_rate

    def last_violation_percent(self) -> float:
        """``N_v`` reported by the Flatten operator for the last batch."""
        if self._flatten is None:
            return 0.0
        return self._flatten.last_violation_percent

    # ------------------------------------------------------------------
    # Query membership
    # ------------------------------------------------------------------
    def add_query(self, query: AcquisitionalQuery, overlap: Region) -> None:
        """Register a query whose region overlaps this cell."""
        if query.attribute != self._attribute:
            raise PlanningError(
                f"query {query.label} acquires '{query.attribute}', not "
                f"'{self._attribute}'"
            )
        if query.query_id in self._entries:
            raise PlanningError(f"query {query.label} is already in this chain")
        full = overlap.covers(self._cell.region) and self._cell.region.covers(overlap)
        self._entries[query.query_id] = _QueryEntry(query, overlap, full)

    def remove_query(self, query_id: int) -> None:
        """Deregister a query."""
        if query_id not in self._entries:
            raise PlanningError(f"query id {query_id} is not in this chain")
        del self._entries[query_id]

    def has_query(self, query_id: int) -> bool:
        """Whether the query is routed through this chain."""
        return query_id in self._entries

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self, topology: StreamTopology, deliver: DeliverFn) -> None:
        """(Re)build the chain's operators inside ``topology``.

        The chain is wired from the topology's entry stream: an attribute
        filter routes only this attribute's tuples into the Flatten operator,
        then Thin operators follow in descending-rate order, and each query's
        tap (optionally behind a Partition) subscribes to the stream whose
        rate matches the query's requested rate.
        """
        if not self._entries:
            raise PlanningError("cannot build a chain with no queries")
        attribute = self._attribute
        cell_key = self._cell.key

        self._router = FilterOperator(
            AttributeRoute(attribute),
            name=f"route:{attribute}@{cell_key}",
        )
        topology.add_operator(self._router, upstream=topology.entry)

        self._flatten = FlattenOperator(
            self.flatten_rate,
            region=self._cell.region,
            attribute=attribute,
            batch_duration=self._batch_duration,
            online=self._online,
            emit_discarded=self._discard_recorder is not None,
            name=f"F:{attribute}@{cell_key}",
            rng=np.random.default_rng(self._rng.integers(0, 2 ** 63 - 1)),
        )
        topology.add_operator(self._flatten, upstream=self._router.output)
        if self._discard_recorder is not None:
            # "If necessary, the discarded tuples can be stored separately."
            self._flatten.discarded_output.subscribe(
                DiscardRecording(self._discard_recorder, self._flatten.name)
            )

        # Distinct requested rates, descending; equal-rate queries share a level.
        distinct_rates = sorted(
            {entry.query.rate for entry in self._entries.values()}, reverse=True
        )
        self._levels = []
        upstream_stream = self._flatten.output
        upstream_rate = self.flatten_rate
        for level_index, rate in enumerate(distinct_rates):
            thin = ThinOperator(
                upstream_rate,
                rate,
                attribute=attribute,
                region=self._cell.region,
                name=f"T:{attribute}@{cell_key}#{level_index}",
                rng=np.random.default_rng(self._rng.integers(0, 2 ** 63 - 1)),
            )
            topology.add_operator(thin, upstream=upstream_stream)
            level = RateLevel(rate=rate, thin=thin)
            for entry in self._entries.values():
                if entry.query.rate != rate:
                    continue
                level.taps.append(
                    self._build_tap(topology, thin, entry, deliver, level_index)
                )
            self._levels.append(level)
            upstream_stream = thin.output
            upstream_rate = rate

    def _build_tap(
        self,
        topology: StreamTopology,
        thin: ThinOperator,
        entry: _QueryEntry,
        deliver: DeliverFn,
        level_index: int,
    ) -> QueryTap:
        query = entry.query
        sink = CallbackSink(
            QueryDelivery(deliver, query.query_id),
            name=f"deliver:{query.label}@{self._cell.key}",
        )
        partition: Optional[PartitionOperator] = None
        if entry.full_overlap:
            sink.attach(thin.output)
        else:
            partition = PartitionOperator(
                [entry.overlap],
                attribute=self._attribute,
                keep_rest=False,
                name=f"P:{query.label}@{self._cell.key}#{level_index}",
                rng=np.random.default_rng(self._rng.integers(0, 2 ** 63 - 1)),
            )
            topology.add_operator(partition, upstream=thin.output)
            sink.attach(partition.output_for(0))
        return QueryTap(
            query_id=query.query_id,
            overlap=entry.overlap,
            partition=partition,
            sink=sink,
        )

    # ------------------------------------------------------------------
    # Columnar execution
    # ------------------------------------------------------------------
    def process_batch(
        self,
        batch: Optional[TupleBatch],
        deliver_batch: DeliverBatchFn,
        *,
        router_tuples_in: Optional[int] = None,
    ) -> None:
        """Run one batch window through the chain columnar.

        The chain's own operators do the work (so their counters, reports
        and RNG streams stay exactly as on the object path), but tuples
        move as :class:`TupleBatch` columns: Flatten and the Thin cascade
        compose numpy keep-masks, query taps slice the level batch with one
        Partition containment mask, and each tap's survivors are delivered
        in a single ``deliver_batch`` call instead of one callback per
        tuple.  ``None`` (or an empty batch) still runs Flatten so its
        empty-batch shortfall report matches the object path's flush.

        ``router_tuples_in`` is the total number of tuples the cell saw
        this window (all attributes): on the object path every router is
        subscribed to the shared entry stream and counts them all, so the
        cell topology passes the cross-attribute total to keep the filter
        counters identical.  Defaults to the chain's own batch size.
        """
        if self._flatten is None:
            raise PlanningError("the chain has not been built yet")
        if batch is None:
            batch = TupleBatch.empty(self._attribute)
        if self._router is not None:
            n = len(batch)
            self._router.account_batch(
                n if router_tuples_in is None else router_tuples_in, n
            )
        out = self._flatten.process_batch(batch)
        for level in self._levels:
            out = level.thin.process_batch(out)
            for tap in level.taps:
                if tap.partition is None:
                    tap_batch = out
                else:
                    tap_batch = tap.partition.process_batch(out)
                if len(tap_batch):
                    deliver_batch(tap.query_id, tap_batch)

    def lower_ir(self) -> List[dict]:
        """Per-operator IR descriptors in execution order.

        The plan compiler lowers the chain from its live structure (levels
        and taps); this flat listing is the operators' own description of
        their compiled kernels, used by EXPLAIN and pinned by the IR golden
        tests.
        """
        if self._flatten is None:
            raise PlanningError("the chain has not been built yet")
        descriptors = [self._flatten.lower_ir()]
        for level in self._levels:
            descriptors.append(level.thin.lower_ir())
            for tap in level.taps:
                if tap.partition is not None:
                    descriptors.append(tap.partition.lower_ir())
        return descriptors

    # ------------------------------------------------------------------
    # Invariants (the paper's structural rules, checked by tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Assert the paper's structural rules hold for the built chain.

        Raises
        ------
        PlanningError
            If any invariant is violated.
        """
        if self._flatten is None:
            raise PlanningError("the chain has not been built yet")
        rates = [level.rate for level in self._levels]
        if any(earlier <= later for earlier, later in zip(rates, rates[1:])):
            raise PlanningError("Thin operators must be sorted by strictly descending rate")
        if rates and self._flatten.target_rate <= rates[0]:
            raise PlanningError(
                "the Flatten output rate must exceed the first Thin output rate"
            )
        for level in self._levels:
            if not level.taps:
                raise PlanningError(
                    "two consecutive Thin operators without a branching point "
                    "must be merged into a single Thin operator"
                )
        for earlier, later in zip(self._levels, self._levels[1:]):
            if abs(later.thin.rate_in - earlier.rate) > 1e-9:
                raise PlanningError("consecutive Thin operators must chain their rates")

    def operator_count(self) -> int:
        """Number of PMAT operators in the chain (router excluded)."""
        count = 1  # the Flatten operator
        for level in self._levels:
            count += 1  # the Thin operator
            count += sum(1 for tap in level.taps if tap.partition is not None)
        return count


class CellTopology:
    """The execution topology stored under one grid-cell key.

    Owns one :class:`AttributeChain` per attribute with queries overlapping
    the cell, plus the underlying :class:`StreamTopology` the chains are
    wired into.  Whenever the query set changes the topology is rebuilt
    canonically (see :class:`AttributeChain`).
    """

    def __init__(
        self,
        cell: GridCell,
        *,
        batch_duration: float = 1.0,
        headroom: float = DEFAULT_HEADROOM,
        online_estimation: bool = False,
        discard_recorder: Optional[Callable[[str, SensorTuple], None]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._cell = cell
        self._batch_duration = batch_duration
        self._headroom = headroom
        self._online = online_estimation
        self._discard_recorder = discard_recorder
        self._rng = ensure_rng(rng)
        self._chains: Dict[str, AttributeChain] = {}
        self._topology = StreamTopology(name=f"cell{cell.key}")
        self._rebuilds = 0

    # ------------------------------------------------------------------
    @property
    def cell(self) -> GridCell:
        """The grid cell this topology serves."""
        return self._cell

    @property
    def key(self) -> Tuple[int, int]:
        """The hashmap key ``(q, r)``."""
        return self._cell.key

    @property
    def attributes(self) -> List[str]:
        """Attributes with an active chain in this cell."""
        return list(self._chains.keys())

    @property
    def rebuilds(self) -> int:
        """How many times the topology has been rebuilt."""
        return self._rebuilds

    @property
    def is_empty(self) -> bool:
        """Whether no query is routed through this cell any more."""
        return not self._chains

    def chain(self, attribute: str) -> AttributeChain:
        """The chain serving ``attribute``."""
        try:
            return self._chains[attribute]
        except KeyError:
            raise PlanningError(
                f"no chain for attribute '{attribute}' in cell {self._cell.key}"
            ) from None

    def query_ids(self) -> List[int]:
        """Ids of all queries routed through this cell."""
        ids: List[int] = []
        for chain in self._chains.values():
            ids.extend(chain.query_ids)
        return ids

    # ------------------------------------------------------------------
    # Query membership (rebuild must be called afterwards)
    # ------------------------------------------------------------------
    def add_query(self, query: AcquisitionalQuery, overlap: Region) -> None:
        """Register a query overlapping this cell."""
        chain = self._chains.get(query.attribute)
        if chain is None:
            chain = AttributeChain(
                query.attribute,
                self._cell,
                headroom=self._headroom,
                batch_duration=self._batch_duration,
                online_estimation=self._online,
                discard_recorder=self._discard_recorder,
                rng=np.random.default_rng(self._rng.integers(0, 2 ** 63 - 1)),
            )
            self._chains[query.attribute] = chain
        chain.add_query(query, overlap)

    def remove_query(self, query: AcquisitionalQuery) -> None:
        """Deregister a query; drops the attribute chain when it empties."""
        chain = self.chain(query.attribute)
        chain.remove_query(query.query_id)
        if chain.is_empty:
            del self._chains[query.attribute]

    def rebuild(self, deliver: DeliverFn) -> None:
        """Rebuild the underlying stream topology from the current query set."""
        self._topology = StreamTopology(name=f"cell{self._cell.key}")
        for chain in self._chains.values():
            chain.build(self._topology, deliver)
        self._rebuilds += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def inject(self, item: SensorTuple) -> None:
        """Push one raw tuple into the cell's topology."""
        self._topology.inject(item)

    def inject_many(self, items) -> int:
        """Push many tuples; returns how many were pushed."""
        return self._topology.inject_many(items)

    def flush(self) -> None:
        """End the batch: every Flatten operator processes its buffer."""
        self._topology.flush()

    def process_batches(
        self,
        batches_by_attribute: Dict[str, TupleBatch],
        deliver_batch: DeliverBatchFn,
        *,
        programs: Optional[Dict[str, "object"]] = None,
    ) -> int:
        """Columnar execution of one batch window for this cell.

        Every chain runs exactly once — with its attribute's batch when one
        arrived, or with an empty batch otherwise (matching the object
        path, where :meth:`flush` triggers every Flatten even in silent
        cells).  Returns the number of tuples handed to the cell, counting
        batches of attributes without a chain too (the object path injects
        those into the entry stream as well; the router then drops them).

        ``programs`` optionally maps attributes to compiled
        :class:`~repro.plan.executor.ChainProgram`\\ s; a chain with a
        program runs its fused kernels instead of the per-operator
        interpretation.  The iteration order, empty-batch semantics and
        router accounting live here either way, so both execution modes
        share one dispatch point.
        """
        routed = sum(len(batch) for batch in batches_by_attribute.values())
        for attribute, chain in self._chains.items():
            program = programs.get(attribute) if programs else None
            if program is not None:
                program.run(
                    batches_by_attribute.get(attribute),
                    deliver_batch,
                    router_tuples_in=routed,
                )
            else:
                chain.process_batch(
                    batches_by_attribute.get(attribute),
                    deliver_batch,
                    router_tuples_in=routed,
                )
        return routed

    def violations(self) -> Dict[str, float]:
        """Last-batch ``N_v`` per attribute."""
        return {
            attribute: chain.last_violation_percent()
            for attribute, chain in self._chains.items()
        }

    def operator_count(self) -> int:
        """Total PMAT operators across all chains."""
        return sum(chain.operator_count() for chain in self._chains.values())

    def check_invariants(self) -> None:
        """Check the structural invariants of every chain."""
        for chain in self._chains.values():
            chain.check_invariants()

    def describe(self) -> str:
        """Human-readable dump of the cell's topology."""
        return self._topology.describe()

    @property
    def stream_topology(self) -> StreamTopology:
        """The underlying stream topology (for introspection and tests)."""
        return self._topology
