"""Query optimisation (Section VI extension).

The paper lists query optimisation as future work: "We should define the
cost of processing a single query, and prepare an execution topology that
minimizes this cost.  Response time, power consumption, communication cost
due to operator placement are some of the aspects that we plan to consider."

This module provides a concrete, working version of that plan:

* :class:`TopologyCostModel` — prices an execution plan by its three cost
  drivers: communication (acquisition requests sent to mobile sensors),
  server-side processing (tuples crossing PMAT operators), and response
  latency (batches needed before the query's rate stabilises).
* :func:`estimate_query_cost` — the per-query cost of the plan the planner
  would build, computed from the query's geometry and the handler budgets,
  without running the system.
* :class:`GridGranularityAdvisor` — chooses the grid parameter ``h``
  (DESIGN.md §6 ablation): finer grids track query boundaries more
  accurately (less over-acquisition for partially overlapping queries) but
  materialise more per-cell chains and send more per-cell requests.
  The advisor evaluates candidate grid sides against a query workload and
  recommends the cheapest one that keeps the expected over-acquisition
  below a tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import PlanningError
from ..geometry import Grid, Rectangle
from .query import AcquisitionalQuery
from .topology import DEFAULT_HEADROOM


@dataclass(frozen=True)
class TopologyCostModel:
    """Unit prices for the cost drivers of an execution plan.

    Attributes
    ----------
    cost_per_request:
        Communication/energy price of one acquisition request sent to a
        mobile sensor (the dominant cost for human-sensed attributes).
    cost_per_operator_tuple:
        Server-side price of pushing one tuple through one PMAT operator.
    cost_per_cell_chain:
        Fixed price of materialising one per-cell attribute chain
        (memory + bookkeeping).
    """

    cost_per_request: float = 1.0
    cost_per_operator_tuple: float = 0.001
    cost_per_cell_chain: float = 0.5

    def __post_init__(self) -> None:
        if min(self.cost_per_request, self.cost_per_operator_tuple, self.cost_per_cell_chain) < 0:
            raise PlanningError("cost-model prices cannot be negative")


@dataclass(frozen=True)
class QueryCostEstimate:
    """Predicted per-batch cost of serving one query.

    Attributes
    ----------
    query_id:
        The query the estimate belongs to.
    cells:
        Number of grid cells the query overlaps.
    requests_per_batch:
        Acquisition requests needed per batch to feed the query's cells.
    over_acquisition:
        Expected fraction of acquired tuples that fall outside the query
        region (they are acquired because budgets are per cell, then dropped
        by the Partition operator).  0 for cell-aligned queries.
    operator_tuples_per_batch:
        Tuples crossing PMAT operators per batch for this query.
    total:
        Monetised per-batch cost under the cost model.
    """

    query_id: int
    cells: int
    requests_per_batch: float
    over_acquisition: float
    operator_tuples_per_batch: float
    total: float


def _expected_requests_for_rate(
    rate: float,
    cell_area: float,
    batch_duration: float,
    response_probability: float,
    headroom: float,
) -> float:
    """Requests needed per cell so expected responses cover the Flatten target."""
    needed_tuples = headroom * rate * cell_area * batch_duration
    return needed_tuples / max(response_probability, 1e-9)


def estimate_query_cost(
    query: AcquisitionalQuery,
    grid: Grid,
    *,
    cost_model: Optional[TopologyCostModel] = None,
    response_probability: float = 0.6,
    batch_duration: float = 1.0,
    headroom: float = DEFAULT_HEADROOM,
    chain_depth: int = 3,
) -> QueryCostEstimate:
    """Predict the per-batch cost of serving ``query`` on ``grid``.

    The estimate assumes the budget tuner has converged to the minimal
    sufficient budget for the query's rate (the steady state of Section V's
    feedback loop), so it reflects the long-run cost, not the warm-up.
    """
    cost_model = cost_model or TopologyCostModel()
    if not 0 < response_probability <= 1:
        raise PlanningError("response_probability must be in (0, 1]")
    if batch_duration <= 0:
        raise PlanningError("batch_duration must be positive")
    if chain_depth <= 0:
        raise PlanningError("chain_depth must be positive")

    overlapping = grid.overlapping_cells(query.region)
    if not overlapping:
        raise PlanningError("the query does not overlap any grid cell")

    requests = 0.0
    acquired_tuples = 0.0
    useful_tuples = 0.0
    for cell in overlapping:
        per_cell_requests = _expected_requests_for_rate(
            query.rate, cell.area, batch_duration, response_probability, headroom
        )
        requests += per_cell_requests
        cell_tuples = per_cell_requests * response_probability
        acquired_tuples += cell_tuples
        useful_tuples += cell_tuples * grid.overlap_fraction(query.region, cell)

    over_acquisition = 0.0
    if acquired_tuples > 0:
        over_acquisition = max(0.0, 1.0 - useful_tuples / acquired_tuples)
    operator_tuples = acquired_tuples * chain_depth
    total = (
        requests * cost_model.cost_per_request
        + operator_tuples * cost_model.cost_per_operator_tuple
        + len(overlapping) * cost_model.cost_per_cell_chain
    )
    return QueryCostEstimate(
        query_id=query.query_id,
        cells=len(overlapping),
        requests_per_batch=requests,
        over_acquisition=over_acquisition,
        operator_tuples_per_batch=operator_tuples,
        total=total,
    )


@dataclass
class GranularityRecommendation:
    """Outcome of a grid-granularity search."""

    side: int
    grid_cells: int
    total_cost: float
    mean_over_acquisition: float
    per_side_costs: Dict[int, float] = field(default_factory=dict)
    per_side_over_acquisition: Dict[int, float] = field(default_factory=dict)


class GridGranularityAdvisor:
    """Chooses the grid side (``sqrt(h)``) for a query workload.

    Parameters
    ----------
    region:
        The deployment region ``R``.
    cost_model:
        Prices used to compare candidate grids.
    response_probability, batch_duration, headroom:
        Steady-state assumptions forwarded to :func:`estimate_query_cost`.
    """

    def __init__(
        self,
        region: Rectangle,
        *,
        cost_model: Optional[TopologyCostModel] = None,
        response_probability: float = 0.6,
        batch_duration: float = 1.0,
        headroom: float = DEFAULT_HEADROOM,
    ) -> None:
        self._region = region
        self._cost_model = cost_model or TopologyCostModel()
        self._response_probability = response_probability
        self._batch_duration = batch_duration
        self._headroom = headroom

    def evaluate(
        self, queries: Sequence[AcquisitionalQuery], side: int
    ) -> Tuple[float, float]:
        """Total per-batch cost and mean over-acquisition for one grid side."""
        if side <= 0:
            raise PlanningError("the grid side must be positive")
        grid = Grid(self._region, side)
        total = 0.0
        over = []
        for query in queries:
            estimate = estimate_query_cost(
                query,
                grid,
                cost_model=self._cost_model,
                response_probability=self._response_probability,
                batch_duration=self._batch_duration,
                headroom=self._headroom,
            )
            total += estimate.total
            over.append(estimate.over_acquisition)
        mean_over = sum(over) / len(over) if over else 0.0
        return total, mean_over

    def recommend(
        self,
        queries: Sequence[AcquisitionalQuery],
        *,
        candidate_sides: Sequence[int] = (2, 3, 4, 6, 8),
        max_over_acquisition: float = 0.25,
    ) -> GranularityRecommendation:
        """Pick the cheapest candidate grid keeping over-acquisition acceptable.

        When no candidate meets the over-acquisition tolerance the finest
        candidate (which minimises over-acquisition) is returned.
        """
        if not queries:
            raise PlanningError("granularity advice needs at least one query")
        if not candidate_sides:
            raise PlanningError("at least one candidate grid side is required")
        per_side_costs: Dict[int, float] = {}
        per_side_over: Dict[int, float] = {}
        for side in candidate_sides:
            cost, over = self.evaluate(queries, side)
            per_side_costs[side] = cost
            per_side_over[side] = over
        acceptable = [
            side for side in candidate_sides if per_side_over[side] <= max_over_acquisition
        ]
        if acceptable:
            best = min(acceptable, key=lambda side: per_side_costs[side])
        else:
            best = min(candidate_sides, key=lambda side: per_side_over[side])
        return GranularityRecommendation(
            side=best,
            grid_cells=best * best,
            total_cost=per_side_costs[best],
            mean_over_acquisition=per_side_over[best],
            per_side_costs=per_side_costs,
            per_side_over_acquisition=per_side_over,
        )
