"""The crowdsensed stream fabricator (paper Section IV-B).

"This is the most important component responsible for performing the
operations required for answering acquisitional queries."  Given the raw
tuples the request/response handler collected for one batch window, the
fabricator runs the map / process / merge pipeline of Fig. 2:

* **map** — assign each tuple to the hashmap key (grid cell) it falls in;
  the handler already groups tuples by cell, and any stray tuples are
  re-mapped here via the grid.
* **process** — inject each cell's tuples into that cell's execution
  topology (PMAT operators) and flush, producing per-cell partial streams.
* **merge** — the per-query Union operators (owned by the planner) combine
  the partial streams into the final MCDS delivered to result buffers.

The fabricator also collects the rate violations every Flatten operator
reported for the batch, which the budget tuner consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import PlanningError
from ..geometry import Grid
from ..streams import SensorTuple, TupleBatch
from .planner import QueryPlanner

CellKey = Tuple[int, int]


@dataclass
class BatchResult:
    """Outcome of fabricating one batch.

    Attributes
    ----------
    tuples_in:
        Raw tuples that entered the fabricator.
    tuples_routed:
        Tuples delivered to a materialised cell topology.
    tuples_delivered:
        Tuples delivered to query result streams (across all queries).
    delivered_per_query:
        Breakdown of delivered tuples per query id.
    violations:
        Percent rate violation per (attribute, cell) pair for this batch.
    """

    tuples_in: int = 0
    tuples_routed: int = 0
    tuples_delivered: int = 0
    delivered_per_query: Dict[int, int] = field(default_factory=dict)
    violations: Dict[Tuple[str, CellKey], float] = field(default_factory=dict)

    @property
    def sharing_factor(self) -> float:
        """Delivered tuples per routed tuple — >1 means data re-use across queries."""
        if self.tuples_routed == 0:
            return 0.0
        return self.tuples_delivered / self.tuples_routed


class StreamFabricator:
    """Runs the map/process/merge pipeline over acquired batches."""

    def __init__(self, planner: QueryPlanner, grid: Grid) -> None:
        self._planner = planner
        self._grid = grid
        self._delivered_per_query: Dict[int, int] = {}
        #: per-batch scratch populated while a batch is being processed
        self._current_delivered: Dict[int, int] = {}
        self._batches = 0

    # ------------------------------------------------------------------
    @property
    def planner(self) -> QueryPlanner:
        """The planner whose topologies this fabricator executes."""
        return self._planner

    @property
    def batches_processed(self) -> int:
        """Number of batches fabricated so far."""
        return self._batches

    def delivered_total(self, query_id: int) -> int:
        """Total tuples delivered to one query since the fabricator was created."""
        return self._delivered_per_query.get(query_id, 0)

    # ------------------------------------------------------------------
    def register_delivery(self, query_id: int) -> None:
        """Account one delivered tuple for a query (called by the engine's sink)."""
        self._delivered_per_query[query_id] = self._delivered_per_query.get(query_id, 0) + 1
        self._current_delivered[query_id] = self._current_delivered.get(query_id, 0) + 1

    def register_delivery_batch(self, query_id: int, count: int) -> None:
        """Account a whole delivered batch for a query in one call."""
        self._delivered_per_query[query_id] = (
            self._delivered_per_query.get(query_id, 0) + count
        )
        self._current_delivered[query_id] = (
            self._current_delivered.get(query_id, 0) + count
        )

    def map_tuples(
        self, tuples_by_cell: Dict[CellKey, List[SensorTuple]]
    ) -> Dict[CellKey, List[SensorTuple]]:
        """The map phase: make sure every tuple is keyed by the cell it lies in.

        The handler already groups tuples by the cell it targeted, but a
        mobile sensor may have moved across a cell boundary between request
        and response; such tuples are re-assigned to the cell containing
        their reported coordinates.
        """
        mapped: Dict[CellKey, List[SensorTuple]] = {}
        for key, items in tuples_by_cell.items():
            for item in items:
                cell = self._grid.locate(item.x, item.y)
                mapped.setdefault(cell.key, []).append(item)
        for items in mapped.values():
            items.sort(key=lambda item: item.t)
        return mapped

    def map_batches(
        self, batch_per_attribute: Dict[str, TupleBatch]
    ) -> Dict[CellKey, Dict[str, TupleBatch]]:
        """The columnar map phase: bucket whole batches by grid cell.

        For each attribute the batch's coordinates go through one vectorised
        :meth:`Grid.cells_for_points` call; tuples are then grouped per cell
        with a single lexsort (cell code major, time minor), so every
        resulting per-cell slice is already time-ordered — no per-tuple
        ``locate`` calls and no comparison sort of object lists.  The input
        is one batch per attribute either way the handler produced it: the
        strict path concatenates its per-cell rounds, the fast-sim path
        hands over the fused attribute-level round directly.
        """
        side = self._grid.side
        mapped: Dict[CellKey, Dict[str, TupleBatch]] = {}
        for attribute, batch in batch_per_attribute.items():
            if batch.is_empty:
                continue
            q, r = self._grid.cells_for_points(batch.x, batch.y)
            codes = r * side + q
            order = np.lexsort((batch.t, codes))
            sorted_codes = codes[order]
            boundaries = np.nonzero(np.diff(sorted_codes))[0] + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [sorted_codes.shape[0]]))
            for start, end in zip(starts, ends):
                code = int(sorted_codes[start])
                key = (code % side, code // side)
                mapped.setdefault(key, {})[attribute] = batch.select(
                    order[start:end]
                )
        return mapped

    def map_batches_fused(
        self, batch_per_attribute: Dict[str, TupleBatch]
    ) -> Dict[CellKey, Dict[str, TupleBatch]]:
        """Fused map phase: one gather per column, contiguous per-cell slices.

        Byte-identical cell batches to :meth:`map_batches` (same lexsort,
        same per-cell rows: ``col[order][start:end] == col[order[start:end]]``)
        but each attribute's columns are reordered *once* and every cell
        takes zero-copy contiguous views of the sorted columns, instead of
        one fancy-index gather per (cell, column).  Used by the compiled
        plan path.
        """
        side = self._grid.side
        mapped: Dict[CellKey, Dict[str, TupleBatch]] = {}
        for attribute, batch in batch_per_attribute.items():
            if batch.is_empty:
                continue
            q, r = self._grid.cells_for_points(batch.x, batch.y)
            codes = r * side + q
            order = np.lexsort((batch.t, codes))
            sorted_codes = codes[order]
            boundaries = np.nonzero(np.diff(sorted_codes))[0] + 1
            starts = np.concatenate(([0], boundaries))
            ends = np.concatenate((boundaries, [sorted_codes.shape[0]]))
            sorted_batch = batch.select(order)
            t, x, y = sorted_batch.t, sorted_batch.x, sorted_batch.y
            value, sensor_id = sorted_batch.value, sorted_batch.sensor_id
            tuple_id, extra = sorted_batch.tuple_id, sorted_batch.extra
            for start, end in zip(starts, ends):
                code = int(sorted_codes[start])
                key = (code % side, code // side)
                mapped.setdefault(key, {})[attribute] = TupleBatch(
                    sorted_batch.attribute,
                    t[start:end],
                    x[start:end],
                    y[start:end],
                    value[start:end],
                    sensor_id[start:end],
                    tuple_id[start:end],
                    meta=sorted_batch.meta,
                    extra={k: col[start:end] for k, col in extra.items()},
                )
        return mapped

    def process_batch_columnar(
        self,
        batch_per_attribute: Dict[str, TupleBatch],
        *,
        programs: Optional[Dict[CellKey, Dict[str, object]]] = None,
    ) -> BatchResult:
        """Columnar :meth:`process_batch`: map, process and merge whole batches.

        Identical accounting to the object path — tuples in, tuples routed
        to materialised cells, per-query deliveries and per-(attribute,
        cell) violations — but every stage moves :class:`TupleBatch`
        columns instead of per-tuple callbacks.  When the engine hands over
        compiled chain ``programs`` (see :mod:`repro.plan`) the map phase
        runs fused and the cells execute their fused kernels.
        """
        self._current_delivered = {}
        result = BatchResult()
        result.tuples_in = sum(len(b) for b in batch_per_attribute.values())
        if programs is None:
            mapped = self.map_batches(batch_per_attribute)
        else:
            mapped = self.map_batches_fused(batch_per_attribute)
        result.tuples_routed = self._planner.process_columnar(
            mapped, programs=programs
        )
        result.violations = self._planner.violations()
        result.delivered_per_query = dict(self._current_delivered)
        result.tuples_delivered = sum(self._current_delivered.values())
        self._batches += 1
        return result

    def process_batch(
        self, tuples_by_cell: Dict[CellKey, List[SensorTuple]]
    ) -> BatchResult:
        """Fabricate one batch: map, process and merge.

        Returns a :class:`BatchResult` with routing, delivery and violation
        accounting for the batch.
        """
        self._current_delivered = {}
        result = BatchResult()
        mapped = self.map_tuples(tuples_by_cell)
        for items in mapped.values():
            result.tuples_in += len(items)
        for key, items in mapped.items():
            routed = self._planner.route_cell_batch(key, items)
            result.tuples_routed += routed
        # The flush triggers every Flatten operator's batch processing, which
        # pushes tuples down the chains and into the per-query merge stage.
        self._planner.flush_all()
        result.violations = self._planner.violations()
        result.delivered_per_query = dict(self._current_delivered)
        result.tuples_delivered = sum(self._current_delivered.values())
        self._batches += 1
        return result
