"""Acquisitional queries.

Section III: "the simplest queries for acquiring MCDS will have to specify
the following parameters: (1) the attribute they want to acquire, (2) the
region from which they want to acquire the given attribute, (3) the rate at
which they want to acquire the attribute."

:class:`AcquisitionalQuery` captures exactly those three plus an identifier.
:class:`RateSpec` handles the unit bookkeeping of rates such as the paper's
example "10 /km^2/min": internally everything is events per unit area per
unit time in the engine's native units, but queries can be written in
human-friendly units.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from ..errors import QueryError
from ..geometry import RectRegion, Rectangle, Region


class QueryIdAllocator:
    """Process-wide allocator of query ids.

    Behaves like ``itertools.count(1)`` but is inspectable, so engine
    snapshots can record the id high-water mark and a restored process can
    :meth:`advance_to` it — queries registered after recovery then receive
    the same ids an uninterrupted run would have handed out, and never
    collide with ids already captured in the snapshot.
    """

    __slots__ = ("_next",)

    def __init__(self, start: int = 1) -> None:
        self._next = start

    def __next__(self) -> int:
        value = self._next
        self._next += 1
        return value

    def peek(self) -> int:
        """The id the next registration will receive."""
        return self._next

    def advance_to(self, next_id: int) -> None:
        """Raise the high-water mark (never lowers it)."""
        if next_id > self._next:
            self._next = next_id


_query_ids = QueryIdAllocator()


def query_id_allocator() -> QueryIdAllocator:
    """The process-wide query-id allocator (used by snapshot/restore)."""
    return _query_ids

#: Area unit conversions to the engine's native square unit.
_AREA_UNITS = {
    "unit2": 1.0,
    "km2": 1.0,          # the examples treat one native unit of length as 1 km
    "m2": 1e-6,
    "hectare": 0.01,
}

#: Time unit conversions to the engine's native time unit.
_TIME_UNITS = {
    "unit": 1.0,
    "min": 1.0,          # the examples treat one native time unit as 1 minute
    "sec": 1.0 / 60.0,
    "hour": 60.0,
    "day": 1440.0,
}


@dataclass(frozen=True)
class RateSpec:
    """A spatio-temporal acquisition rate with units.

    ``RateSpec(10, area_unit="km2", time_unit="min")`` is the paper's
    "10 /km^2/min".
    """

    value: float
    area_unit: str = "unit2"
    time_unit: str = "unit"

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise QueryError("a rate must be strictly positive")
        if self.area_unit not in _AREA_UNITS:
            raise QueryError(
                f"unknown area unit '{self.area_unit}'; known: {sorted(_AREA_UNITS)}"
            )
        if self.time_unit not in _TIME_UNITS:
            raise QueryError(
                f"unknown time unit '{self.time_unit}'; known: {sorted(_TIME_UNITS)}"
            )

    @property
    def per_unit(self) -> float:
        """The rate converted to events per native area unit per native time unit."""
        return self.value / _AREA_UNITS[self.area_unit] / _TIME_UNITS[self.time_unit]

    def __float__(self) -> float:
        return self.per_unit


@dataclass(frozen=True)
class AcquisitionalQuery:
    """A continuous acquisitional query ``Q<j>``.

    Attributes
    ----------
    attribute:
        The attribute ``A<j>`` to acquire (e.g. ``"rain"``).
    region:
        The query region ``R' ⊆ R``.
    rate:
        The requested acquisition rate (per unit area per unit time, or a
        :class:`RateSpec`).
    query_id:
        Unique identifier; auto-assigned when not given.
    name:
        Optional human-readable label used in reports.
    """

    attribute: str
    region: Region
    rate: float
    query_id: int = field(default_factory=lambda: next(_query_ids))
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.attribute:
            raise QueryError("a query must name the attribute it acquires")
        if isinstance(self.region, Rectangle):
            object.__setattr__(self, "region", RectRegion(self.region))
        if not isinstance(self.region, Region):
            raise QueryError("the query region must be a Region or Rectangle")
        rate = self.rate
        if isinstance(rate, RateSpec):
            object.__setattr__(self, "rate", rate.per_unit)
        elif isinstance(rate, (int, float)):
            object.__setattr__(self, "rate", float(rate))
        else:
            raise QueryError("the rate must be a number or a RateSpec")
        if self.rate <= 0:
            raise QueryError("the requested rate must be strictly positive")

    @property
    def label(self) -> str:
        """Display label: the explicit name or ``Q<id>``."""
        return self.name or f"Q{self.query_id}"

    def expected_tuples(self, duration: float) -> float:
        """Expected number of tuples the query should receive over ``duration``."""
        if duration <= 0:
            raise QueryError("duration must be positive")
        return self.rate * self.region.area * duration

    def with_rate(self, rate: float) -> "AcquisitionalQuery":
        """A copy of the query asking for a different rate (new query id)."""
        return replace(self, rate=rate, query_id=next(_query_ids))

    def validate_against(self, world_region: Rectangle, min_area: float) -> None:
        """Check the query is admissible for a given deployment.

        The paper requires a single-attribute query to cover at least one
        grid cell's area and, implicitly, to lie inside ``R``.
        """
        if self.region.area + 1e-12 < min_area:
            raise QueryError(
                f"query region area {self.region.area:.6g} is smaller than one "
                f"grid cell ({min_area:.6g}); use a finer grid or a larger region"
            )
        if not RectRegion(world_region).covers(self.region):
            raise QueryError("the query region must lie inside the deployment region R")
