"""The paper's primary contribution: PMAT operators and the CrAQR engine.

* :mod:`repro.core.pmat` — the point-process transformation operators
  (Flatten, Thin, Partition, Union and extension operators).
* :mod:`repro.core.query` — acquisitional queries (attribute, region, rate).
* :mod:`repro.core.topology` — per-grid-cell execution topologies built from
  PMAT operators, with the paper's structural invariants.
* :mod:`repro.core.planner` — topology construction, query insertion and
  deletion (Section V).
* :mod:`repro.core.budget` — budget tuning driven by rate-violation feedback.
* :mod:`repro.core.fabricator` — the crowdsensed stream fabricator.
* :mod:`repro.core.engine` — the CrAQR engine facade tying the pieces to the
  request/response handler and the sensing world.
"""

from .query import AcquisitionalQuery, RateSpec
from .pmat import (
    PMATOperator,
    FlattenOperator,
    ThinOperator,
    PartitionOperator,
    UnionOperator,
    SuperposeOperator,
    ShiftOperator,
    MarkOperator,
    SampleOperator,
    ClampOperator,
    DeduplicateOperator,
    MajorityVoteOperator,
    OutlierFilterOperator,
)
from .topology import AttributeChain, CellTopology, RateLevel
from .planner import QueryPlanner, PlannerStats, QueryUpdate
from .budget import BudgetTuner, BudgetDecision
from .fabricator import StreamFabricator, BatchResult
from .engine import (
    CraqrEngine,
    EngineReport,
    QueryHandle,
    QuerySessionInfo,
    StatementResult,
    ViolationInfo,
)
from .optimizer import (
    TopologyCostModel,
    QueryCostEstimate,
    estimate_query_cost,
    GridGranularityAdvisor,
    GranularityRecommendation,
)
from .merge import TreeMergeBuilder, MergeTree, merge_depth, operator_count

__all__ = [
    "AcquisitionalQuery",
    "RateSpec",
    "PMATOperator",
    "FlattenOperator",
    "ThinOperator",
    "PartitionOperator",
    "UnionOperator",
    "SuperposeOperator",
    "ShiftOperator",
    "MarkOperator",
    "SampleOperator",
    "ClampOperator",
    "DeduplicateOperator",
    "MajorityVoteOperator",
    "OutlierFilterOperator",
    "AttributeChain",
    "CellTopology",
    "RateLevel",
    "QueryPlanner",
    "PlannerStats",
    "QueryUpdate",
    "BudgetTuner",
    "BudgetDecision",
    "StreamFabricator",
    "BatchResult",
    "CraqrEngine",
    "EngineReport",
    "QueryHandle",
    "QuerySessionInfo",
    "StatementResult",
    "ViolationInfo",
    "TopologyCostModel",
    "QueryCostEstimate",
    "estimate_query_cost",
    "GridGranularityAdvisor",
    "GranularityRecommendation",
    "TreeMergeBuilder",
    "MergeTree",
    "merge_depth",
    "operator_count",
]
