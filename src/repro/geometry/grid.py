"""The logical ``sqrt(h) x sqrt(h)`` grid over the region R (Section IV).

The grid is purely logical: the engine only materialises the cells that
participate in query processing.  Cells are addressed by integer
``(q, r)`` coordinates — ``q`` for the column (x direction) and ``r`` for the
row (y direction) — matching the paper's ``R(q,r)`` notation.  The sum of the
cell areas equals the area of R (Eq. 2), which we verify in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from ..errors import GeometryError
from .point import SpacePoint
from .rectangle import Rectangle
from .region import RectRegion, Region


@dataclass(frozen=True)
class GridCell:
    """One grid cell ``R(q,r)`` with its integer coordinates and rectangle."""

    q: int
    r: int
    rect: Rectangle

    @property
    def key(self) -> Tuple[int, int]:
        """The ``(q, r)`` coordinate pair used as the hashmap key."""
        return (self.q, self.r)

    @property
    def region(self) -> RectRegion:
        """The cell as a region."""
        return RectRegion(self.rect)

    @property
    def area(self) -> float:
        """Area of the cell."""
        return self.rect.area


class Grid:
    """A uniform ``side x side`` grid over a rectangular region.

    Parameters
    ----------
    region:
        The overall rectangular region ``R``.
    side:
        Number of cells along each axis (the paper's ``sqrt(h)``).
    """

    def __init__(self, region: Rectangle, side: int) -> None:
        if side <= 0:
            raise GeometryError("grid side must be positive")
        self._region = region
        self._side = side
        self._cell_width = region.width / side
        self._cell_height = region.height / side
        self._cells: Dict[Tuple[int, int], GridCell] = {}
        for r in range(side):
            for q in range(side):
                rect = Rectangle(
                    region.x_min + q * self._cell_width,
                    region.y_min + r * self._cell_height,
                    region.x_min + (q + 1) * self._cell_width,
                    region.y_min + (r + 1) * self._cell_height,
                )
                self._cells[(q, r)] = GridCell(q=q, r=r, rect=rect)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def region(self) -> Rectangle:
        """The overall region ``R``."""
        return self._region

    @property
    def side(self) -> int:
        """Cells per axis (``sqrt(h)``)."""
        return self._side

    @property
    def cell_count(self) -> int:
        """Total number of cells ``h``."""
        return self._side * self._side

    @property
    def cell_area(self) -> float:
        """Area of a single cell."""
        return self._cell_width * self._cell_height

    def cell(self, q: int, r: int) -> GridCell:
        """The cell at coordinates ``(q, r)``."""
        try:
            return self._cells[(q, r)]
        except KeyError:
            raise GeometryError(
                f"cell ({q}, {r}) outside grid of side {self._side}"
            ) from None

    def cells(self) -> List[GridCell]:
        """All cells, row-major from the bottom-left."""
        return [self._cells[(q, r)] for r in range(self._side) for q in range(self._side)]

    def __iter__(self) -> Iterator[GridCell]:
        return iter(self.cells())

    def __len__(self) -> int:
        return self.cell_count

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def locate(self, x: float, y: float) -> GridCell:
        """The cell containing the point ``(x, y)``.

        Points on the outermost top/right boundary of ``R`` are clamped into
        the last cell so no sensed tuple is lost.
        """
        if not self._region.contains(x, y, closed=True):
            raise GeometryError(
                f"point ({x}, {y}) lies outside the region {self._region}"
            )
        q = int((x - self._region.x_min) / self._cell_width)
        r = int((y - self._region.y_min) / self._cell_height)
        q = min(q, self._side - 1)
        r = min(r, self._side - 1)
        return self._cells[(q, r)]

    def locate_point(self, point: SpacePoint) -> GridCell:
        """The cell containing a :class:`SpacePoint`."""
        return self.locate(point.x, point.y)

    def cells_for_points(self, xs, ys) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorised bucketing: the ``(q, r)`` coordinates of many points.

        The columnar fabricator's map stage uses this to assign a whole
        tuple batch to grid cells with two floor-divides instead of a
        per-point :meth:`locate` loop.  Agrees exactly with :meth:`locate`
        (including the clamp of the outermost top/right boundary into the
        last cell) and raises :class:`GeometryError` when any point lies
        outside the region.
        """
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        region = self._region
        inside = (
            (region.x_min <= xs) & (xs <= region.x_max)
            & (region.y_min <= ys) & (ys <= region.y_max)
        )
        if not np.all(inside):
            index = int(np.argmin(inside))
            raise GeometryError(
                f"point ({xs[index]}, {ys[index]}) lies outside the region {region}"
            )
        # Same arithmetic as the scalar path: truncation equals floor here
        # because validated coordinates are never below the region minimum.
        q = ((xs - region.x_min) / self._cell_width).astype(np.int64)
        r = ((ys - region.y_min) / self._cell_height).astype(np.int64)
        np.minimum(q, self._side - 1, out=q)
        np.minimum(r, self._side - 1, out=r)
        return q, r

    def overlapping_cells(self, region: Region) -> List[GridCell]:
        """Cells with non-zero overlap with ``region`` (query insertion, Sec. V)."""
        return [
            cell
            for cell in self.cells()
            if region.overlap_area(cell.region) > 0.0
        ]

    def overlap_fraction(self, region: Region, cell: GridCell) -> float:
        """Fraction of ``cell`` covered by ``region`` (in [0, 1])."""
        return region.overlap_area(cell.region) / cell.area

    def total_cell_area(self) -> float:
        """Sum of all cell areas; equals ``area(R)`` (Eq. 2)."""
        return sum(cell.area for cell in self.cells())
