"""Geometric substrate: points, rectangles, region algebra and the grid.

The paper works over a rectangular geographical region ``R`` that is
logically partitioned into a ``sqrt(h) x sqrt(h)`` grid (Section IV).  Query
regions are rectangles; the Partition and Union PMAT operators rely on
rectangle intersection, disjointness and adjacency.  This package provides
those primitives.
"""

from .point import SpacePoint, SpaceTimePoint
from .rectangle import Rectangle
from .region import (
    Region,
    RectRegion,
    CompositeRegion,
    union_regions,
    rectangles_are_adjacent,
)
from .grid import Grid, GridCell

__all__ = [
    "SpacePoint",
    "SpaceTimePoint",
    "Rectangle",
    "Region",
    "RectRegion",
    "CompositeRegion",
    "union_regions",
    "rectangles_are_adjacent",
    "Grid",
    "GridCell",
]
