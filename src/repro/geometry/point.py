"""Point types used throughout the library.

Two small immutable value types:

* :class:`SpacePoint` — a 2-D location ``(x, y)``.
* :class:`SpaceTimePoint` — a 3-D spatio-temporal coordinate ``(t, x, y)``,
  the support of the multi-dimensional point processes in the paper.

The paper notes a z-coordinate could be added; for parity with the paper we
work with 2-D space plus time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True, order=True)
class SpacePoint:
    """A 2-D spatial location."""

    x: float
    y: float

    def distance_to(self, other: "SpacePoint") -> float:
        """Euclidean distance to another point."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def translated(self, dx: float, dy: float) -> "SpacePoint":
        """Return a new point displaced by ``(dx, dy)``."""
        return SpacePoint(self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y


@dataclass(frozen=True, order=True)
class SpaceTimePoint:
    """A spatio-temporal coordinate ``(t, x, y)``.

    Ordering is lexicographic with time first, which makes sorted batches of
    points time-ordered — the natural order for streaming.
    """

    t: float
    x: float
    y: float

    @property
    def space(self) -> SpacePoint:
        """The spatial component ``(x, y)``."""
        return SpacePoint(self.x, self.y)

    def shifted(self, dt: float = 0.0, dx: float = 0.0, dy: float = 0.0) -> "SpaceTimePoint":
        """Return a new point displaced by ``(dt, dx, dy)``."""
        return SpaceTimePoint(self.t + dt, self.x + dx, self.y + dy)

    def as_tuple(self) -> Tuple[float, float, float]:
        """Return ``(t, x, y)``."""
        return (self.t, self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.t
        yield self.x
        yield self.y
