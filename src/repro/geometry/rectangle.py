"""Axis-aligned rectangles.

Rectangles are the fundamental spatial regions of the paper: the whole region
``R``, grid cells ``R(q,r)`` and query regions are all axis-aligned
rectangles.  A rectangle is half-open on its upper edges (``[x_min, x_max) x
[y_min, y_max)``) so that a grid of touching cells tiles the plane without
double-counting boundary points; the *overall* region's outermost edges are
treated as closed by the grid (see :mod:`repro.geometry.grid`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

import numpy as np

from ..errors import GeometryError
from .point import SpacePoint

#: Tolerance used when comparing coordinates for adjacency and equality.
COORD_TOLERANCE = 1e-9


@dataclass(frozen=True, order=True)
class Rectangle:
    """An axis-aligned rectangle ``[x_min, x_max) x [y_min, y_max)``."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if not (self.x_max > self.x_min and self.y_max > self.y_min):
            raise GeometryError(
                "rectangle must have positive extent; got "
                f"[{self.x_min}, {self.x_max}) x [{self.y_min}, {self.y_max})"
            )

    # ------------------------------------------------------------------
    # Basic measures
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        """Extent along x."""
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        """Area of the rectangle (the paper's ``area(.)`` function)."""
        return self.width * self.height

    @property
    def center(self) -> SpacePoint:
        """Geometric centre."""
        return SpacePoint((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    def corners(self) -> List[SpacePoint]:
        """The four corners, counter-clockwise from the lower-left."""
        return [
            SpacePoint(self.x_min, self.y_min),
            SpacePoint(self.x_max, self.y_min),
            SpacePoint(self.x_max, self.y_max),
            SpacePoint(self.x_min, self.y_max),
        ]

    # ------------------------------------------------------------------
    # Point and rectangle relations
    # ------------------------------------------------------------------
    def contains(self, x: float, y: float, *, closed: bool = False) -> bool:
        """Whether the point ``(x, y)`` lies inside the rectangle.

        Parameters
        ----------
        closed:
            When true the upper edges are included; used for the outermost
            boundary of the overall region so no sensed point is lost.
        """
        if closed:
            return self.x_min <= x <= self.x_max and self.y_min <= y <= self.y_max
        return self.x_min <= x < self.x_max and self.y_min <= y < self.y_max

    def contains_point(self, point: SpacePoint, *, closed: bool = False) -> bool:
        """Whether a :class:`SpacePoint` lies inside the rectangle."""
        return self.contains(point.x, point.y, closed=closed)

    def contains_many(self, xs, ys, *, closed: bool = False):
        """Vectorised :meth:`contains`: a boolean mask over point arrays."""
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if closed:
            return (
                (self.x_min <= xs) & (xs <= self.x_max)
                & (self.y_min <= ys) & (ys <= self.y_max)
            )
        return (
            (self.x_min <= xs) & (xs < self.x_max)
            & (self.y_min <= ys) & (ys < self.y_max)
        )

    def contains_rectangle(self, other: "Rectangle") -> bool:
        """Whether ``other`` is entirely inside this rectangle."""
        return (
            self.x_min <= other.x_min + COORD_TOLERANCE
            and self.y_min <= other.y_min + COORD_TOLERANCE
            and other.x_max <= self.x_max + COORD_TOLERANCE
            and other.y_max <= self.y_max + COORD_TOLERANCE
        )

    def intersects(self, other: "Rectangle") -> bool:
        """Whether the two rectangles overlap with positive area."""
        return (
            self.x_min < other.x_max
            and other.x_min < self.x_max
            and self.y_min < other.y_max
            and other.y_min < self.y_max
        )

    def intersection(self, other: "Rectangle") -> Optional["Rectangle"]:
        """The overlapping rectangle, or ``None`` if the overlap has no area."""
        if not self.intersects(other):
            return None
        return Rectangle(
            max(self.x_min, other.x_min),
            max(self.y_min, other.y_min),
            min(self.x_max, other.x_max),
            min(self.y_max, other.y_max),
        )

    def overlap_area(self, other: "Rectangle") -> float:
        """Area of the overlap with ``other`` (0 when disjoint)."""
        overlap = self.intersection(other)
        return overlap.area if overlap is not None else 0.0

    def is_disjoint(self, other: "Rectangle") -> bool:
        """Whether the rectangles do not overlap (touching edges allowed)."""
        return not self.intersects(other)

    # ------------------------------------------------------------------
    # Adjacency and union (needed by the Union PMAT operator)
    # ------------------------------------------------------------------
    def shares_full_side_with(self, other: "Rectangle") -> bool:
        """Whether the rectangles are adjacent with a common side of equal length.

        This is exactly the pre-condition the paper states for the Union
        operator: "the rectangles should be adjacent and with a common side
        of equal length".
        """
        same_y = (
            abs(self.y_min - other.y_min) <= COORD_TOLERANCE
            and abs(self.y_max - other.y_max) <= COORD_TOLERANCE
        )
        same_x = (
            abs(self.x_min - other.x_min) <= COORD_TOLERANCE
            and abs(self.x_max - other.x_max) <= COORD_TOLERANCE
        )
        touch_in_x = (
            abs(self.x_max - other.x_min) <= COORD_TOLERANCE
            or abs(other.x_max - self.x_min) <= COORD_TOLERANCE
        )
        touch_in_y = (
            abs(self.y_max - other.y_min) <= COORD_TOLERANCE
            or abs(other.y_max - self.y_min) <= COORD_TOLERANCE
        )
        return (same_y and touch_in_x) or (same_x and touch_in_y)

    def union_with(self, other: "Rectangle") -> "Rectangle":
        """Union with an adjacent rectangle of matching side.

        Raises
        ------
        GeometryError
            If the rectangles are not adjacent with a common side of equal
            length (the union would not be a rectangle).
        """
        if not self.shares_full_side_with(other):
            raise GeometryError(
                "rectangles can only be unioned when adjacent with a common "
                f"side of equal length: {self} vs {other}"
            )
        return Rectangle(
            min(self.x_min, other.x_min),
            min(self.y_min, other.y_min),
            max(self.x_max, other.x_max),
            max(self.y_max, other.y_max),
        )

    def bounding_union(self, other: "Rectangle") -> "Rectangle":
        """Smallest rectangle containing both (no adjacency requirement)."""
        return Rectangle(
            min(self.x_min, other.x_min),
            min(self.y_min, other.y_min),
            max(self.x_max, other.x_max),
            max(self.y_max, other.y_max),
        )

    # ------------------------------------------------------------------
    # Splitting helpers (used by the grid and by Partition)
    # ------------------------------------------------------------------
    def split_horizontally(self, y: float) -> Tuple["Rectangle", "Rectangle"]:
        """Split into a bottom and a top rectangle at height ``y``."""
        if not (self.y_min < y < self.y_max):
            raise GeometryError(f"split coordinate {y} outside ({self.y_min}, {self.y_max})")
        return (
            Rectangle(self.x_min, self.y_min, self.x_max, y),
            Rectangle(self.x_min, y, self.x_max, self.y_max),
        )

    def split_vertically(self, x: float) -> Tuple["Rectangle", "Rectangle"]:
        """Split into a left and a right rectangle at abscissa ``x``."""
        if not (self.x_min < x < self.x_max):
            raise GeometryError(f"split coordinate {x} outside ({self.x_min}, {self.x_max})")
        return (
            Rectangle(self.x_min, self.y_min, x, self.y_max),
            Rectangle(x, self.y_min, self.x_max, self.y_max),
        )

    def subdivide(self, nx: int, ny: int) -> List["Rectangle"]:
        """Split into an ``nx x ny`` array of equal cells, row-major from the bottom-left."""
        if nx <= 0 or ny <= 0:
            raise GeometryError("subdivision counts must be positive")
        cell_w = self.width / nx
        cell_h = self.height / ny
        cells: List[Rectangle] = []
        for r in range(ny):
            for q in range(nx):
                cells.append(
                    Rectangle(
                        self.x_min + q * cell_w,
                        self.y_min + r * cell_h,
                        self.x_min + (q + 1) * cell_w,
                        self.y_min + (r + 1) * cell_h,
                    )
                )
        return cells

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_origin(cls, width: float, height: float) -> "Rectangle":
        """Rectangle anchored at the origin with the given extents."""
        return cls(0.0, 0.0, width, height)

    @classmethod
    def unit_square(cls) -> "Rectangle":
        """The unit square ``[0, 1) x [0, 1)``."""
        return cls(0.0, 0.0, 1.0, 1.0)

    @classmethod
    def bounding(cls, rectangles: Iterable["Rectangle"]) -> "Rectangle":
        """Smallest rectangle containing every rectangle in ``rectangles``."""
        rects = list(rectangles)
        if not rects:
            raise GeometryError("cannot compute the bounding box of nothing")
        return cls(
            min(r.x_min for r in rects),
            min(r.y_min for r in rects),
            max(r.x_max for r in rects),
            max(r.y_max for r in rects),
        )
