"""Region algebra.

A *region* is the spatial extent a point process lives on.  The paper works
with rectangular regions, but the Union operator produces regions that are
unions of adjacent rectangles (e.g. the L-shaped union of grid cells that
make up a query region in Fig. 2).  :class:`CompositeRegion` models such
rectilinear unions as a set of pairwise-disjoint rectangles.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import GeometryError
from .point import SpacePoint
from .rectangle import COORD_TOLERANCE, Rectangle


class Region(ABC):
    """Abstract spatial region composed of one or more disjoint rectangles."""

    @property
    @abstractmethod
    def rectangles(self) -> Tuple[Rectangle, ...]:
        """The disjoint rectangles making up the region."""

    @property
    def area(self) -> float:
        """Total area of the region."""
        return sum(rect.area for rect in self.rectangles)

    @property
    def bounding_box(self) -> Rectangle:
        """Smallest rectangle containing the region."""
        return Rectangle.bounding(self.rectangles)

    def contains(self, x: float, y: float, *, closed: bool = False) -> bool:
        """Whether the point ``(x, y)`` lies inside the region."""
        return any(rect.contains(x, y, closed=closed) for rect in self.rectangles)

    def contains_point(self, point: SpacePoint, *, closed: bool = False) -> bool:
        """Whether a :class:`SpacePoint` lies inside the region."""
        return self.contains(point.x, point.y, closed=closed)

    def contains_many(self, xs, ys, *, closed: bool = False) -> np.ndarray:
        """Vectorised :meth:`contains`: a boolean mask over point arrays.

        The columnar Partition path uses this to carve a query's overlap out
        of a grid-cell batch with one mask instead of a per-tuple loop.
        """
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        mask = np.zeros(xs.shape, dtype=bool)
        for rect in self.rectangles:
            mask |= rect.contains_many(xs, ys, closed=closed)
        return mask

    def intersects(self, other: "Region") -> bool:
        """Whether the two regions overlap with positive area."""
        return any(
            a.intersects(b) for a in self.rectangles for b in other.rectangles
        )

    def overlap_area(self, other: "Region") -> float:
        """Total area of the overlap with ``other``."""
        return sum(
            a.overlap_area(b) for a in self.rectangles for b in other.rectangles
        )

    def covers(self, other: "Region") -> bool:
        """Whether ``other`` is (numerically) entirely inside this region."""
        return abs(self.overlap_area(other) - other.area) <= COORD_TOLERANCE * max(
            1.0, other.area
        )

    def is_disjoint(self, other: "Region") -> bool:
        """Whether the two regions do not overlap."""
        return not self.intersects(other)

    def equals(self, other: "Region") -> bool:
        """Area-based equality: same area and each covers the other."""
        return self.covers(other) and other.covers(self)

    def intersection(self, other: "Region") -> Optional["Region"]:
        """The overlapping region, or ``None`` when the overlap has no area."""
        pieces: List[Rectangle] = []
        for a in self.rectangles:
            for b in other.rectangles:
                overlap = a.intersection(b)
                if overlap is not None:
                    pieces.append(overlap)
        if not pieces:
            return None
        if len(pieces) == 1:
            return RectRegion(pieces[0])
        return CompositeRegion(tuple(pieces))

    def union(self, other: "Region") -> "Region":
        """Union with a disjoint (or touching) region.

        Raises
        ------
        GeometryError
            If the regions overlap with positive area — the Union PMAT
            operator requires disjoint inputs so rates are preserved.
        """
        if self.intersects(other):
            raise GeometryError("regions to union must be disjoint")
        return union_regions([self, other])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rects = ", ".join(
            f"[{r.x_min:g},{r.x_max:g})x[{r.y_min:g},{r.y_max:g})"
            for r in self.rectangles
        )
        return f"{type(self).__name__}({rects})"


@dataclass(frozen=True, repr=False)
class RectRegion(Region):
    """A region that is a single rectangle (the common case in the paper)."""

    rect: Rectangle

    @property
    def rectangles(self) -> Tuple[Rectangle, ...]:
        return (self.rect,)

    @classmethod
    def from_bounds(
        cls, x_min: float, y_min: float, x_max: float, y_max: float
    ) -> "RectRegion":
        """Build directly from rectangle bounds."""
        return cls(Rectangle(x_min, y_min, x_max, y_max))


@dataclass(frozen=True, repr=False)
class CompositeRegion(Region):
    """A region made of several pairwise-disjoint rectangles."""

    parts: Tuple[Rectangle, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.parts:
            raise GeometryError("a composite region needs at least one rectangle")
        parts = list(self.parts)
        for i, a in enumerate(parts):
            for b in parts[i + 1:]:
                if a.intersects(b):
                    raise GeometryError(
                        "composite region rectangles must be pairwise disjoint"
                    )

    @property
    def rectangles(self) -> Tuple[Rectangle, ...]:
        return self.parts


def rectangles_are_adjacent(a: Rectangle, b: Rectangle) -> bool:
    """Whether two rectangles touch along an edge (of any length).

    Weaker than :meth:`Rectangle.shares_full_side_with`; used to validate
    that a composite query region is connected.
    """
    if a.intersects(b):
        return False
    touch_x = (
        abs(a.x_max - b.x_min) <= COORD_TOLERANCE
        or abs(b.x_max - a.x_min) <= COORD_TOLERANCE
    )
    touch_y = (
        abs(a.y_max - b.y_min) <= COORD_TOLERANCE
        or abs(b.y_max - a.y_min) <= COORD_TOLERANCE
    )
    overlap_in_y = a.y_min < b.y_max and b.y_min < a.y_max
    overlap_in_x = a.x_min < b.x_max and b.x_min < a.x_max
    return (touch_x and overlap_in_y) or (touch_y and overlap_in_x)


def _merge_rectangles(rects: Sequence[Rectangle]) -> List[Rectangle]:
    """Greedily merge rectangles that share a full side, to keep regions small."""
    merged = list(rects)
    changed = True
    while changed:
        changed = False
        for i in range(len(merged)):
            for j in range(i + 1, len(merged)):
                if merged[i].shares_full_side_with(merged[j]):
                    combined = merged[i].union_with(merged[j])
                    merged[j] = combined
                    del merged[i]
                    changed = True
                    break
            if changed:
                break
    return merged


def union_regions(regions: Iterable[Region]) -> Region:
    """Union several pairwise-disjoint regions into one region.

    Adjacent rectangles with a common full side are merged so that, e.g.,
    unioning the per-grid-cell pieces of a rectangular query region gives
    back a single-rectangle region (as in the paper's merge phase, Fig. 2c).
    """
    all_rects: List[Rectangle] = []
    region_list = list(regions)
    if not region_list:
        raise GeometryError("cannot union an empty collection of regions")
    for idx, region in enumerate(region_list):
        for other in region_list[idx + 1:]:
            if region.intersects(other):
                raise GeometryError("regions to union must be pairwise disjoint")
        all_rects.extend(region.rectangles)
    merged = _merge_rectangles(all_rects)
    if len(merged) == 1:
        return RectRegion(merged[0])
    return CompositeRegion(tuple(merged))
