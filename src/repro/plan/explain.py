"""EXPLAIN rendering: the compiled graph as text.

``EXPLAIN <query|view>`` resolves its target to a query, lowers the
current topology through the compiler and pass pipeline, and renders the
slice of the graph the target rides on: nodes with their schemas, the
fused kernel each mask belongs to, which queries share each node, the
merge-stage structure, and the seed-era cost-model estimate.
"""

from __future__ import annotations

from typing import Dict, Optional

from .ir import PlanGraph


def _query_marker(node, query_id: int) -> str:
    if not node.shared:
        return ""
    others = sorted(q for q in node.queries if q != query_id)
    return f"  [shared with q{',q'.join(str(q) for q in others)}]"


def render_explain(
    graph: PlanGraph,
    *,
    query_id: int,
    query_label: str,
    view_name: Optional[str] = None,
    compiled: bool = True,
    cost_estimate=None,
) -> str:
    """Render the plan slice for one query (optionally focussed on a view)."""
    target = f"view {view_name!r} on query {query_label!r}" if view_name else f"query {query_label!r}"
    mode = "compiled (fused kernels)" if compiled else "interpreted (per-operator reference path)"
    lines = [
        f"EXPLAIN {target} (q{query_id})",
        f"execution mode: {mode}",
        "",
    ]
    nodes = graph.nodes_for_query(query_id)
    if view_name is not None:
        view_label = f"view:{view_name}"
        keep_kinds = {"source", "estimate", "mask", "gather", "union", "sink"}
        nodes = [
            node
            for node in nodes
            if node.kind in keep_kinds
            or node.kind == "view-sink" and node.label == view_label
            or node.kind == "view-sort"
            and any(
                sink.label == view_label and node.node_id in sink.inputs
                for sink in graph.nodes_of_kind("view-sink")
            )
        ]
    lines.append(f"dataflow ({len(nodes)} nodes):")
    for node in nodes:
        inputs = (
            " <- " + ",".join(f"#{i}" for i in node.inputs) if node.inputs else ""
        )
        kernel = node.details.get("kernel")
        kernel_tag = f"  {{{kernel}}}" if kernel else ""
        shares = node.details.get("shares_mask_with")
        shares_tag = f"  [predicate shared with #{shares}]" if shares is not None else ""
        lines.append(
            f"  #{node.node_id:<3} {node.kind:<9} {node.label}"
            f"  ({', '.join(node.schema)}){inputs}"
            f"{kernel_tag}{shares_tag}{_query_marker(node, query_id)}"
        )

    kernel_names = {
        node.details.get("kernel")
        for node in nodes
        if node.details.get("kernel") is not None
    }
    kernels = [kernel for kernel in graph.kernels if kernel.name in kernel_names]
    if kernels:
        lines.append("")
        lines.append(f"fused kernels ({len(kernels)}):")
        for kernel in kernels:
            lines.append(
                f"  {kernel.name}: nodes "
                f"{','.join(f'#{i}' for i in kernel.node_ids)} — {kernel.description}"
            )

    union_nodes = [node for node in nodes if node.kind == "union"]
    for node in union_nodes:
        fan_in = node.details.get("fan_in")
        if fan_in is None:
            continue
        lines.append("")
        lines.append(
            f"merge stage: flat union over {fan_in} per-cell streams"
        )
        depth = node.details.get("tree_depth")
        operators = node.details.get("tree_operators")
        if depth is not None:
            lines.append(
                f"  tree alternative (fan-in 2): depth {depth}, "
                f"{operators} union operators"
            )

    if cost_estimate is not None:
        lines.append("")
        lines.append(
            "cost estimate (steady-state, seed cost model): "
            f"{cost_estimate.total:.2f} units/batch over "
            f"{cost_estimate.cells} cells "
            f"({cost_estimate.requests_per_batch:.1f} requests, "
            f"{cost_estimate.operator_tuples_per_batch:.1f} operator-tuples, "
            f"over-acquisition {100.0 * cost_estimate.over_acquisition:.1f}%)"
        )
    if graph.shared_cost_saved:
        lines.append(
            f"sharing saves ~{graph.shared_cost_saved:.3f} cost units/batch "
            "across all queries (CSE)"
        )
    if graph.notes:
        lines.append("")
        lines.append("optimizer notes:")
        for note in graph.notes:
            lines.append(f"  - {note}")
    return "\n".join(lines)
