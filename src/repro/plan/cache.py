"""Plan cache: compiled chain programs keyed on live topology identity.

The cache is *derived state*: it holds no RNG, no counters, no results —
only the step structure of each chain.  It is therefore excluded from
engine checkpoints (``CraqrEngine.__getstate__`` nulls it, like the crash
injector) and rebuilt lazily after a restore.

Invalidation is O(changed cells): an entry for ``(cell_key, attribute)``
stays valid while the cell's topology object, its rebuild counter and the
chain object are all the ones the program was compiled from.  ALTER /
STOP / DROP only rebuild the cells they touch (the planner's incremental
replanning), so only those entries recompile; pausing a query changes no
topology at all (delivery-time suppression), so the cache is untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .compiler import compile_chain_program
from .executor import ChainProgram

CellKey = Tuple[int, int]


@dataclass
class _CacheEntry:
    topology: object
    rebuilds: int
    chain: object
    program: ChainProgram


class PlanCache:
    """Per-(cell, attribute) compiled programs with incremental rebuilds."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple[CellKey, str], _CacheEntry] = {}
        #: lifetime number of chain compilations (regression-tested by the
        #: churn-storm test: must stay O(changed cells), not O(all cells))
        self.compiles = 0
        #: lifetime number of cache hits
        self.reuses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def programs_for(self, planner) -> Dict[CellKey, Dict[str, ChainProgram]]:
        """Valid programs for every materialised chain, recompiling stale ones.

        Iterates the planner's cells in execution order; entries whose
        topology was rebuilt (or replaced) since compilation are replaced,
        entries for dropped cells/chains are pruned.
        """
        programs: Dict[CellKey, Dict[str, ChainProgram]] = {}
        live = set()
        for key in planner.materialized_cells:
            topology = planner.cell_topology(key)
            per_attribute: Dict[str, ChainProgram] = {}
            rebuilds = topology.rebuilds
            for attribute in topology.attributes:
                chain = topology.chain(attribute)
                cache_key = (key, attribute)
                live.add(cache_key)
                entry = self._entries.get(cache_key)
                if (
                    entry is not None
                    and entry.topology is topology
                    and entry.rebuilds == rebuilds
                    and entry.chain is chain
                ):
                    self.reuses += 1
                    per_attribute[attribute] = entry.program
                else:
                    program = compile_chain_program(chain)
                    self._entries[cache_key] = _CacheEntry(
                        topology=topology,
                        rebuilds=rebuilds,
                        chain=chain,
                        program=program,
                    )
                    self.compiles += 1
                    per_attribute[attribute] = program
            programs[key] = per_attribute
        for cache_key in list(self._entries):
            if cache_key not in live:
                del self._entries[cache_key]
        return programs
