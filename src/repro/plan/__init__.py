"""Per-batch plan compiler (ROADMAP item 1).

Lowers every registered query's PMAT chain — and the views attached to
each query — into one explicit dataflow graph per batch, runs an optimizer
pass pipeline over it (keep-mask fusion, cross-query CSE, shared view
sorts), and executes the result as a handful of fused numpy kernels that
are byte-identical to the interpreted per-operator path.

Entry points:

* :class:`PlanCache` — the engine's derived-state cache of compiled
  :class:`ChainProgram`\\ s, invalidated per changed cell.
* :func:`build_plan_graph` + :func:`optimize` + :func:`render_explain` —
  the ``EXPLAIN`` pipeline.
"""

from .cache import PlanCache
from .compiler import build_plan_graph, compile_programs
from .executor import ChainProgram, compile_chain_program
from .explain import render_explain
from .ir import (
    EVENT_SCHEMA,
    INDEX_SCHEMA,
    MASK_SCHEMA,
    SORT_SCHEMA,
    TUPLE_SCHEMA,
    FusedKernel,
    PlanGraph,
    PlanNode,
)
from .passes import (
    annotate_merge_structure,
    fuse_keep_masks,
    optimize,
    share_common_subplans,
    share_view_sorts,
)

__all__ = [
    "PlanCache",
    "build_plan_graph",
    "compile_programs",
    "ChainProgram",
    "compile_chain_program",
    "render_explain",
    "PlanGraph",
    "PlanNode",
    "FusedKernel",
    "TUPLE_SCHEMA",
    "EVENT_SCHEMA",
    "MASK_SCHEMA",
    "INDEX_SCHEMA",
    "SORT_SCHEMA",
    "optimize",
    "fuse_keep_masks",
    "share_common_subplans",
    "share_view_sorts",
    "annotate_merge_structure",
]
