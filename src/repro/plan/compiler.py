"""Lowering: live planner state -> plan IR graph + executable programs.

Both artefacts derive from the same chain structure:

* :func:`compile_programs` produces the per-(cell, attribute)
  :class:`~repro.plan.executor.ChainProgram` objects the engine runs;
* :func:`build_plan_graph` produces the pure-data :class:`PlanGraph` that
  the optimizer passes annotate and ``EXPLAIN`` renders.

Lowering order is deterministic — cells in planner (insertion) order,
chains in cell order, levels by descending rate, taps in declaration
order, then per-query unions and sinks in registration order, then views —
so node ids are stable for a given topology.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from .executor import ChainProgram, compile_chain_program
from .ir import (
    EVENT_SCHEMA,
    MASK_SCHEMA,
    PlanGraph,
    SORT_SCHEMA,
    TUPLE_SCHEMA,
)

CellKey = Tuple[int, int]


def compile_programs(planner) -> Dict[CellKey, Dict[str, ChainProgram]]:
    """Compile every materialised chain into its fused program."""
    programs: Dict[CellKey, Dict[str, ChainProgram]] = {}
    for key in planner.materialized_cells:
        topology = planner.cell_topology(key)
        per_attribute: Dict[str, ChainProgram] = {}
        for attribute in topology.attributes:
            per_attribute[attribute] = compile_chain_program(
                topology.chain(attribute)
            )
        programs[key] = per_attribute
    return programs


def _details(ir: Dict[str, object]) -> Dict[str, object]:
    """Operator IR details minus the keys the node carries structurally."""
    return {k: v for k, v in ir.items() if k not in ("kind",)}


def _lower_chain(
    graph: PlanGraph,
    chain,
    cell_key: CellKey,
    gathers_by_query: Dict[int, List[int]],
) -> None:
    attribute = chain.attribute
    chain_tag = f"{attribute}@{cell_key}"
    queries = frozenset(chain.query_ids)
    source = graph.add(
        "source",
        f"source:{chain_tag}",
        TUPLE_SCHEMA,
        queries=queries,
        cell=str(cell_key),
        attribute=attribute,
    )
    flatten_ir = chain.flatten.lower_ir()
    estimate = graph.add(
        "estimate",
        f"estimate:{chain_tag}",
        EVENT_SCHEMA,
        inputs=(source.node_id,),
        queries=queries,
        estimator=flatten_ir["estimator"],
        chain=chain_tag,
    )
    flatten_node = graph.add(
        "mask",
        flatten_ir["name"],
        MASK_SCHEMA,
        inputs=(source.node_id, estimate.node_id),
        queries=queries,
        chain=chain_tag,
        **_details(flatten_ir),
    )

    levels = chain.levels
    # A thin level is shared by every query tapping it or any lower level.
    suffix_queries: List[frozenset] = [frozenset()] * len(levels)
    running: set = set()
    for index in range(len(levels) - 1, -1, -1):
        running = running | {tap.query_id for tap in levels[index].taps}
        suffix_queries[index] = frozenset(running)

    upstream = flatten_node
    for level_index, level in enumerate(levels):
        thin_ir = level.thin.lower_ir()
        thin_node = graph.add(
            "mask",
            thin_ir["name"],
            MASK_SCHEMA,
            inputs=(upstream.node_id,),
            queries=suffix_queries[level_index],
            chain=chain_tag,
            level=level_index,
            **_details(thin_ir),
        )
        for tap in level.taps:
            tap_queries = frozenset({tap.query_id})
            final_mask = thin_node
            if tap.partition is not None:
                partition_ir = tap.partition.lower_ir()
                final_mask = graph.add(
                    "mask",
                    partition_ir["name"],
                    MASK_SCHEMA,
                    inputs=(thin_node.node_id,),
                    queries=tap_queries,
                    chain=chain_tag,
                    level=level_index,
                    **_details(partition_ir),
                )
            gather = graph.add(
                "gather",
                f"gather:q{tap.query_id}@{cell_key}",
                TUPLE_SCHEMA,
                inputs=(source.node_id, final_mask.node_id),
                queries=tap_queries,
                chain=chain_tag,
                cell=str(cell_key),
            )
            gathers_by_query.setdefault(tap.query_id, []).append(gather.node_id)
        upstream = thin_node


def build_plan_graph(planner, views: Iterable = ()) -> PlanGraph:
    """Lower the planner's live topology (plus views) into a fresh graph.

    The result is unoptimized; run it through
    :func:`repro.plan.passes.optimize` to attach keep-mask fusion, CSE and
    shared-sort annotations.
    """
    graph = PlanGraph()
    gathers_by_query: Dict[int, List[int]] = {}
    for key in planner.materialized_cells:
        topology = planner.cell_topology(key)
        for attribute in topology.attributes:
            _lower_chain(graph, topology.chain(attribute), key, gathers_by_query)

    sink_by_query: Dict[int, int] = {}
    for query in planner.queries:
        union_op = planner.union_operator(query.query_id)
        union_ir = union_op.lower_ir()
        union_node = graph.add(
            "union",
            union_ir["name"],
            TUPLE_SCHEMA,
            inputs=tuple(gathers_by_query.get(query.query_id, ())),
            queries=frozenset({query.query_id}),
            **_details(union_ir),
        )
        sink = graph.add(
            "sink",
            f"buffer:{query.label}",
            TUPLE_SCHEMA,
            inputs=(union_node.node_id,),
            queries=frozenset({query.query_id}),
            label_query=query.label,
            paused=planner.is_paused(query.query_id),
        )
        sink_by_query[query.query_id] = sink.node_id

    _lower_views(graph, views, sink_by_query)
    return graph


def _lower_views(graph: PlanGraph, views: Iterable, sink_by_query: Dict[int, int]) -> None:
    """Views become sort + fold sinks; one sort per (query, slide, group_by).

    The shared sort node is the lowering of the executor's per-query
    shared-lexsort cache: every view with the same pane/group signature on
    one query folds from the same sorted order.
    """
    sort_nodes: Dict[Tuple[int, float, str], int] = {}
    for view in views:
        if not view.is_active:
            continue
        sink_id = sink_by_query.get(view.query_id)
        if sink_id is None:
            continue
        spec = view.spec
        signature = (view.query_id, float(spec.slide_duration), spec.group_by)
        sort_id = sort_nodes.get(signature)
        if sort_id is None:
            sort_node = graph.add(
                "view-sort",
                f"sort:q{view.query_id}/slide={spec.slide_duration:g}/{spec.group_by}",
                SORT_SCHEMA,
                inputs=(sink_id,),
                queries=frozenset({view.query_id}),
                slide=float(spec.slide_duration),
                group_by=spec.group_by,
            )
            sort_id = sort_node.node_id
            sort_nodes[signature] = sort_id
        graph.add(
            "view-sink",
            f"view:{view.name}",
            TUPLE_SCHEMA,
            inputs=(sort_id,),
            queries=frozenset({view.query_id}),
            aggregate=spec.aggregate.upper(),
            window=float(spec.window),
            group_by=spec.group_by,
        )
