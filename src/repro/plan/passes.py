"""Optimizer passes over the plan graph.

The pipeline annotates the lowered graph with the three sharing/fusion
facts the executor exploits:

* :func:`fuse_keep_masks` — each chain's mask cascade (flatten Eq. (3),
  thin Bernoulli levels, partition containment) becomes one fused kernel:
  the executor composes them as row indices in a single pass with one
  gather per delivered stream.
* :func:`share_common_subplans` — CSE.  Structural sharing (one source /
  estimate / flatten / thin serving every query on the chain) is priced
  with the seed-era :class:`~repro.core.optimizer.TopologyCostModel`, and
  taps whose containment predicates are identical are marked to share one
  mask evaluation.
* :func:`share_view_sorts` — views with the same ``(slide, group_by)``
  signature on one query are marked to fold from one shared lexsort.

Passes only annotate — the graph's nodes and edges are the lowering's;
execution reads the same chain structure directly.  That keeps the
annotations honest: they describe what the executor does, not what a
separate rewriter hopes it does.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from ..core.merge import merge_depth, operator_count
from ..core.optimizer import TopologyCostModel
from .ir import FusedKernel, PlanGraph


def fuse_keep_masks(graph: PlanGraph) -> None:
    """Group each chain's mask nodes into one fused kernel."""
    by_chain: Dict[str, List[int]] = defaultdict(list)
    for node in graph.nodes:
        if node.kind == "mask":
            chain = node.details.get("chain")
            if chain is not None:
                by_chain[str(chain)].append(node.node_id)
    for chain, node_ids in by_chain.items():
        kernel = FusedKernel(
            name=f"fused-mask:{chain}",
            node_ids=tuple(node_ids),
            description=(
                f"{len(node_ids)} keep-masks composed as row indices; "
                "one gather per delivered stream"
            ),
        )
        graph.kernels.append(kernel)
        for node_id in node_ids:
            graph.node(node_id).details["kernel"] = kernel.name
    if by_chain:
        graph.notes.append(
            f"keep-mask fusion: {len(by_chain)} chains -> "
            f"{len(by_chain)} fused kernels"
        )


def share_common_subplans(
    graph: PlanGraph,
    *,
    cost_model: Optional[TopologyCostModel] = None,
    batch_duration: float = 1.0,
) -> None:
    """CSE: price structural sharing and mark identical tap predicates.

    A node with ``k`` riding queries does its work once instead of ``k``
    times; the avoided re-evaluations are priced per expected tuple with
    the cost model's ``cost_per_operator_tuple`` (the seed-era
    :func:`~repro.core.optimizer.estimate_query_cost` unit), so EXPLAIN can
    show what the sharing is worth.  Partition masks with equal
    containment predicates on the same level are annotated
    ``shares_mask_with`` — the executor evaluates that containment once
    per level and lets each operator account its own traffic.
    """
    cost_model = cost_model or TopologyCostModel()
    saved = 0.0
    shared = 0
    for node in graph.nodes:
        if node.kind not in ("source", "estimate", "mask") or not node.shared:
            continue
        shared += 1
        expected = node.details.get("target_rate")
        tuples = float(expected) * batch_duration if expected is not None else 1.0
        saved += (len(node.queries) - 1) * tuples * cost_model.cost_per_operator_tuple

    predicate_groups: Dict[Tuple[str, int, tuple], List[int]] = defaultdict(list)
    for node in graph.nodes:
        if node.kind != "mask" or node.details.get("symbol") != "P":
            continue
        predicate = node.details.get("predicate")
        if predicate is None:
            continue
        key = (
            str(node.details.get("chain")),
            int(node.details.get("level", -1)),
            tuple(predicate),
        )
        predicate_groups[key].append(node.node_id)
    deduped = 0
    for node_ids in predicate_groups.values():
        if len(node_ids) < 2:
            continue
        first = node_ids[0]
        for node_id in node_ids[1:]:
            graph.node(node_id).details["shares_mask_with"] = first
            deduped += 1
    graph.shared_cost_saved = saved
    graph.notes.append(
        f"CSE: {shared} nodes shared across queries "
        f"(~{saved:.3f} cost units/batch saved), "
        f"{deduped} duplicate containment predicates share one evaluation"
    )


def share_view_sorts(graph: PlanGraph) -> None:
    """Record how many view folds ride each shared lexsort."""
    shared_sorts = 0
    for node in graph.nodes_of_kind("view-sort"):
        folds = [
            sink
            for sink in graph.nodes_of_kind("view-sink")
            if node.node_id in sink.inputs
        ]
        node.details["folds"] = len(folds)
        if len(folds) > 1:
            shared_sorts += 1
    graph.notes.append(
        f"view sorts: {len(graph.nodes_of_kind('view-sort'))} lexsorts feed "
        f"{len(graph.nodes_of_kind('view-sink'))} view folds "
        f"({shared_sorts} shared)"
    )


def annotate_merge_structure(graph: PlanGraph, *, tree_fan_in: int = 2) -> None:
    """Describe each query's merge stage with the seed-era tree analysis.

    The flat star merge (one U per query, Fig. 2c) is what executes; the
    :mod:`repro.core.merge` depth/operator counts show what a bounded
    fan-in tree over the same per-cell gathers would look like, so EXPLAIN
    can compare the variants for wide queries.
    """
    for node in graph.nodes_of_kind("union"):
        leaves = len(node.inputs)
        node.details["fan_in"] = leaves
        if leaves >= 1:
            node.details["tree_depth"] = merge_depth(leaves, tree_fan_in)
            node.details["tree_operators"] = operator_count(leaves, tree_fan_in)


def optimize(
    graph: PlanGraph,
    *,
    cost_model: Optional[TopologyCostModel] = None,
    batch_duration: float = 1.0,
) -> PlanGraph:
    """Run the full pass pipeline in order and return the graph."""
    fuse_keep_masks(graph)
    share_common_subplans(
        graph, cost_model=cost_model, batch_duration=batch_duration
    )
    share_view_sorts(graph)
    annotate_merge_structure(graph)
    return graph
