"""Numpy executor for compiled per-cell chain programs.

A :class:`ChainProgram` is the executable twin of one
:class:`~repro.core.topology.AttributeChain`: the same operators, the same
RNG streams, the same counters and reports — but the flatten/thin/partition
decisions compose as *row indices* instead of materialised column copies,
and each delivered stream is gathered exactly once.

Byte-identity with the interpreted path rests on three facts:

* chained boolean selects and a composed fancy-index gather pick the same
  rows with the same values (``col[mask1][mask2] == col[idx1][keep2]``);
* every RNG draw keeps its size and order: flatten draws ``random(n)``
  over the full batch, each thin level draws ``random(m)`` over the
  current survivor count (the interpreted path's materialised batch has
  exactly ``m`` rows), partitions draw nothing;
* containment masks commute with gathering
  (``region.contains_many(x[idx]) == region.contains_many(x)[idx]``), so
  evaluating a tap's predicate on the survivor coordinates equals the
  interpreted evaluation on the materialised level batch — and two taps
  with identical predicates can share one evaluation (the CSE pass) while
  each partition operator still records its own traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import PlanningError
from ..streams import TupleBatch


@dataclass
class TapStep:
    """One query tap of a compiled level."""

    query_id: int
    partition: Optional[object]  # PartitionOperator or None (full overlap)
    #: hashable containment-predicate identity; equal signatures on the
    #: same level share one mask evaluation
    signature: Optional[tuple]


@dataclass
class LevelStep:
    """One thin stage of a compiled chain and the taps reading it."""

    thin: object  # ThinOperator
    taps: List[TapStep]


class ChainProgram:
    """Fused execution of one (cell, attribute) chain for one batch."""

    def __init__(self, chain) -> None:
        if chain.flatten is None:  # pragma: no cover - flatten raises first
            raise PlanningError("cannot compile an unbuilt chain")
        self._chain = chain
        self._attribute = chain.attribute
        self._router = chain.router
        self._flatten = chain.flatten
        if getattr(self._flatten, "_emit_discarded", False):
            raise PlanningError(
                "chains recording discarded tuples stay on the interpreted path"
            )
        self._levels: List[LevelStep] = []
        for level in chain.levels:
            taps = []
            for tap in level.taps:
                signature = None
                if tap.partition is not None:
                    signature = tap.partition.mask_signature()
                taps.append(
                    TapStep(
                        query_id=tap.query_id,
                        partition=tap.partition,
                        signature=signature,
                    )
                )
            self._levels.append(LevelStep(thin=level.thin, taps=taps))

    # ------------------------------------------------------------------
    @property
    def chain(self):
        """The chain this program was compiled from (identity-checked by
        the plan cache to detect rebuilds)."""
        return self._chain

    @property
    def attribute(self) -> str:
        """The attribute the program serves."""
        return self._attribute

    @property
    def levels(self) -> List[LevelStep]:
        """The compiled thin levels."""
        return list(self._levels)

    # ------------------------------------------------------------------
    def run(
        self,
        batch: Optional[TupleBatch],
        deliver_batch,
        *,
        router_tuples_in: Optional[int] = None,
    ) -> None:
        """Run one batch window through the fused kernels.

        Mirrors :meth:`AttributeChain.process_batch` exactly: router
        accounting first, flatten (report + RNG draw) even for empty
        batches, then the thin cascade and the per-tap deliveries in
        declaration order.
        """
        if batch is None:
            batch = TupleBatch.empty(self._attribute)
        n = len(batch)
        if self._router is not None:
            self._router.account_batch(
                n if router_tuples_in is None else router_tuples_in, n
            )
        keep = self._flatten.process_batch_mask(batch)
        indices = np.flatnonzero(keep)
        xs = batch.x
        ys = batch.y
        for level in self._levels:
            indices = level.thin.thin_indices(indices)
            survivors = int(indices.shape[0])
            level_x: Optional[np.ndarray] = None
            level_y: Optional[np.ndarray] = None
            masks: Dict[tuple, np.ndarray] = {}
            for tap in level.taps:
                if tap.partition is None:
                    tap_indices = indices
                else:
                    if survivors == 0:
                        # Interpreted partitions early-return on empty
                        # batches without touching counters.
                        continue
                    if level_x is None:
                        level_x = xs[indices]
                        level_y = ys[indices]
                    mask = masks.get(tap.signature)
                    if mask is None:
                        mask = tap.partition.primary_mask(level_x, level_y)
                        masks[tap.signature] = mask
                    matched = int(np.count_nonzero(mask))
                    tap.partition.account_mask(survivors, matched)
                    if matched == 0:
                        continue
                    tap_indices = indices[mask]
                if tap_indices.shape[0]:
                    deliver_batch(tap.query_id, batch.select(tap_indices))


def compile_chain_program(chain) -> ChainProgram:
    """Compile one attribute chain into its fused program."""
    return ChainProgram(chain)
