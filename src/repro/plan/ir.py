"""Plan intermediate representation: one dataflow graph per engine batch.

ROADMAP open item 1 asks for the whole per-batch computation — fabricator
bucketing, per-cell PMAT chains, per-query merge, view folds — as one
explicit dataflow graph instead of a cascade of imperative
``process_batch`` calls.  This module is that graph's vocabulary:

* :class:`PlanNode` — a pure-data node (kind, label, column schema, input
  edges, the set of queries sharing it, and kernel details contributed by
  the operators' ``lower_ir`` methods).
* :class:`PlanGraph` — the node container plus the sharing/fusion
  annotations the optimizer passes attach.

The graph is *descriptive*: it is what ``EXPLAIN`` renders and what the IR
golden tests pin.  Execution uses the parallel
:class:`~repro.plan.executor.ChainProgram` objects, which hold live
operator references; compiler and executor lower from the same chain
structure, so the two cannot drift apart structurally.

Node kinds
----------
``source``
    One (cell, attribute) column batch produced by the fabricator's map
    phase.
``estimate``
    The flatten operator's intensity estimation over the source's event
    coordinates (MLE, online SGD, or a fixed model).
``mask``
    A boolean keep-decision: flatten Eq. (3) retention, thin Bernoulli
    retention, or partition containment.  Mask nodes compose; the
    keep-mask fusion pass groups each chain's masks into one fused kernel
    that the executor runs as composed row indices.
``gather``
    The single per-tap column gather materialising a delivered batch.
``union``
    A query's merge stage (Fig. 2c) collecting its per-cell gathers.
``sink``
    The query's result buffer ingest.
``view-sort``
    The shared pane/group lexsort feeding every view with the same
    ``(slide, group_by)`` signature on one query.
``view-sink``
    One continuous view's fold into its open panes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

#: Column schema of tuple batches flowing between source, gather and sink.
TUPLE_SCHEMA: Tuple[str, ...] = ("t", "x", "y", "value", "sensor_id", "tuple_id")
#: Schema of the event-coordinate projection fed to intensity estimation.
EVENT_SCHEMA: Tuple[str, ...] = ("t", "x", "y")
#: Schema of a boolean keep-mask (aligned with the source rows).
MASK_SCHEMA: Tuple[str, ...] = ("keep",)
#: Schema of the composed surviving-row index vector.
INDEX_SCHEMA: Tuple[str, ...] = ("row",)
#: Schema of a view's pane/group sort (order plus sorted pane/group codes).
SORT_SCHEMA: Tuple[str, ...] = ("order", "pane", "group")


@dataclass
class PlanNode:
    """One node of the per-batch dataflow graph."""

    node_id: int
    kind: str
    label: str
    schema: Tuple[str, ...]
    inputs: Tuple[int, ...] = ()
    queries: FrozenSet[int] = frozenset()
    details: Dict[str, object] = field(default_factory=dict)

    @property
    def shared(self) -> bool:
        """Whether more than one query rides on this node."""
        return len(self.queries) > 1

    def to_dict(self) -> Dict[str, object]:
        """Stable dictionary form for golden tests and tooling."""
        return {
            "id": self.node_id,
            "kind": self.kind,
            "label": self.label,
            "schema": list(self.schema),
            "inputs": list(self.inputs),
            "queries": sorted(self.queries),
            "details": dict(self.details),
        }


@dataclass
class FusedKernel:
    """A group of mask nodes the executor runs as one composed pass."""

    name: str
    node_ids: Tuple[int, ...]
    description: str = ""


class PlanGraph:
    """The compiled dataflow graph of one engine batch.

    Nodes are appended in deterministic lowering order (cells in planner
    order, chains in cell order, levels by descending rate, then unions,
    sinks and views), so node ids are reproducible for a given topology
    and the golden tests can pin them.
    """

    def __init__(self) -> None:
        self._nodes: List[PlanNode] = []
        self.kernels: List[FusedKernel] = []
        #: optimizer annotations: human-readable notes per pass
        self.notes: List[str] = []
        #: CSE pricing: estimated per-batch operator-tuple cost saved by
        #: sharing, in the TopologyCostModel's cost_per_operator_tuple units
        self.shared_cost_saved: float = 0.0

    # ------------------------------------------------------------------
    def add(
        self,
        kind: str,
        label: str,
        schema: Tuple[str, ...],
        *,
        inputs: Tuple[int, ...] = (),
        queries: FrozenSet[int] = frozenset(),
        **details: object,
    ) -> PlanNode:
        """Append a node and return it."""
        node = PlanNode(
            node_id=len(self._nodes),
            kind=kind,
            label=label,
            schema=schema,
            inputs=tuple(inputs),
            queries=frozenset(queries),
            details=details,
        )
        self._nodes.append(node)
        return node

    @property
    def nodes(self) -> List[PlanNode]:
        """All nodes in id order."""
        return list(self._nodes)

    def node(self, node_id: int) -> PlanNode:
        """Node lookup by id."""
        return self._nodes[node_id]

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    def nodes_of_kind(self, kind: str) -> List[PlanNode]:
        """All nodes of one kind, in id order."""
        return [node for node in self._nodes if node.kind == kind]

    def nodes_for_query(self, query_id: int) -> List[PlanNode]:
        """Every node the query rides on, in id order."""
        return [node for node in self._nodes if query_id in node.queries]

    def shared_nodes(self) -> List[PlanNode]:
        """Nodes serving more than one query (the CSE payoff)."""
        return [node for node in self._nodes if node.shared]

    def to_dict(self) -> Dict[str, object]:
        """Stable dictionary form of the whole graph."""
        return {
            "nodes": [node.to_dict() for node in self._nodes],
            "kernels": [
                {
                    "name": kernel.name,
                    "nodes": list(kernel.node_ids),
                    "description": kernel.description,
                }
                for kernel in self.kernels
            ],
            "notes": list(self.notes),
        }
