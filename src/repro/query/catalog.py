"""Attribute catalog.

The paper assumes "a fixed set of attributes of interest A<1>, ..., A<k>",
each either human-sensed (hard to sense with a device, e.g. *is it raining*)
or sensor-sensed (e.g. ambient temperature).  The catalog records that
metadata and validates parsed queries against it before they reach the
engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, List, Optional

from ..errors import QueryError


class AttributeKind(Enum):
    """How an attribute is observed."""

    HUMAN_SENSED = "human"
    SENSOR_SENSED = "sensor"


@dataclass(frozen=True)
class AttributeInfo:
    """Catalog entry for one attribute."""

    name: str
    kind: AttributeKind
    value_type: type
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("an attribute needs a non-empty name")


class AttributeCatalog:
    """The set of attributes a deployment can acquire."""

    def __init__(self) -> None:
        self._attributes: Dict[str, AttributeInfo] = {}

    # ------------------------------------------------------------------
    def register(self, info: AttributeInfo) -> None:
        """Add an attribute to the catalog."""
        if info.name in self._attributes:
            raise QueryError(f"attribute '{info.name}' is already registered")
        self._attributes[info.name] = info

    def register_human_sensed(self, name: str, value_type: type = bool, description: str = "") -> None:
        """Convenience registration of a human-sensed attribute."""
        self.register(AttributeInfo(name, AttributeKind.HUMAN_SENSED, value_type, description))

    def register_sensor_sensed(self, name: str, value_type: type = float, description: str = "") -> None:
        """Convenience registration of a sensor-sensed attribute."""
        self.register(AttributeInfo(name, AttributeKind.SENSOR_SENSED, value_type, description))

    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._attributes

    def __len__(self) -> int:
        return len(self._attributes)

    def get(self, name: str) -> AttributeInfo:
        """Look up one attribute; raises :class:`QueryError` when unknown."""
        try:
            return self._attributes[name]
        except KeyError:
            raise QueryError(
                f"unknown attribute '{name}'; known: {sorted(self._attributes)}"
            ) from None

    def names(self) -> List[str]:
        """All registered attribute names."""
        return sorted(self._attributes)

    def human_sensed(self) -> List[str]:
        """Names of human-sensed attributes."""
        return sorted(
            name
            for name, info in self._attributes.items()
            if info.kind is AttributeKind.HUMAN_SENSED
        )

    def sensor_sensed(self) -> List[str]:
        """Names of sensor-sensed attributes."""
        return sorted(
            name
            for name, info in self._attributes.items()
            if info.kind is AttributeKind.SENSOR_SENSED
        )

    def validate_attribute(self, name: str) -> AttributeInfo:
        """Validate that a query's attribute exists; returns its info."""
        return self.get(name)

    # ------------------------------------------------------------------
    @classmethod
    def default(cls) -> "AttributeCatalog":
        """The catalog of the paper's running examples (rain and temp)."""
        catalog = cls()
        catalog.register_human_sensed(
            "rain", bool, "Whether it is currently raining around the mobile sensor."
        )
        catalog.register_sensor_sensed(
            "temp", float, "Ambient temperature around the mobile sensor (deg C)."
        )
        return catalog
