"""Declarative acquisitional query language.

The paper argues for "declarative specification of data acquisition
queries".  This package provides a small textual language for the simplest
acquisitional query — attribute, region, rate — in the spirit of the paper's
example Q1::

    ACQUIRE rain FROM RECT(0, 0, 2, 2) AT RATE 10 PER KM2 PER MIN

plus an attribute catalog that records which attributes exist and whether
they are human- or sensor-sensed.
"""

from .ast import ParsedQuery, RegionLiteral
from .lexer import Token, TokenType, tokenize
from .parser import parse_query, parse_queries
from .catalog import AttributeCatalog, AttributeInfo, AttributeKind

__all__ = [
    "ParsedQuery",
    "RegionLiteral",
    "Token",
    "TokenType",
    "tokenize",
    "parse_query",
    "parse_queries",
    "AttributeCatalog",
    "AttributeInfo",
    "AttributeKind",
]
