"""Declarative acquisitional query language.

The paper argues for "declarative specification of data acquisition
queries".  This package provides a small textual language for the simplest
acquisitional query — attribute, region, rate — in the spirit of the paper's
example Q1::

    ACQUIRE rain FROM RECT(0, 0, 2, 2) AT RATE 10 PER KM2 PER MIN

plus the session DDL — ``ALTER <name> SET RATE 5 PER KM2 PER MIN``,
``ALTER <name> SET REGION RECT(...)``, ``STOP <name>`` and ``SHOW
QUERIES`` — and the continuous-view DDL — ``CREATE VIEW <name> ON <query>
AS AGG(value) [GROUP BY CELL|ATTRIBUTE] WINDOW <dur> [SLIDE <dur>]``,
``DROP VIEW <name>``, ``SHOW VIEWS`` — plus ``EXPLAIN <query|view>`` for
the compiled plan (:mod:`repro.plan`), executed against a live engine by
:meth:`repro.core.engine.CraqrEngine.execute`, and an attribute catalog
that records which attributes exist and whether they are human- or
sensor-sensed.
"""

from .ast import (
    AlterStatement,
    CreateViewStatement,
    DropViewStatement,
    ExplainStatement,
    ParsedQuery,
    RegionLiteral,
    ShowQueriesStatement,
    ShowViewsStatement,
    Statement,
    StopStatement,
)
from .lexer import Token, TokenType, tokenize
from .parser import parse_query, parse_queries, parse_statements
from .catalog import AttributeCatalog, AttributeInfo, AttributeKind
from .render import frames_table, health_table, sessions_table, views_table

__all__ = [
    "AlterStatement",
    "CreateViewStatement",
    "DropViewStatement",
    "ExplainStatement",
    "ShowViewsStatement",
    "ParsedQuery",
    "RegionLiteral",
    "ShowQueriesStatement",
    "Statement",
    "StopStatement",
    "Token",
    "TokenType",
    "tokenize",
    "parse_query",
    "parse_queries",
    "parse_statements",
    "AttributeCatalog",
    "AttributeInfo",
    "AttributeKind",
    "frames_table",
    "health_table",
    "sessions_table",
    "views_table",
]
