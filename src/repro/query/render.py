"""Shared table renders for the session surface.

The repl and the serving layer's text mode both show ``SHOW QUERIES`` /
``SHOW VIEWS`` / per-query health / view frames as fixed-width
:class:`~repro.metrics.ResultTable` renders.  One module owns those
renders so the two surfaces cannot drift — the golden outputs are pinned
in ``tests/querylang/test_render.py``.

Only :mod:`repro.metrics` is imported here; the engine/handle arguments
are duck-typed (annotated under ``TYPE_CHECKING``) so this module stays
importable from anywhere in the package without cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from ..metrics import ResultTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import CraqrEngine, QueryHandle, QuerySessionInfo
    from ..views import ViewFrame, ViewHandle, ViewSessionInfo

__all__ = ["sessions_table", "views_table", "health_table", "frames_table"]


def sessions_table(sessions: "List[QuerySessionInfo]") -> ResultTable:
    """``SHOW QUERIES`` as one row per registered query session."""
    table = ResultTable(
        "query sessions",
        [
            "query",
            "attribute",
            "area",
            "rate",
            "achieved",
            "tuples",
            "batches",
            "views",
            "health",
            "state",
        ],
    )
    for info in sessions:
        degraded = len(info.degraded_pairs)
        table.add_row(
            info.label,
            info.attribute,
            round(info.region_area, 2),
            round(info.requested_rate, 2),
            "-" if info.achieved_rate is None else round(info.achieved_rate, 2),
            info.total_tuples,
            info.batches_completed,
            info.views,
            "ok" if degraded == 0 else f"{degraded} degraded",
            "paused" if info.paused else "live",
        )
    return table


def health_table(engine: "CraqrEngine", handle: "QueryHandle") -> ResultTable:
    """Per-cell acquisition health of one query, from the last batch report."""
    attribute = handle.query.attribute
    report = engine.reports[-1].handler if engine.reports else None
    tracker = engine.degradation
    table = ResultTable(
        f"health of {handle.query.label} ({attribute}), last batch",
        ["cell", "requests", "responses", "timeouts", "drops", "retries", "rate ewma", "state"],
    )
    for cell in engine.planner.cells_for_query(handle.query_id):
        pair = (attribute, cell)
        ewma = tracker.response_rate_for(attribute, cell) if tracker is not None else None
        degraded = tracker is not None and tracker.is_degraded(attribute, cell)
        table.add_row(
            f"({cell[0]}, {cell[1]})",
            report.per_cell_requests.get(pair, 0) if report is not None else 0,
            report.per_cell_responses.get(pair, 0) if report is not None else 0,
            report.per_cell_timeouts.get(pair, 0) if report is not None else 0,
            report.per_cell_drops.get(pair, 0) if report is not None else 0,
            report.per_cell_retries.get(pair, 0) if report is not None else 0,
            "-" if ewma is None else round(ewma, 3),
            "degraded" if degraded else "ok",
        )
    return table


def views_table(views: "List[ViewSessionInfo]") -> ResultTable:
    """``SHOW VIEWS`` as one row per registered continuous view."""
    table = ResultTable(
        "continuous views",
        ["view", "on", "aggregate", "group by", "window", "slide", "frames", "tuples", "last close", "state"],
    )
    for info in views:
        table.add_row(
            info.name,
            info.query_label,
            info.aggregate,
            info.group_by,
            round(info.window, 4),
            round(info.slide, 4),
            info.frames_emitted,
            info.tuples_total,
            "-" if info.last_window_end is None else round(info.last_window_end, 4),
            "live" if info.active else f"failed: {info.error}",
        )
    return table


def frames_table(view: "ViewHandle", frames: "List[ViewFrame]") -> ResultTable:
    """The last frames of a view rendered one row per (frame, group)."""
    table = ResultTable(
        f"view {view.name}: {view.spec.describe()}",
        ["frame", "window", "group", view.spec.aggregate.upper(), "tuples"],
    )
    for frame in frames:
        window = f"[{frame.window_start:g}, {frame.window_end:g})"
        if frame.is_empty:
            table.add_row(frame.frame_index, window, "-", "-", 0)
            continue
        for i in range(frame.groups):
            key = frame.keys[i]
            label = f"({key[0]}, {key[1]})" if isinstance(key, tuple) else str(key)
            table.add_row(
                frame.frame_index,
                window,
                label,
                round(float(frame.values[i]), 4),
                int(frame.counts[i]),
            )
    return table
