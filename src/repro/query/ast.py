"""Abstract syntax of the declarative query language.

Two families of statement:

* :class:`ParsedQuery` — the original ``ACQUIRE ...`` registration
  statement (materialises an
  :class:`~repro.core.query.AcquisitionalQuery`).
* Session DDL — :class:`AlterStatement` (``ALTER <name> SET RATE ... /
  SET REGION ...``), :class:`StopStatement` (``STOP <name>``) and
  :class:`ShowQueriesStatement` (``SHOW QUERIES``), executed against a live
  engine's session API by :meth:`repro.core.engine.CraqrEngine.execute`.
* View DDL — :class:`CreateViewStatement` (``CREATE VIEW <name> ON <query>
  AS AGG(value) [GROUP BY CELL|ATTRIBUTE] WINDOW <dur> [SLIDE <dur>]``),
  :class:`DropViewStatement` (``DROP VIEW <name>``) and
  :class:`ShowViewsStatement` (``SHOW VIEWS``), the serving surface of the
  continuous-view subsystem (:mod:`repro.views`).
* Plan introspection — :class:`ExplainStatement` (``EXPLAIN
  <query|view>``), rendering the compiled dataflow graph of
  :mod:`repro.plan`.

``Statement`` is the union of all of them, as produced by
:func:`repro.query.parse_statements`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..core.query import AcquisitionalQuery, RateSpec
from ..errors import QueryParseError
from ..geometry import Rectangle, RectRegion


@dataclass(frozen=True)
class RegionLiteral:
    """A ``RECT(x_min, y_min, x_max, y_max)`` literal."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def to_region(self) -> RectRegion:
        """Convert to a geometry region (validates the extent)."""
        try:
            return RectRegion(Rectangle(self.x_min, self.y_min, self.x_max, self.y_max))
        except Exception as exc:  # GeometryError, surfaced as a parse-level error
            raise QueryParseError(f"invalid RECT literal: {exc}") from exc


@dataclass(frozen=True)
class ParsedQuery:
    """The AST of one ``ACQUIRE ...`` statement."""

    attribute: str
    region: RegionLiteral
    rate_value: float
    area_unit: str = "unit2"
    time_unit: str = "unit"
    name: Optional[str] = None

    def to_query(self) -> AcquisitionalQuery:
        """Materialise the AST as an :class:`AcquisitionalQuery`."""
        rate = RateSpec(self.rate_value, area_unit=self.area_unit, time_unit=self.time_unit)
        return AcquisitionalQuery(
            self.attribute,
            self.region.to_region(),
            rate,
            name=self.name,
        )


@dataclass(frozen=True)
class AlterStatement:
    """The AST of one ``ALTER <name> SET ...`` statement.

    Exactly one of the two mutations is present: ``rate_value`` (with its
    units) for ``SET RATE``, or ``region`` for ``SET REGION``.
    """

    name: str
    rate_value: Optional[float] = None
    area_unit: str = "unit2"
    time_unit: str = "unit"
    region: Optional[RegionLiteral] = None

    def rate_spec(self) -> Optional[RateSpec]:
        """The new rate as a :class:`RateSpec`, or ``None`` for ``SET REGION``."""
        if self.rate_value is None:
            return None
        return RateSpec(self.rate_value, area_unit=self.area_unit, time_unit=self.time_unit)


@dataclass(frozen=True)
class StopStatement:
    """The AST of one ``STOP <name>`` statement."""

    name: str


@dataclass(frozen=True)
class ShowQueriesStatement:
    """The AST of one ``SHOW QUERIES`` statement."""


@dataclass(frozen=True)
class CreateViewStatement:
    """The AST of one ``CREATE VIEW`` statement.

    ``CREATE VIEW <name> ON <query> AS AGG(value | *) [GROUP BY
    CELL|ATTRIBUTE] WINDOW <dur> [SLIDE <dur>]`` — the view is attached to
    the named live query session and maintained incrementally (see
    :mod:`repro.views`).  ``slide=None`` means a tumbling window; the
    grouping defaults to one whole-region row per frame.
    """

    name: str
    query_name: str
    aggregate: str
    window: float
    slide: Optional[float] = None
    group_by: str = "region"

    def to_spec(self):
        """Materialise the AST as a :class:`~repro.views.ViewSpec`.

        Spec-level validation (aggregate registry lookup, window/slide
        arithmetic) surfaces as :class:`~repro.errors.ViewError` from the
        spec's own constructor.
        """
        # Imported lazily: repro.views is independent of the query
        # language, and keeping it that way avoids import-order coupling.
        from ..views import ViewSpec

        return ViewSpec(
            aggregate=self.aggregate,
            window=self.window,
            slide=self.slide,
            group_by=self.group_by,
            name=self.name,
        )


@dataclass(frozen=True)
class DropViewStatement:
    """The AST of one ``DROP VIEW <name>`` statement."""

    name: str


@dataclass(frozen=True)
class ShowViewsStatement:
    """The AST of one ``SHOW VIEWS`` statement."""


@dataclass(frozen=True)
class ExplainStatement:
    """The AST of one ``EXPLAIN <query|view>`` statement.

    ``name`` addresses either a registered query's label or a maintained
    view's name; the engine resolves views first (view names are unique,
    query labels need not be).  Execution returns the rendered compiled
    plan as a string (see :mod:`repro.plan`).
    """

    name: str


#: Any statement :func:`repro.query.parse_statements` can produce.
Statement = Union[
    ParsedQuery,
    AlterStatement,
    StopStatement,
    ShowQueriesStatement,
    CreateViewStatement,
    DropViewStatement,
    ShowViewsStatement,
    ExplainStatement,
]
