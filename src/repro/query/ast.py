"""Abstract syntax of the declarative query language."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.query import AcquisitionalQuery, RateSpec
from ..errors import QueryParseError
from ..geometry import Rectangle, RectRegion


@dataclass(frozen=True)
class RegionLiteral:
    """A ``RECT(x_min, y_min, x_max, y_max)`` literal."""

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def to_region(self) -> RectRegion:
        """Convert to a geometry region (validates the extent)."""
        try:
            return RectRegion(Rectangle(self.x_min, self.y_min, self.x_max, self.y_max))
        except Exception as exc:  # GeometryError, surfaced as a parse-level error
            raise QueryParseError(f"invalid RECT literal: {exc}") from exc


@dataclass(frozen=True)
class ParsedQuery:
    """The AST of one ``ACQUIRE ...`` statement."""

    attribute: str
    region: RegionLiteral
    rate_value: float
    area_unit: str = "unit2"
    time_unit: str = "unit"
    name: Optional[str] = None

    def to_query(self) -> AcquisitionalQuery:
        """Materialise the AST as an :class:`AcquisitionalQuery`."""
        rate = RateSpec(self.rate_value, area_unit=self.area_unit, time_unit=self.time_unit)
        return AcquisitionalQuery(
            self.attribute,
            self.region.to_region(),
            rate,
            name=self.name,
        )
