"""Recursive-descent parser for the declarative query language.

Grammar (keywords are case-insensitive)::

    statement  := acquire | alter | stop | show | create_view | drop_view
                | explain
    acquire    := ACQUIRE attribute FROM region [AT] RATE number
                  [PER area_unit [PER time_unit]] [AS identifier]
    alter      := ALTER name SET ( RATE number [PER area_unit [PER time_unit]]
                                 | REGION region )
    stop       := STOP name
    show       := SHOW ( QUERIES | VIEWS )
    create_view:= CREATE VIEW name ON name AS aggregate '(' [ value | '*' ] ')'
                  [GROUP BY ( CELL | ATTRIBUTE )] WINDOW number [SLIDE number]
    drop_view  := DROP VIEW name
    explain    := EXPLAIN name
    region     := RECT '(' number ',' number ',' number ',' number ')'
    attribute  := identifier
    name       := identifier
    aggregate  := identifier        (COUNT, SUM, AVG, MIN, MAX, P50..P99)
    area_unit  := identifier        (e.g. KM2, M2, UNIT2)
    time_unit  := identifier        (e.g. MIN, SEC, HOUR)

Window and slide durations are in sim-time units (the engine validates
their alignment to its batch duration when the view is created).

Multiple statements may be separated by semicolons.
:func:`parse_statements` accepts the full grammar; :func:`parse_queries` /
:func:`parse_query` keep their original ``ACQUIRE``-only contract for
callers that register workloads up front.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import QueryParseError
from .ast import (
    AlterStatement,
    CreateViewStatement,
    DropViewStatement,
    ExplainStatement,
    ParsedQuery,
    RegionLiteral,
    ShowQueriesStatement,
    ShowViewsStatement,
    Statement,
    StopStatement,
)
from .lexer import Token, TokenType, tokenize

#: Accepted spellings of area units, mapped to RateSpec unit names.
_AREA_UNIT_ALIASES = {
    "KM2": "km2",
    "M2": "m2",
    "UNIT2": "unit2",
    "HECTARE": "hectare",
}

#: Accepted spellings of time units, mapped to RateSpec unit names.
_TIME_UNIT_ALIASES = {
    "MIN": "min",
    "MINUTE": "min",
    "SEC": "sec",
    "SECOND": "sec",
    "HOUR": "hour",
    "DAY": "day",
    "UNIT": "unit",
}


class _TokenCursor:
    """A small cursor over the token list."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    def peek(self) -> Token:
        return self._tokens[self._index]

    def peek_ahead(self, offset: int = 1) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self._tokens[self._index]
        if token.type is not TokenType.END:
            self._index += 1
        return token

    def expect(self, token_type: TokenType, description: str) -> Token:
        token = self.peek()
        if token.type is not token_type:
            raise QueryParseError(
                f"expected {description} at position {token.position}, got {token.value!r}"
            )
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        token = self.peek()
        if not token.is_keyword(word):
            raise QueryParseError(
                f"expected keyword {word} at position {token.position}, got {token.value!r}"
            )
        return self.advance()

    def match_keyword(self, word: str) -> bool:
        if self.peek().is_keyword(word):
            self.advance()
            return True
        return False

    @property
    def at_end(self) -> bool:
        return self.peek().type is TokenType.END


def _parse_number(cursor: _TokenCursor, description: str) -> float:
    token = cursor.expect(TokenType.NUMBER, description)
    return float(token.value)


def _parse_name(cursor: _TokenCursor, description: str) -> str:
    """An attribute/query/view name: an identifier, or a keyword used as one.

    Every name position in the grammar is unambiguous (the next clause is
    introduced by a specific keyword), so language keywords — including the
    view DDL's WINDOW, CELL, GROUP, … — stay usable as names:
    ``ACQUIRE window FROM ... AS Cell`` keeps parsing.  Keyword tokens
    preserve their original spelling, so the name round-trips exactly.
    """
    token = cursor.peek()
    if token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
        raise QueryParseError(
            f"expected {description} at position {token.position}, got {token.value!r}"
        )
    cursor.advance()
    return token.value


def _parse_region(cursor: _TokenCursor) -> RegionLiteral:
    token = cursor.peek()
    if not (token.is_keyword("RECT") or token.is_keyword("REGION")):
        raise QueryParseError(
            f"expected RECT(...) region at position {token.position}, got {token.value!r}"
        )
    cursor.advance()
    cursor.expect(TokenType.LPAREN, "'('")
    x_min = _parse_number(cursor, "x_min")
    cursor.expect(TokenType.COMMA, "','")
    y_min = _parse_number(cursor, "y_min")
    cursor.expect(TokenType.COMMA, "','")
    x_max = _parse_number(cursor, "x_max")
    cursor.expect(TokenType.COMMA, "','")
    y_max = _parse_number(cursor, "y_max")
    cursor.expect(TokenType.RPAREN, "')'")
    if x_max <= x_min or y_max <= y_min:
        raise QueryParseError(
            "RECT coordinates must satisfy x_min < x_max and y_min < y_max; got "
            f"RECT({x_min}, {y_min}, {x_max}, {y_max})"
        )
    return RegionLiteral(x_min, y_min, x_max, y_max)


def _parse_unit(cursor: _TokenCursor, aliases: dict, kind: str) -> str:
    token = cursor.peek()
    if token.type not in (TokenType.IDENTIFIER, TokenType.KEYWORD):
        raise QueryParseError(
            f"expected a {kind} unit at position {token.position}, got {token.value!r}"
        )
    cursor.advance()
    name = token.value.upper()
    if name not in aliases:
        raise QueryParseError(
            f"unknown {kind} unit '{token.value}'; known: {sorted(aliases)}"
        )
    return aliases[name]


def _parse_rate_with_units(cursor: _TokenCursor):
    """``number [PER area_unit [PER time_unit]]`` after a RATE keyword."""
    rate_value = _parse_number(cursor, "a rate value")
    area_unit = "unit2"
    time_unit = "unit"
    if cursor.match_keyword("PER"):
        area_unit = _parse_unit(cursor, _AREA_UNIT_ALIASES, "area")
        if cursor.match_keyword("PER"):
            time_unit = _parse_unit(cursor, _TIME_UNIT_ALIASES, "time")
    return rate_value, area_unit, time_unit


def _parse_acquire(cursor: _TokenCursor) -> ParsedQuery:
    cursor.expect_keyword("ACQUIRE")
    attribute = _parse_name(cursor, "an attribute name")
    cursor.expect_keyword("FROM")
    region = _parse_region(cursor)
    cursor.match_keyword("AT")
    cursor.expect_keyword("RATE")
    rate_value, area_unit, time_unit = _parse_rate_with_units(cursor)
    name: Optional[str] = None
    if cursor.match_keyword("AS"):
        name = _parse_name(cursor, "a query name")
    return ParsedQuery(
        attribute=attribute,
        region=region,
        rate_value=rate_value,
        area_unit=area_unit,
        time_unit=time_unit,
        name=name,
    )


def _parse_alter(cursor: _TokenCursor) -> AlterStatement:
    cursor.expect_keyword("ALTER")
    name = _parse_name(cursor, "a query name")
    cursor.expect_keyword("SET")
    if cursor.match_keyword("RATE"):
        rate_value, area_unit, time_unit = _parse_rate_with_units(cursor)
        return AlterStatement(
            name=name,
            rate_value=rate_value,
            area_unit=area_unit,
            time_unit=time_unit,
        )
    if cursor.peek().is_keyword("REGION") or cursor.peek().is_keyword("RECT"):
        # SET REGION RECT(...) — _parse_region consumes the RECT/REGION
        # keyword itself, so an explicit REGION prefix is optional sugar.
        if cursor.peek().is_keyword("REGION"):
            after = cursor.peek_ahead()
            if after.is_keyword("RECT") or after.is_keyword("REGION"):
                cursor.advance()
        return AlterStatement(name=name, region=_parse_region(cursor))
    token = cursor.peek()
    raise QueryParseError(
        f"expected RATE or REGION after SET at position {token.position}, "
        f"got {token.value!r}"
    )


def _parse_stop(cursor: _TokenCursor) -> StopStatement:
    cursor.expect_keyword("STOP")
    return StopStatement(name=_parse_name(cursor, "a query name"))


def _parse_show(cursor: _TokenCursor):
    cursor.expect_keyword("SHOW")
    if cursor.match_keyword("VIEWS"):
        return ShowViewsStatement()
    if cursor.match_keyword("QUERIES"):
        return ShowQueriesStatement()
    token = cursor.peek()
    raise QueryParseError(
        f"expected QUERIES or VIEWS after SHOW at position {token.position}, "
        f"got {token.value!r}"
    )


def _parse_aggregate_call(cursor: _TokenCursor) -> str:
    """``<AGG> '(' [value | *] ')'`` after the AS keyword of CREATE VIEW.

    The aggregate name is validated later, against the live registry
    (:func:`repro.views.get_aggregate`), when the statement executes; the
    parser only checks the call shape.  The optional argument names the
    tuples' value column — ``value`` and ``*`` are accepted spellings of
    the only column a stream carries.
    """
    token = cursor.peek()
    if token.type is not TokenType.IDENTIFIER:
        raise QueryParseError(
            f"expected an aggregate name (COUNT, SUM, AVG, MIN, MAX, "
            f"P50...P99) at position {token.position}, got {token.value!r}"
        )
    cursor.advance()
    aggregate = token.value.upper()
    cursor.expect(TokenType.LPAREN, "'('")
    argument = cursor.peek()
    if argument.type is TokenType.STAR:
        cursor.advance()
    elif argument.type is TokenType.IDENTIFIER:
        if argument.value.lower() != "value":
            raise QueryParseError(
                f"aggregates operate on the tuple value column: expected "
                f"'value' or '*' at position {argument.position}, got "
                f"{argument.value!r}"
            )
        cursor.advance()
    cursor.expect(TokenType.RPAREN, "')'")
    return aggregate


def _parse_create_view(cursor: _TokenCursor) -> CreateViewStatement:
    cursor.expect_keyword("CREATE")
    cursor.expect_keyword("VIEW")
    name = _parse_name(cursor, "a view name")
    cursor.expect_keyword("ON")
    query_name = _parse_name(cursor, "a query name")
    cursor.expect_keyword("AS")
    aggregate = _parse_aggregate_call(cursor)
    group_by = "region"
    if cursor.match_keyword("GROUP"):
        cursor.expect_keyword("BY")
        if cursor.match_keyword("CELL"):
            group_by = "cell"
        elif cursor.match_keyword("ATTRIBUTE"):
            group_by = "attribute"
        else:
            token = cursor.peek()
            raise QueryParseError(
                f"expected CELL or ATTRIBUTE after GROUP BY at position "
                f"{token.position}, got {token.value!r}"
            )
    cursor.expect_keyword("WINDOW")
    window = _parse_number(cursor, "a window duration")
    slide: Optional[float] = None
    if cursor.match_keyword("SLIDE"):
        slide = _parse_number(cursor, "a slide duration")
    if window <= 0:
        raise QueryParseError(f"the window duration must be positive, got {window}")
    if slide is not None and slide <= 0:
        raise QueryParseError(f"the slide duration must be positive, got {slide}")
    return CreateViewStatement(
        name=name,
        query_name=query_name,
        aggregate=aggregate,
        window=window,
        slide=slide,
        group_by=group_by,
    )


def _parse_drop(cursor: _TokenCursor) -> DropViewStatement:
    cursor.expect_keyword("DROP")
    cursor.expect_keyword("VIEW")
    return DropViewStatement(name=_parse_name(cursor, "a view name"))


def _parse_explain(cursor: _TokenCursor) -> ExplainStatement:
    cursor.expect_keyword("EXPLAIN")
    return ExplainStatement(name=_parse_name(cursor, "a query or view name"))


def _parse_statement(cursor: _TokenCursor) -> Statement:
    token = cursor.peek()
    if token.is_keyword("ACQUIRE"):
        return _parse_acquire(cursor)
    if token.is_keyword("ALTER"):
        return _parse_alter(cursor)
    if token.is_keyword("STOP"):
        return _parse_stop(cursor)
    if token.is_keyword("SHOW"):
        return _parse_show(cursor)
    if token.is_keyword("CREATE"):
        return _parse_create_view(cursor)
    if token.is_keyword("DROP"):
        return _parse_drop(cursor)
    if token.is_keyword("EXPLAIN"):
        return _parse_explain(cursor)
    raise QueryParseError(
        f"expected a statement keyword (ACQUIRE, ALTER, STOP, SHOW, CREATE, "
        f"DROP or EXPLAIN) at position {token.position}, got {token.value!r}"
    )


def parse_query(text: str) -> ParsedQuery:
    """Parse a single ``ACQUIRE`` statement."""
    queries = parse_queries(text)
    if len(queries) != 1:
        raise QueryParseError(f"expected exactly one statement, found {len(queries)}")
    return queries[0]


def parse_queries(text: str) -> List[ParsedQuery]:
    """Parse one or more semicolon-separated ``ACQUIRE`` statements.

    Session DDL (``ALTER`` / ``STOP`` / ``SHOW QUERIES``) is rejected here:
    this entry point registers workloads.  Use :func:`parse_statements` for
    the full language.
    """
    statements = parse_statements(text)
    for statement in statements:
        if not isinstance(statement, ParsedQuery):
            raise QueryParseError(
                f"only ACQUIRE statements are allowed here, got a "
                f"{type(statement).__name__}; use parse_statements() for "
                f"session DDL"
            )
    return statements


def parse_statements(text: str) -> List[Statement]:
    """Parse one or more semicolon-separated statements (full grammar).

    Accepts ``ACQUIRE`` registrations, the session DDL statements
    (``ALTER <name> SET RATE ... | SET REGION ...``, ``STOP <name>``,
    ``SHOW QUERIES``) and the view DDL (``CREATE VIEW ... ON <query> AS
    AGG(value) [GROUP BY CELL|ATTRIBUTE] WINDOW <dur> [SLIDE <dur>]``,
    ``DROP VIEW <name>``, ``SHOW VIEWS``); the resulting AST nodes execute
    against a live engine via :meth:`repro.core.engine.CraqrEngine.execute`.
    """
    if not text or not text.strip():
        raise QueryParseError("the query text is empty")
    cursor = _TokenCursor(tokenize(text))
    statements: List[Statement] = []
    while not cursor.at_end:
        statements.append(_parse_statement(cursor))
        while cursor.peek().type is TokenType.SEMICOLON:
            cursor.advance()
    if not statements:
        raise QueryParseError("no statement found")
    return statements
