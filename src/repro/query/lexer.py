"""Tokenizer for the declarative acquisitional query language."""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum, auto
from typing import Iterator, List

from ..errors import QueryParseError

#: Keywords of the language (case-insensitive).
KEYWORDS = {
    "ACQUIRE",
    "FROM",
    "RECT",
    "REGION",
    "AT",
    "RATE",
    "PER",
    "AS",
    "AND",
    # Session DDL (ALTER <name> SET ..., STOP <name>, SHOW QUERIES).
    "ALTER",
    "SET",
    "STOP",
    "SHOW",
    "QUERIES",
    # Plan introspection (EXPLAIN <query|view>).
    "EXPLAIN",
    # Continuous views (CREATE VIEW ... ON <query> AS AGG(...)
    # [GROUP BY ...] WINDOW <dur> [SLIDE <dur>], DROP VIEW, SHOW VIEWS).
    "CREATE",
    "VIEW",
    "VIEWS",
    "ON",
    "GROUP",
    "BY",
    "CELL",
    "ATTRIBUTE",
    "WINDOW",
    "SLIDE",
    "DROP",
}


class TokenType(Enum):
    """Kinds of token the lexer produces."""

    KEYWORD = auto()
    IDENTIFIER = auto()
    NUMBER = auto()
    LPAREN = auto()
    RPAREN = auto()
    COMMA = auto()
    SEMICOLON = auto()
    STAR = auto()
    END = auto()


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages).

    Keyword tokens keep their *original* spelling in ``value`` (match with
    :meth:`is_keyword`, which is case-insensitive): the parser accepts
    keywords contextually as names — ``ACQUIRE window ...`` or ``AS Cell``
    stay valid even though WINDOW and CELL are keywords of the view DDL.
    """

    type: TokenType
    value: str
    position: int

    def is_keyword(self, word: str) -> bool:
        """Whether this token is the given keyword (case-insensitive)."""
        return self.type is TokenType.KEYWORD and self.value.upper() == word.upper()


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>[+-]?\d+(\.\d+)?([eE][+-]?\d+)?)
  | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<semicolon>;)
  | (?P<star>\*)
    """,
    re.VERBOSE,
)


def tokenize(text: str) -> List[Token]:
    """Tokenize query text; raises :class:`QueryParseError` on bad characters."""
    tokens: List[Token] = []
    position = 0
    length = len(text)
    while position < length:
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise QueryParseError(
                f"unexpected character {text[position]!r} at position {position}"
            )
        if match.lastgroup == "ws":
            position = match.end()
            continue
        value = match.group()
        if match.lastgroup == "number":
            tokens.append(Token(TokenType.NUMBER, value, position))
        elif match.lastgroup == "word":
            if value.upper() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, value, position))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, value, position))
        elif match.lastgroup == "lparen":
            tokens.append(Token(TokenType.LPAREN, value, position))
        elif match.lastgroup == "rparen":
            tokens.append(Token(TokenType.RPAREN, value, position))
        elif match.lastgroup == "comma":
            tokens.append(Token(TokenType.COMMA, value, position))
        elif match.lastgroup == "semicolon":
            tokens.append(Token(TokenType.SEMICOLON, value, position))
        elif match.lastgroup == "star":
            tokens.append(Token(TokenType.STAR, value, position))
        position = match.end()
    tokens.append(Token(TokenType.END, "", length))
    return tokens
