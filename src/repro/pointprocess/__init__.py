"""Multi-dimensional point process (MDPP) substrate.

This package implements the mathematical machinery Section III of the paper
relies on: spatio-temporal Poisson processes over ``(t, x, y)``, conditional
intensity models such as the linear form of Eq. (1), simulation of
homogeneous and inhomogeneous processes, independent thinning and
superposition, parameter estimation (batch maximum likelihood and online
stochastic gradient descent) and statistical tests used to check that a
process is (approximately) homogeneous at a given rate.
"""

from .events import EventBatch
from .intensity import (
    IntensityModel,
    ConstantIntensity,
    LinearIntensity,
    LogLinearIntensity,
    SeparableIntensity,
    PiecewiseConstantIntensity,
    GaussianHotspotIntensity,
)
from .homogeneous import HomogeneousMDPP
from .inhomogeneous import InhomogeneousMDPP
from .thinning import (
    thin_events,
    thin_to_rate,
    flatten_events,
    flatten_keep_mask,
    ThinningResult,
    ThinningMask,
)
from .superposition import superpose
from .estimation import (
    EstimationResult,
    fit_linear_intensity_mle,
    fit_linear_intensity_least_squares,
    OnlineIntensityEstimator,
)
from .statistics import (
    empirical_rate,
    quadrat_counts,
    quadrat_chi_square_test,
    coefficient_of_variation,
    ks_uniformity_test,
    ripley_k,
    HomogeneityReport,
    assess_homogeneity,
)
from .residuals import rescaled_time_residuals, residual_ks_statistic

__all__ = [
    "EventBatch",
    "IntensityModel",
    "ConstantIntensity",
    "LinearIntensity",
    "LogLinearIntensity",
    "SeparableIntensity",
    "PiecewiseConstantIntensity",
    "GaussianHotspotIntensity",
    "HomogeneousMDPP",
    "InhomogeneousMDPP",
    "thin_events",
    "thin_to_rate",
    "flatten_events",
    "flatten_keep_mask",
    "ThinningResult",
    "ThinningMask",
    "superpose",
    "EstimationResult",
    "fit_linear_intensity_mle",
    "fit_linear_intensity_least_squares",
    "OnlineIntensityEstimator",
    "empirical_rate",
    "quadrat_counts",
    "quadrat_chi_square_test",
    "coefficient_of_variation",
    "ks_uniformity_test",
    "ripley_k",
    "HomogeneityReport",
    "assess_homogeneity",
    "rescaled_time_residuals",
    "residual_ks_statistic",
]
