"""Parameter estimation for the conditional intensity of Eq. (1).

The paper relies on two estimation modes (Section III-A and the Flatten
operator description):

* **Batch maximum likelihood** — given a batch of events observed on a
  known spatio-temporal window, fit the parameters ``theta`` of the linear
  conditional intensity by maximising the inhomogeneous-Poisson
  log-likelihood::

      l(theta) = sum_i log lambda~(t_i, x_i, y_i; theta)
                 - integral over window of lambda~(.; theta)

  We optimise with SciPy's L-BFGS-B using a softplus-free positivity guard
  (the linear rate is clamped at a small floor inside the likelihood).

* **Online stochastic gradient descent** — the paper suggests maintaining
  the estimate over sliding windows with SGD (citing Bottou 2010).
  :class:`OnlineIntensityEstimator` performs per-event gradient steps on the
  same likelihood, so a Flatten operator can track a drifting intensity.

A cheap method-of-moments / least-squares initialiser based on quadrat
counts is also provided; it is used to seed the MLE and as a fallback when
the optimiser fails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from ..errors import EstimationError, PointProcessError
from ..geometry import Rectangle, RectRegion, Region
from .events import EventBatch
from .intensity import LinearIntensity

#: Positivity floor used inside likelihood evaluations.
_RATE_FLOOR = 1e-8


@dataclass(frozen=True)
class EstimationResult:
    """Result of fitting a linear conditional intensity.

    Attributes
    ----------
    intensity:
        The fitted :class:`LinearIntensity`.
    theta:
        The fitted parameter vector ``(theta0, theta1, theta2, theta3)``.
    log_likelihood:
        Log-likelihood of the data under the fitted model.
    converged:
        Whether the optimiser reported convergence.
    iterations:
        Number of optimiser iterations (0 for closed-form fits).
    """

    intensity: LinearIntensity
    theta: Tuple[float, float, float, float]
    log_likelihood: float
    converged: bool
    iterations: int = 0


def _window_volume(region: Region, t_start: float, t_end: float) -> float:
    return region.area * (t_end - t_start)


def _coerce_region(region) -> Region:
    if isinstance(region, Rectangle):
        return RectRegion(region)
    if isinstance(region, Region):
        return region
    raise PointProcessError(f"expected Region or Rectangle, got {type(region)!r}")


def _design_matrix(batch: EventBatch) -> np.ndarray:
    """Design matrix with columns ``(1, t, x, y)``."""
    return np.column_stack(
        [np.ones(len(batch)), batch.t, batch.x, batch.y]
    )


def _integral_of_basis(region: Region, t_start: float, t_end: float) -> np.ndarray:
    """Integral over the window of each basis function ``(1, t, x, y)``.

    For an affine basis these integrate exactly: the integral of a coordinate
    over a box equals its midpoint value times the volume.
    """
    volume = _window_volume(region, t_start, t_end)
    t_mid = 0.5 * (t_start + t_end)
    # Area-weighted centroid of the (possibly composite) region.
    total_area = region.area
    cx = sum(r.center.x * r.area for r in region.rectangles) / total_area
    cy = sum(r.center.y * r.area for r in region.rectangles) / total_area
    return np.array([volume, t_mid * volume, cx * volume, cy * volume])


def fit_linear_intensity_least_squares(
    batch: EventBatch,
    region,
    t_start: float,
    t_end: float,
    *,
    bins: int = 4,
) -> EstimationResult:
    """Quadrat-count least-squares fit of the linear intensity.

    The window is split into ``bins x bins x bins`` spatio-temporal boxes,
    the empirical rate of each box is computed, and ``theta`` is obtained by
    ordinary least squares of the box rates against the box centroids.  This
    is a method-of-moments style estimator: cheap, closed form, and a good
    initialiser for the MLE.
    """
    region = _coerce_region(region)
    if t_end <= t_start:
        raise EstimationError("time window must have positive length")
    if bins <= 0:
        raise EstimationError("bins must be positive")
    if batch.is_empty:
        raise EstimationError("cannot estimate an intensity from an empty batch")

    bbox = region.bounding_box
    t_edges = np.linspace(t_start, t_end, bins + 1)
    x_edges = np.linspace(bbox.x_min, bbox.x_max, bins + 1)
    y_edges = np.linspace(bbox.y_min, bbox.y_max, bins + 1)

    rows = []
    targets = []
    for ti in range(bins):
        for xi in range(bins):
            for yi in range(bins):
                cell = Rectangle(x_edges[xi], y_edges[yi], x_edges[xi + 1], y_edges[yi + 1])
                cell_area = region.overlap_area(RectRegion(cell))
                if cell_area <= 0:
                    continue
                duration = t_edges[ti + 1] - t_edges[ti]
                in_cell = (
                    (batch.t >= t_edges[ti])
                    & (batch.t < t_edges[ti + 1])
                    & (batch.x >= x_edges[xi])
                    & (batch.x < x_edges[xi + 1])
                    & (batch.y >= y_edges[yi])
                    & (batch.y < y_edges[yi + 1])
                )
                count = int(np.count_nonzero(in_cell))
                rate = count / (cell_area * duration)
                t_mid = 0.5 * (t_edges[ti] + t_edges[ti + 1])
                x_mid = 0.5 * (x_edges[xi] + x_edges[xi + 1])
                y_mid = 0.5 * (y_edges[yi] + y_edges[yi + 1])
                rows.append([1.0, t_mid, x_mid, y_mid])
                targets.append(rate)
    if len(rows) < 4:
        raise EstimationError("not enough occupied quadrats to fit four parameters")
    design = np.asarray(rows)
    target = np.asarray(targets)
    theta, *_ = np.linalg.lstsq(design, target, rcond=None)
    intensity = LinearIntensity.from_theta(theta)
    ll = _log_likelihood(theta, batch, region, t_start, t_end)
    return EstimationResult(
        intensity=intensity,
        theta=tuple(float(v) for v in theta),
        log_likelihood=float(ll),
        converged=True,
        iterations=0,
    )


def _log_likelihood(
    theta: Sequence[float],
    batch: EventBatch,
    region: Region,
    t_start: float,
    t_end: float,
) -> float:
    """Inhomogeneous-Poisson log-likelihood of the linear model."""
    design = _design_matrix(batch)
    rates = design @ np.asarray(theta, dtype=float)
    rates = np.maximum(rates, _RATE_FLOOR)
    basis_integrals = _integral_of_basis(region, t_start, t_end)
    compensator = float(np.dot(basis_integrals, theta))
    return float(np.sum(np.log(rates)) - compensator)


def fit_linear_intensity_mle(
    batch: EventBatch,
    region,
    t_start: float,
    t_end: float,
    *,
    initial_theta: Optional[Sequence[float]] = None,
    max_iterations: int = 200,
) -> EstimationResult:
    """Maximum-likelihood fit of the paper's linear conditional intensity.

    Parameters
    ----------
    batch:
        Observed events.
    region, t_start, t_end:
        The observation window (needed for the compensator term).
    initial_theta:
        Optional starting point; defaults to the least-squares fit, falling
        back to a flat intensity at the empirical mean rate.
    """
    region = _coerce_region(region)
    if batch.is_empty:
        raise EstimationError("cannot estimate an intensity from an empty batch")
    if t_end <= t_start:
        raise EstimationError("time window must have positive length")

    if initial_theta is None:
        try:
            initial_theta = fit_linear_intensity_least_squares(
                batch, region, t_start, t_end
            ).theta
        except EstimationError:
            mean_rate = len(batch) / _window_volume(region, t_start, t_end)
            initial_theta = (mean_rate, 0.0, 0.0, 0.0)
    theta0 = np.asarray(initial_theta, dtype=float)
    if theta0.shape != (4,):
        raise EstimationError("initial theta must have four components")

    design = _design_matrix(batch)
    basis_integrals = _integral_of_basis(region, t_start, t_end)

    def negative_log_likelihood(theta: np.ndarray) -> float:
        rates = design @ theta
        rates = np.maximum(rates, _RATE_FLOOR)
        return float(np.dot(basis_integrals, theta) - np.sum(np.log(rates)))

    def gradient(theta: np.ndarray) -> np.ndarray:
        rates = design @ theta
        rates = np.maximum(rates, _RATE_FLOOR)
        return basis_integrals - design.T @ (1.0 / rates)

    result = optimize.minimize(
        negative_log_likelihood,
        theta0,
        jac=gradient,
        method="L-BFGS-B",
        options={"maxiter": max_iterations},
    )
    theta_hat = result.x
    intensity = LinearIntensity.from_theta(theta_hat)
    return EstimationResult(
        intensity=intensity,
        theta=tuple(float(v) for v in theta_hat),
        log_likelihood=float(-result.fun),
        converged=bool(result.success),
        iterations=int(result.nit),
    )


class OnlineIntensityEstimator:
    """Online SGD estimator of the linear conditional intensity.

    The paper proposes estimating ``theta`` over sliding windows with
    stochastic gradient descent so the Flatten operator can track drift.
    Each observed event contributes a stochastic gradient of the
    log-likelihood; the compensator term is approximated by spreading the
    window integral uniformly over the events observed in that window.

    Parameters
    ----------
    region, window_duration:
        The observation window geometry; needed for the compensator.
    learning_rate:
        Base SGD step size.  The effective step decays as ``1 / sqrt(k)``
        with the update count ``k`` (Bottou's schedule).
    initial_theta:
        Starting parameters; defaults to a small flat intensity.
    expected_events_per_window:
        Rough prior for how many events arrive per window; used to scale the
        per-event compensator share before any data has been seen.
    """

    def __init__(
        self,
        region,
        window_duration: float,
        *,
        learning_rate: float = 0.05,
        initial_theta: Optional[Sequence[float]] = None,
        expected_events_per_window: float = 50.0,
    ) -> None:
        if window_duration <= 0:
            raise EstimationError("window duration must be positive")
        if learning_rate <= 0:
            raise EstimationError("learning rate must be positive")
        if expected_events_per_window <= 0:
            raise EstimationError("expected events per window must be positive")
        self._region = _coerce_region(region)
        self._window_duration = float(window_duration)
        self._learning_rate = float(learning_rate)
        self._updates = 0
        self._events_in_window = expected_events_per_window
        if initial_theta is None:
            initial_theta = (1.0, 0.0, 0.0, 0.0)
        self._theta = np.asarray(initial_theta, dtype=float)
        if self._theta.shape != (4,):
            raise EstimationError("initial theta must have four components")

    # ------------------------------------------------------------------
    @property
    def theta(self) -> Tuple[float, float, float, float]:
        """The current parameter estimate."""
        return tuple(float(v) for v in self._theta)

    @property
    def intensity(self) -> LinearIntensity:
        """The current estimate as an intensity model."""
        return LinearIntensity.from_theta(self._theta)

    @property
    def updates(self) -> int:
        """Number of SGD updates applied so far."""
        return self._updates

    # ------------------------------------------------------------------
    def _per_event_compensator(self, t_window_start: float) -> np.ndarray:
        t_end = t_window_start + self._window_duration
        basis_integrals = _integral_of_basis(self._region, t_window_start, t_end)
        return basis_integrals / max(self._events_in_window, 1.0)

    def observe_event(self, t: float, x: float, y: float, *, window_start: Optional[float] = None) -> None:
        """Apply one SGD step for a single observed event."""
        window_start = window_start if window_start is not None else max(t - self._window_duration, 0.0)
        features = np.array([1.0, t, x, y])
        rate = max(float(features @ self._theta), _RATE_FLOOR)
        gradient = features / rate - self._per_event_compensator(window_start)
        self._updates += 1
        step = self._learning_rate / np.sqrt(self._updates)
        self._theta = self._theta + step * gradient

    def observe_batch(
        self, batch: EventBatch, *, window_start: Optional[float] = None
    ) -> None:
        """Apply SGD steps for every event in a batch (in time order).

        ``window_start`` anchors the compensator's observation window; it
        defaults to the batch's own earliest event time, so that batches
        starting at large simulation times integrate the basis over the
        window they were actually observed on (a fixed ``0.0`` anchor would
        bias the time-slope gradient more and more as time advances).
        """
        if batch.is_empty:
            return
        if window_start is None:
            window_start = float(np.min(batch.t))
        # Track the running average of events per window for the compensator.
        self._events_in_window = 0.7 * self._events_in_window + 0.3 * len(batch)
        ordered = batch.sorted_by_time()
        for t, x, y in zip(ordered.t, ordered.x, ordered.y):
            self.observe_event(float(t), float(x), float(y), window_start=window_start)

    def observe_batch_fused(
        self, batch: EventBatch, *, window_start: Optional[float] = None
    ) -> None:
        """Fused-kernel variant of :meth:`observe_batch`.

        Bit-identical to the reference loop: the SGD recurrence is
        inherently sequential (each step's rate depends on the previous
        theta), but everything that is loop-invariant within one batch is
        hoisted — the per-event compensator (``_events_in_window`` is
        updated once per batch, so the compensator is constant across the
        batch's events), the feature matrix, and the ``1/sqrt(k)`` step
        schedule.  The remaining loop touches ~5 small array ops per event
        instead of rebuilding the compensator integral from the region
        geometry every step.
        """
        if batch.is_empty:
            return
        if window_start is None:
            window_start = float(np.min(batch.t))
        self._events_in_window = 0.7 * self._events_in_window + 0.3 * len(batch)
        ordered = batch.sorted_by_time()
        n = len(ordered)
        compensator = self._per_event_compensator(window_start)
        features = np.column_stack(
            (np.ones(n), np.asarray(ordered.t, dtype=float),
             np.asarray(ordered.x, dtype=float), np.asarray(ordered.y, dtype=float))
        )
        steps = self._learning_rate / np.sqrt(
            np.arange(self._updates + 1, self._updates + n + 1, dtype=np.int64)
        )
        theta = self._theta
        for i in range(n):
            event_features = features[i]
            rate = max(float(event_features @ theta), _RATE_FLOOR)
            theta = theta + steps[i] * (event_features / rate - compensator)
        self._updates += n
        self._theta = theta

    def result(self) -> EstimationResult:
        """Snapshot the current estimate as an :class:`EstimationResult`."""
        return EstimationResult(
            intensity=self.intensity,
            theta=self.theta,
            log_likelihood=float("nan"),
            converged=self._updates > 0,
            iterations=self._updates,
        )
