"""Conditional intensity (rate) models for inhomogeneous MDPPs.

The paper parametrises the conditional rate of an inhomogeneous MDPP with the
linear form of Eq. (1)::

    lambda~(t, x, y; theta) = theta0 + theta1 * t + theta2 * x + theta3 * y

:class:`LinearIntensity` implements exactly that form.  Real crowdsensed
arrival patterns are richer, so we also provide a log-linear model (which is
guaranteed positive), a separable space/time model, a piecewise-constant
model, and a Gaussian-hotspot model used by the sensing simulator to create
the skewed spatio-temporal distributions the paper's introduction motivates.

All models expose the same small interface so PMAT operators and estimators
can treat them interchangeably:

``rate(t, x, y)``
    Vectorised evaluation of the intensity at points.
``max_rate(region, t_start, t_end)``
    An upper bound of the intensity over a spatio-temporal window, needed for
    simulation by thinning.
``integral(region, t_start, t_end)``
    The expected number of events in a window, needed for likelihoods.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from ..errors import PointProcessError
from ..geometry import Rectangle, RectRegion, Region


def _as_region(region) -> Region:
    """Accept either a Rectangle or a Region and return a Region."""
    if isinstance(region, Rectangle):
        return RectRegion(region)
    if isinstance(region, Region):
        return region
    raise PointProcessError(f"expected a Region or Rectangle, got {type(region)!r}")


class IntensityModel(ABC):
    """Abstract conditional-intensity model ``lambda(t, x, y)``."""

    @abstractmethod
    def rate(self, t: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Evaluate the intensity at the given coordinates (vectorised)."""

    @abstractmethod
    def max_rate(self, region, t_start: float, t_end: float) -> float:
        """An upper bound on the intensity over ``region x [t_start, t_end]``."""

    def rate_at(self, t: float, x: float, y: float) -> float:
        """Scalar convenience wrapper around :meth:`rate`."""
        return float(self.rate(np.array([t]), np.array([x]), np.array([y]))[0])

    def integral(self, region, t_start: float, t_end: float, *, resolution: int = 40) -> float:
        """Expected number of events in ``region x [t_start, t_end]``.

        The default implementation integrates numerically on a regular grid;
        models with closed forms override it.
        """
        region = _as_region(region)
        if t_end <= t_start:
            raise PointProcessError("time window must have positive length")
        total = 0.0
        t_grid = np.linspace(t_start, t_end, resolution)
        dt = (t_end - t_start) / max(resolution - 1, 1)
        for rect in region.rectangles:
            x_grid = np.linspace(rect.x_min, rect.x_max, resolution)
            y_grid = np.linspace(rect.y_min, rect.y_max, resolution)
            dx = rect.width / max(resolution - 1, 1)
            dy = rect.height / max(resolution - 1, 1)
            tt, xx, yy = np.meshgrid(t_grid, x_grid, y_grid, indexing="ij")
            values = self.rate(tt.ravel(), xx.ravel(), yy.ravel())
            total += float(values.mean()) * (t_end - t_start) * rect.area
            # Note: mean * volume is the midpoint-style estimate; dt/dx/dy are
            # kept for clarity of the volume element derivation.
            del dt, dx, dy
        return total

    def mean_rate(self, region, t_start: float, t_end: float, *, resolution: int = 40) -> float:
        """Average intensity over the window (integral divided by volume)."""
        region = _as_region(region)
        volume = region.area * (t_end - t_start)
        if volume <= 0:
            raise PointProcessError("window must have positive volume")
        return self.integral(region, t_start, t_end, resolution=resolution) / volume


@dataclass(frozen=True)
class ConstantIntensity(IntensityModel):
    """A constant intensity ``lambda(t, x, y) = value`` (homogeneous MDPP)."""

    value: float

    def __post_init__(self) -> None:
        if self.value <= 0:
            raise PointProcessError("intensity must be strictly positive")

    def rate(self, t, x, y):
        t = np.asarray(t, dtype=float)
        return np.full(t.shape, self.value)

    def max_rate(self, region, t_start, t_end):
        return self.value

    def integral(self, region, t_start, t_end, *, resolution: int = 40):
        region = _as_region(region)
        if t_end <= t_start:
            raise PointProcessError("time window must have positive length")
        return self.value * region.area * (t_end - t_start)


@dataclass(frozen=True)
class LinearIntensity(IntensityModel):
    """The paper's Eq. (1): ``theta0 + theta1*t + theta2*x + theta3*y``.

    The linear form can go non-positive outside a carefully chosen domain, so
    evaluation clamps at ``min_rate`` (a tiny positive floor) and
    construction validates positivity on a reference window when one is
    provided via :meth:`validated_on`.
    """

    theta0: float
    theta1: float
    theta2: float
    theta3: float
    min_rate: float = 1e-9

    @property
    def theta(self) -> Tuple[float, float, float, float]:
        """The parameter vector ``(theta0, theta1, theta2, theta3)``."""
        return (self.theta0, self.theta1, self.theta2, self.theta3)

    @classmethod
    def from_theta(cls, theta: Sequence[float], *, min_rate: float = 1e-9) -> "LinearIntensity":
        """Build from a length-4 parameter sequence."""
        theta = list(theta)
        if len(theta) != 4:
            raise PointProcessError("linear intensity needs exactly 4 parameters")
        return cls(theta[0], theta[1], theta[2], theta[3], min_rate=min_rate)

    def rate(self, t, x, y):
        t = np.asarray(t, dtype=float)
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        values = self.theta0 + self.theta1 * t + self.theta2 * x + self.theta3 * y
        return np.maximum(values, self.min_rate)

    def max_rate(self, region, t_start, t_end):
        region = _as_region(region)
        best = self.min_rate
        for rect in region.rectangles:
            for t in (t_start, t_end):
                for corner in rect.corners():
                    best = max(best, self.rate_at(t, corner.x, corner.y))
        return best

    def min_rate_on(self, region, t_start: float, t_end: float) -> float:
        """Minimum of the (unclamped) linear form over the window's corners."""
        region = _as_region(region)
        best = math.inf
        for rect in region.rectangles:
            for t in (t_start, t_end):
                for corner in rect.corners():
                    value = (
                        self.theta0
                        + self.theta1 * t
                        + self.theta2 * corner.x
                        + self.theta3 * corner.y
                    )
                    best = min(best, value)
        return best

    def validated_on(self, region, t_start: float, t_end: float) -> "LinearIntensity":
        """Return self after checking positivity over the given window.

        Raises
        ------
        PointProcessError
            If the linear form is non-positive anywhere on the window (the
            corners suffice because the form is affine).
        """
        if self.min_rate_on(region, t_start, t_end) <= 0:
            raise PointProcessError(
                "linear intensity is non-positive somewhere on the window; "
                "choose parameters that keep the rate positive"
            )
        return self

    def integral(self, region, t_start, t_end, *, resolution: int = 40):
        # The affine form integrates in closed form over a box: the integral
        # equals the intensity at the centroid times the volume.
        region = _as_region(region)
        if t_end <= t_start:
            raise PointProcessError("time window must have positive length")
        t_mid = 0.5 * (t_start + t_end)
        total = 0.0
        for rect in region.rectangles:
            centroid = rect.center
            value = (
                self.theta0
                + self.theta1 * t_mid
                + self.theta2 * centroid.x
                + self.theta3 * centroid.y
            )
            total += max(value, self.min_rate) * rect.area * (t_end - t_start)
        return total


@dataclass(frozen=True)
class LogLinearIntensity(IntensityModel):
    """Log-linear intensity ``exp(theta0 + theta1*t + theta2*x + theta3*y)``.

    Always positive, which makes it a convenient ground-truth generator and a
    robust estimation target (the log-likelihood is concave in theta).
    """

    theta0: float
    theta1: float
    theta2: float
    theta3: float

    @property
    def theta(self) -> Tuple[float, float, float, float]:
        """The parameter vector."""
        return (self.theta0, self.theta1, self.theta2, self.theta3)

    def rate(self, t, x, y):
        t = np.asarray(t, dtype=float)
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        return np.exp(self.theta0 + self.theta1 * t + self.theta2 * x + self.theta3 * y)

    def max_rate(self, region, t_start, t_end):
        region = _as_region(region)
        best = 0.0
        for rect in region.rectangles:
            for t in (t_start, t_end):
                for corner in rect.corners():
                    best = max(best, self.rate_at(t, corner.x, corner.y))
        return best


@dataclass(frozen=True)
class SeparableIntensity(IntensityModel):
    """A separable intensity ``base * f_t(t) * f_s(x, y)``.

    Useful for modelling diurnal participation patterns multiplied by a
    spatial popularity surface — the classic crowdsensing skew.
    """

    base: float
    temporal: Callable[[np.ndarray], np.ndarray]
    spatial: Callable[[np.ndarray, np.ndarray], np.ndarray]
    temporal_max: float = 1.0
    spatial_max: float = 1.0

    def __post_init__(self) -> None:
        if self.base <= 0:
            raise PointProcessError("base intensity must be strictly positive")
        if self.temporal_max <= 0 or self.spatial_max <= 0:
            raise PointProcessError("component maxima must be strictly positive")

    def rate(self, t, x, y):
        t = np.asarray(t, dtype=float)
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        values = self.base * np.asarray(self.temporal(t), dtype=float) * np.asarray(
            self.spatial(x, y), dtype=float
        )
        return np.maximum(values, 0.0)

    def max_rate(self, region, t_start, t_end):
        return self.base * self.temporal_max * self.spatial_max


@dataclass(frozen=True)
class PiecewiseConstantIntensity(IntensityModel):
    """Intensity that is constant within each cell of a spatial grid.

    ``values[r][q]`` holds the rate of the cell in column ``q`` and row
    ``r`` of an ``ny x nx`` partition of ``region``.
    """

    region: Rectangle
    values: Tuple[Tuple[float, ...], ...]

    def __post_init__(self) -> None:
        if not self.values or not self.values[0]:
            raise PointProcessError("piecewise intensity needs at least one cell")
        width = len(self.values[0])
        for row in self.values:
            if len(row) != width:
                raise PointProcessError("piecewise intensity rows must have equal length")
            for value in row:
                if value < 0:
                    raise PointProcessError("piecewise intensity values must be >= 0")
        object.__setattr__(
            self, "values", tuple(tuple(float(v) for v in row) for row in self.values)
        )

    @property
    def shape(self) -> Tuple[int, int]:
        """``(ny, nx)`` cell counts."""
        return (len(self.values), len(self.values[0]))

    def rate(self, t, x, y):
        t = np.asarray(t, dtype=float)
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        ny, nx = self.shape
        qx = np.clip(
            ((x - self.region.x_min) / self.region.width * nx).astype(int), 0, nx - 1
        )
        ry = np.clip(
            ((y - self.region.y_min) / self.region.height * ny).astype(int), 0, ny - 1
        )
        table = np.asarray(self.values, dtype=float)
        return table[ry, qx]

    def max_rate(self, region, t_start, t_end):
        return max(max(row) for row in self.values)


@dataclass(frozen=True)
class GaussianHotspotIntensity(IntensityModel):
    """A baseline rate plus Gaussian spatial hotspots.

    ``hotspots`` is a sequence of ``(cx, cy, amplitude, sigma)`` tuples.  This
    is the model the sensing simulator uses to create spatially skewed
    crowdsensed arrivals (dense downtown, sparse suburbs).
    """

    baseline: float
    hotspots: Tuple[Tuple[float, float, float, float], ...]

    def __post_init__(self) -> None:
        if self.baseline < 0:
            raise PointProcessError("baseline must be non-negative")
        for spot in self.hotspots:
            if len(spot) != 4:
                raise PointProcessError("hotspots must be (cx, cy, amplitude, sigma)")
            if spot[2] < 0 or spot[3] <= 0:
                raise PointProcessError("hotspot amplitude must be >= 0 and sigma > 0")
        if self.baseline == 0 and not self.hotspots:
            raise PointProcessError("intensity would be identically zero")

    def rate(self, t, x, y):
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        t = np.asarray(t, dtype=float)
        values = np.full(x.shape, float(self.baseline))
        for cx, cy, amplitude, sigma in self.hotspots:
            d2 = (x - cx) ** 2 + (y - cy) ** 2
            values = values + amplitude * np.exp(-d2 / (2.0 * sigma * sigma))
        return values

    def max_rate(self, region, t_start, t_end):
        return self.baseline + sum(spot[2] for spot in self.hotspots)
