"""Inhomogeneous multi-dimensional Poisson point processes.

An inhomogeneous MDPP ``P~(lambda~, R)`` has a positive rate function
``lambda~(t, x, y)`` over space and time (paper Section III-A).  Simulation
uses Lewis–Shedler thinning: simulate a homogeneous process at the dominating
rate ``lambda_max`` and retain each candidate event with probability
``lambda~(t, x, y) / lambda_max``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import PointProcessError
from ..geometry import Rectangle, RectRegion, Region
from ..rng import ensure_rng
from .events import EventBatch
from .homogeneous import HomogeneousMDPP, _coerce_region
from .intensity import IntensityModel


@dataclass(frozen=True)
class InhomogeneousMDPP:
    """An inhomogeneous MDPP ``P~(intensity, region)``."""

    intensity: IntensityModel
    region: Region

    def __post_init__(self) -> None:
        object.__setattr__(self, "region", _coerce_region(self.region))

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    def expected_count(self, duration: float, *, t_start: float = 0.0) -> float:
        """Expected number of events over ``[t_start, t_start + duration)``."""
        if duration <= 0:
            raise PointProcessError("duration must be positive")
        return self.intensity.integral(self.region, t_start, t_start + duration)

    def mean_rate(self, duration: float, *, t_start: float = 0.0) -> float:
        """Average rate per unit area and time over the window."""
        return self.expected_count(duration, t_start=t_start) / (
            self.region.area * duration
        )

    # ------------------------------------------------------------------
    # Simulation (Lewis-Shedler thinning)
    # ------------------------------------------------------------------
    def sample(
        self,
        duration: float,
        *,
        t_start: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> EventBatch:
        """Simulate the process over ``[t_start, t_start + duration)``."""
        if duration <= 0:
            raise PointProcessError("duration must be positive")
        rng = ensure_rng(rng)
        t_end = t_start + duration
        lam_max = float(self.intensity.max_rate(self.region, t_start, t_end))
        if lam_max <= 0:
            raise PointProcessError("dominating rate must be strictly positive")
        dominating = HomogeneousMDPP(lam_max, self.region)
        candidates = dominating.sample(duration, t_start=t_start, rng=rng)
        if candidates.is_empty:
            return candidates
        rates = self.intensity.rate(candidates.t, candidates.x, candidates.y)
        accept_probability = np.clip(rates / lam_max, 0.0, 1.0)
        keep = rng.random(len(candidates)) < accept_probability
        return candidates.select(keep).sorted_by_time()

    # ------------------------------------------------------------------
    # Restriction
    # ------------------------------------------------------------------
    def restricted(self, sub_region: Region) -> "InhomogeneousMDPP":
        """The process restricted to a sub-region."""
        sub_region = _coerce_region(sub_region)
        if not self.region.covers(sub_region):
            raise PointProcessError("sub-region must be contained in the process region")
        return InhomogeneousMDPP(self.intensity, sub_region)

    @classmethod
    def on_rectangle(cls, intensity: IntensityModel, rect: Rectangle) -> "InhomogeneousMDPP":
        """Convenience constructor from a bare rectangle."""
        return cls(intensity, RectRegion(rect))
