"""Superposition of point processes.

The superposition of independent Poisson processes is again a Poisson
process whose rate is the sum of the component rates.  The Union PMAT
operator is the special case of superposing equal-rate processes on disjoint
adjacent regions; general superposition is provided as an extension operator
and as a test utility.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..errors import PointProcessError
from ..geometry import Region, union_regions
from .events import EventBatch
from .homogeneous import HomogeneousMDPP


def superpose(batches: Iterable[EventBatch]) -> EventBatch:
    """Merge several event batches into one, ordered by time."""
    merged = EventBatch.concatenate(batches)
    return merged.sorted_by_time()


def superpose_processes(
    processes: Sequence[HomogeneousMDPP],
    *,
    rate_tolerance: float = 1e-9,
) -> HomogeneousMDPP:
    """Model-level union of equal-rate homogeneous processes on disjoint regions.

    Parameters
    ----------
    processes:
        The processes to union; all rates must agree within ``rate_tolerance``
        and their regions must be pairwise disjoint (``union_regions``
        enforces this), so the resulting process keeps the common rate.
    """
    processes = list(processes)
    if not processes:
        raise PointProcessError("need at least one process to superpose")
    rate = processes[0].rate
    for process in processes[1:]:
        if abs(process.rate - rate) > rate_tolerance:
            raise PointProcessError("all processes must share the same rate")
    regions: Sequence[Region] = [p.region for p in processes]
    return HomogeneousMDPP(rate, union_regions(regions))
