"""Homogeneous multi-dimensional Poisson point processes.

A homogeneous MDPP ``P(lambda, R)`` (paper notation) has a constant rate
``lambda`` per unit area and time over its spatial extent ``R``.  Simulation
is the classical two-step construction: draw the number of events from a
Poisson distribution with mean ``lambda * area(R) * duration`` and place the
events uniformly in the window.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

import numpy as np

from ..errors import PointProcessError
from ..geometry import Rectangle, RectRegion, Region
from ..rng import ensure_rng
from .events import EventBatch
from .intensity import ConstantIntensity


def _coerce_region(region) -> Region:
    if isinstance(region, Rectangle):
        return RectRegion(region)
    if isinstance(region, Region):
        return region
    raise PointProcessError(f"expected Region or Rectangle, got {type(region)!r}")


def _uniform_points_in_region(
    region: Region, count: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``count`` points uniformly over a (possibly composite) region.

    Returns an ``(count, 2)`` array of ``(x, y)``.  Rectangles are chosen
    with probability proportional to their area, then points are uniform
    within the chosen rectangle.
    """
    rects = region.rectangles
    areas = np.array([r.area for r in rects], dtype=float)
    probabilities = areas / areas.sum()
    choices = rng.choice(len(rects), size=count, p=probabilities)
    xs = np.empty(count)
    ys = np.empty(count)
    for idx, rect in enumerate(rects):
        mask = choices == idx
        n_sel = int(mask.sum())
        if n_sel == 0:
            continue
        xs[mask] = rng.uniform(rect.x_min, rect.x_max, size=n_sel)
        ys[mask] = rng.uniform(rect.y_min, rect.y_max, size=n_sel)
    return np.column_stack([xs, ys])


@dataclass(frozen=True)
class HomogeneousMDPP:
    """A homogeneous MDPP ``P(rate, region)``.

    Attributes
    ----------
    rate:
        Events per unit area per unit time (``lambda``).
    region:
        Spatial extent (a :class:`~repro.geometry.Region` or a
        :class:`~repro.geometry.Rectangle`).
    """

    rate: float
    region: Region

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise PointProcessError("rate must be strictly positive")
        object.__setattr__(self, "region", _coerce_region(self.region))

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def intensity(self) -> ConstantIntensity:
        """The process as a constant :class:`IntensityModel`."""
        return ConstantIntensity(self.rate)

    def expected_count(self, duration: float) -> float:
        """Expected number of events over ``duration`` time units."""
        if duration <= 0:
            raise PointProcessError("duration must be positive")
        return self.rate * self.region.area * duration

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def sample(
        self,
        duration: float,
        *,
        t_start: float = 0.0,
        rng: Optional[np.random.Generator] = None,
        count: Optional[int] = None,
    ) -> EventBatch:
        """Simulate the process over ``[t_start, t_start + duration)``.

        Parameters
        ----------
        count:
            When given, exactly that many events are placed (a *binomial*
            process conditioned on the count); otherwise the count is
            Poisson-distributed with the correct mean.
        """
        if duration <= 0:
            raise PointProcessError("duration must be positive")
        rng = ensure_rng(rng)
        if count is None:
            n = int(rng.poisson(self.expected_count(duration)))
        else:
            if count < 0:
                raise PointProcessError("count must be non-negative")
            n = int(count)
        if n == 0:
            return EventBatch.empty()
        xy = _uniform_points_in_region(self.region, n, rng)
        t = rng.uniform(t_start, t_start + duration, size=n)
        batch = EventBatch(t, xy[:, 0], xy[:, 1])
        return batch.sorted_by_time()

    # ------------------------------------------------------------------
    # Algebra (mirrors the PMAT operators at the model level)
    # ------------------------------------------------------------------
    def thinned(self, new_rate: float) -> "HomogeneousMDPP":
        """The process with a strictly smaller rate (model-level Thin)."""
        if not 0 < new_rate < self.rate:
            raise PointProcessError(
                f"thinned rate must be in (0, {self.rate}); got {new_rate}"
            )
        return replace(self, rate=new_rate)

    def restricted(self, sub_region: Region) -> "HomogeneousMDPP":
        """The process restricted to a sub-region (model-level Partition)."""
        sub_region = _coerce_region(sub_region)
        if not self.region.covers(sub_region):
            raise PointProcessError("sub-region must be contained in the process region")
        return HomogeneousMDPP(self.rate, sub_region)

    def unioned(self, other: "HomogeneousMDPP", *, rate_tolerance: float = 1e-9) -> "HomogeneousMDPP":
        """The union of two equal-rate processes on disjoint regions (model-level Union)."""
        if abs(self.rate - other.rate) > rate_tolerance:
            raise PointProcessError("union requires equal rates")
        return HomogeneousMDPP(self.rate, self.region.union(other.region))
