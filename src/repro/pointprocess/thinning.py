"""Independent thinning and rate flattening of event batches.

These are the mathematical kernels behind the Thin and Flatten PMAT
operators (paper Section IV-B.1):

* :func:`thin_events` — Bernoulli(p) retention of each event; thinning a
  Poisson process with a fixed probability yields another Poisson process
  whose rate is scaled by ``p``.
* :func:`thin_to_rate` — computes ``p = lambda2 / lambda1`` and applies
  :func:`thin_events` (the paper's Thin recipe).
* :func:`flatten_events` — location-dependent retention following Eq. (3):
  events in high-intensity areas are kept with lower probability so the
  surviving process is approximately homogeneous at the target rate.  The
  function reports the *percent rate violation* ``N_v``: the share of events
  whose retaining probability had to be clipped to 1, meaning the batch does
  not contain enough mass there to reach the target rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import PointProcessError
from ..rng import ensure_rng
from .events import EventBatch
from .intensity import IntensityModel


@dataclass(frozen=True)
class ThinningResult:
    """Outcome of a thinning or flattening pass over one batch.

    Attributes
    ----------
    retained:
        Events that survived.
    discarded:
        Events that were dropped (the paper notes they "can be stored
        separately").
    retain_probability:
        Per-event retaining probability actually used (after clipping).
    violation_percent:
        Percent of events whose raw retaining probability exceeded 1 — the
        paper's ``N_v``.  Zero for plain thinning.
    shortfall_percent:
        Percent of the requested retention target that the batch cannot
        supply: ``100 * max(0, target - sum(min(p_i, 1))) / target``.  Zero
        when the target is reachable.  This complements ``N_v``: when the
        estimated intensity is very uneven a single clipped event keeps
        ``N_v`` small even though the batch falls far short of the target,
        whereas the shortfall directly measures the missing mass.
    keep_mask:
        Boolean array aligned with the *input* batch marking which events
        survived; lets callers that carry richer tuples (values, sensor ids)
        apply the same decision to their own records.
    """

    retained: EventBatch
    discarded: EventBatch
    retain_probability: np.ndarray = field(default_factory=lambda: np.empty(0))
    violation_percent: float = 0.0
    shortfall_percent: float = 0.0
    keep_mask: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=bool))

    @property
    def retained_count(self) -> int:
        """Number of surviving events."""
        return len(self.retained)

    @property
    def discarded_count(self) -> int:
        """Number of dropped events."""
        return len(self.discarded)

    @property
    def input_count(self) -> int:
        """Number of events that entered the pass."""
        return self.retained_count + self.discarded_count


def thin_events(
    batch: EventBatch,
    probability: float,
    *,
    rng: Optional[np.random.Generator] = None,
) -> ThinningResult:
    """Retain each event independently with the given probability.

    Parameters
    ----------
    batch:
        Input events.
    probability:
        Retention probability ``p`` in ``(0, 1]``.
    rng:
        Random generator; a fresh default generator when omitted.
    """
    if not 0 < probability <= 1:
        raise PointProcessError(f"retention probability must be in (0, 1]; got {probability}")
    rng = ensure_rng(rng)
    if batch.is_empty:
        return ThinningResult(
            retained=batch,
            discarded=EventBatch.empty(),
            retain_probability=np.empty(0),
            keep_mask=np.empty(0, dtype=bool),
        )
    keep = rng.random(len(batch)) < probability
    probabilities = np.full(len(batch), probability)
    return ThinningResult(
        retained=batch.select(keep),
        discarded=batch.select(~keep),
        retain_probability=probabilities,
        keep_mask=keep,
    )


def thin_to_rate(
    batch: EventBatch,
    rate_in: float,
    rate_out: float,
    *,
    rng: Optional[np.random.Generator] = None,
) -> ThinningResult:
    """Thin a homogeneous batch from ``rate_in`` down to ``rate_out``.

    Implements the paper's Thin operator: ``p = rate_out / rate_in`` followed
    by Bernoulli retention.  ``rate_out`` must be strictly smaller than
    ``rate_in`` (the paper requires a strictly lower output rate).
    """
    if rate_in <= 0:
        raise PointProcessError("input rate must be strictly positive")
    if not 0 < rate_out < rate_in:
        raise PointProcessError(
            f"output rate must be in (0, rate_in) = (0, {rate_in}); got {rate_out}"
        )
    return thin_events(batch, rate_out / rate_in, rng=rng)


def _compensate_clipping(raw_probability: np.ndarray, target: float) -> np.ndarray:
    """Rescale capped retention probabilities so their sum reaches the target.

    Eq. (3) can assign probabilities above 1; clipping them loses retention
    mass and the surviving process under-shoots the requested rate even when
    the batch holds enough events.  This helper finds the scale factor
    ``c >= 1`` such that ``sum(min(c * p_i, 1)) = min(target, n)`` (binary
    search; the left side is monotone in ``c``), which preserves the
    inverse-intensity shape of Eq. (3) on the unclipped events while
    restoring the expected count whenever it is physically reachable.
    """
    n = raw_probability.shape[0]
    reachable_target = min(target, float(n))
    capped = np.clip(raw_probability, 0.0, 1.0)
    if capped.sum() >= reachable_target - 1e-12:
        return capped
    lo, hi = 1.0, 2.0
    # Grow the bracket until the target is covered (bounded by all-ones).
    while np.minimum(hi * raw_probability, 1.0).sum() < reachable_target and hi < 1e12:
        hi *= 2.0
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if np.minimum(mid * raw_probability, 1.0).sum() < reachable_target:
            lo = mid
        else:
            hi = mid
    return np.minimum(hi * raw_probability, 1.0)


def _flatten_probabilities(
    batch: EventBatch,
    intensity: IntensityModel,
    target_rate: float,
    compensate_clipping: bool,
) -> "tuple[np.ndarray, float, float]":
    """Eq. (3) retention probabilities plus the violation/shortfall metrics.

    Shared by :func:`flatten_events` (which materialises the retained and
    discarded event batches) and :func:`flatten_keep_mask` (which returns
    only the Bernoulli decision).  The batch must be non-empty.
    """
    local_rate = np.asarray(intensity.rate(batch.t, batch.x, batch.y), dtype=float)
    if np.any(local_rate <= 0):
        raise PointProcessError("intensity must be strictly positive at every event")
    lambda_c = float(np.sum(1.0 / local_rate))
    raw_probability = target_rate / (local_rate * lambda_c)
    violations = raw_probability > 1.0
    violation_percent = 100.0 * float(np.count_nonzero(violations)) / len(batch)
    if compensate_clipping:
        probability = _compensate_clipping(raw_probability, target_rate)
    else:
        probability = np.clip(raw_probability, 0.0, 1.0)
    expected_retained = float(probability.sum())
    shortfall_percent = 100.0 * max(0.0, target_rate - expected_retained) / target_rate
    return probability, violation_percent, shortfall_percent


@dataclass(frozen=True)
class ThinningMask:
    """Mask-only outcome of a flattening pass (no event materialisation).

    The compiled execution path composes keep-decisions as row indices and
    gathers tuple columns once at delivery, so it never needs the
    :class:`EventBatch` copies that :class:`ThinningResult` carries.
    """

    keep_mask: np.ndarray
    retain_probability: np.ndarray
    violation_percent: float = 0.0
    shortfall_percent: float = 0.0

    @property
    def retained_count(self) -> int:
        """Number of surviving events."""
        return int(np.count_nonzero(self.keep_mask))


def flatten_keep_mask(
    batch: EventBatch,
    intensity: IntensityModel,
    target_rate: float,
    *,
    compensate_clipping: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> ThinningMask:
    """Mask-only variant of :func:`flatten_events`.

    Computes the same Eq. (3) probabilities, draws the same single
    ``rng.random(len(batch))`` vector (so a shared generator advances
    identically in both variants), and reports the same violation and
    shortfall metrics — but skips building the retained/discarded
    :class:`EventBatch` copies.
    """
    if target_rate <= 0:
        raise PointProcessError("target rate must be strictly positive")
    rng = ensure_rng(rng)
    if batch.is_empty:
        return ThinningMask(
            keep_mask=np.empty(0, dtype=bool),
            retain_probability=np.empty(0),
        )
    probability, violation_percent, shortfall_percent = _flatten_probabilities(
        batch, intensity, target_rate, compensate_clipping
    )
    keep = rng.random(len(batch)) < probability
    return ThinningMask(
        keep_mask=keep,
        retain_probability=probability,
        violation_percent=violation_percent,
        shortfall_percent=shortfall_percent,
    )


def flatten_events(
    batch: EventBatch,
    intensity: IntensityModel,
    target_rate: float,
    *,
    compensate_clipping: bool = True,
    rng: Optional[np.random.Generator] = None,
) -> ThinningResult:
    """Flatten an inhomogeneous batch to an approximately homogeneous one.

    Implements Eq. (3) of the paper.  For each event ``i`` the retaining
    probability is::

        p_i = target_rate / (lambda~(t_i, x_i, y_i; theta) * lambda_c)

    where ``lambda_c = sum_i 1 / lambda~(t_i, x_i, y_i; theta)`` is constant
    over the batch.  Probabilities above 1 are *rate violations*: the batch
    does not carry enough events in that neighbourhood to reach the target
    rate.  They are clipped to 1 and the percentage of clipped events is
    reported as ``violation_percent`` (the paper's ``N_v``), which the budget
    tuner consumes.

    Notes
    -----
    With Eq. (3)'s normalisation ``sum_i p_i = target_rate`` (before any
    clipping), so ``target_rate`` plays the role of the *expected number of
    retained events in the batch*.  Callers that think in events per unit
    area and time should pass ``rate * area * duration``.  The retained
    events are distributed (approximately) uniformly over the batch's
    spatial extent because the retention probability is inversely
    proportional to the local intensity.

    When ``compensate_clipping`` is true (the default) the probabilities of
    unclipped events are rescaled so the expected retained count still
    reaches the target whenever the batch holds enough events; the paper's
    ``N_v`` is always computed from the raw, uncompensated Eq. (3)
    probabilities.
    """
    if target_rate <= 0:
        raise PointProcessError("target rate must be strictly positive")
    rng = ensure_rng(rng)
    if batch.is_empty:
        return ThinningResult(
            retained=batch,
            discarded=EventBatch.empty(),
            retain_probability=np.empty(0),
            violation_percent=0.0,
            keep_mask=np.empty(0, dtype=bool),
        )
    probability, violation_percent, shortfall_percent = _flatten_probabilities(
        batch, intensity, target_rate, compensate_clipping
    )
    keep = rng.random(len(batch)) < probability
    return ThinningResult(
        retained=batch.select(keep),
        discarded=batch.select(~keep),
        retain_probability=probability,
        violation_percent=violation_percent,
        shortfall_percent=shortfall_percent,
        keep_mask=keep,
    )
