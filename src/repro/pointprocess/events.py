"""Batches of spatio-temporal events.

An :class:`EventBatch` is the columnar representation of a set of ``(t, x,
y)`` points produced by simulating an MDPP or collected from sensors over a
batch window.  It is the unit the PMAT operators work on in batch mode and
the unit the estimation and statistics routines consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from ..errors import PointProcessError
from ..geometry import Region, SpaceTimePoint


@dataclass(frozen=True)
class EventBatch:
    """A batch of spatio-temporal events stored columnar as numpy arrays.

    Attributes
    ----------
    t, x, y:
        1-D float arrays of equal length holding the coordinates.
    """

    t: np.ndarray
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        t = np.asarray(self.t, dtype=float)
        x = np.asarray(self.x, dtype=float)
        y = np.asarray(self.y, dtype=float)
        if not (t.ndim == x.ndim == y.ndim == 1):
            raise PointProcessError("event coordinate arrays must be 1-D")
        if not (t.shape == x.shape == y.shape):
            raise PointProcessError(
                "event coordinate arrays must have equal length; got "
                f"{t.shape}, {x.shape}, {y.shape}"
            )
        object.__setattr__(self, "t", t)
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "EventBatch":
        """A batch with no events."""
        return cls(np.empty(0), np.empty(0), np.empty(0))

    @classmethod
    def from_points(cls, points: Iterable[SpaceTimePoint]) -> "EventBatch":
        """Build from an iterable of :class:`SpaceTimePoint`."""
        pts = list(points)
        if not pts:
            return cls.empty()
        return cls(
            np.array([p.t for p in pts], dtype=float),
            np.array([p.x for p in pts], dtype=float),
            np.array([p.y for p in pts], dtype=float),
        )

    @classmethod
    def from_rows(cls, rows: Sequence[Tuple[float, float, float]]) -> "EventBatch":
        """Build from ``(t, x, y)`` tuples."""
        if not rows:
            return cls.empty()
        arr = np.asarray(rows, dtype=float)
        if arr.ndim != 2 or arr.shape[1] != 3:
            raise PointProcessError("rows must be (t, x, y) triples")
        return cls(arr[:, 0], arr[:, 1], arr[:, 2])

    @classmethod
    def concatenate(cls, batches: Iterable["EventBatch"]) -> "EventBatch":
        """Concatenate several batches into one (order preserved)."""
        batches = [b for b in batches if len(b) > 0]
        if not batches:
            return cls.empty()
        return cls(
            np.concatenate([b.t for b in batches]),
            np.concatenate([b.x for b in batches]),
            np.concatenate([b.y for b in batches]),
        )

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.t.shape[0])

    def __iter__(self) -> Iterator[SpaceTimePoint]:
        for i in range(len(self)):
            yield SpaceTimePoint(float(self.t[i]), float(self.x[i]), float(self.y[i]))

    def __getitem__(self, index) -> "EventBatch":
        """Select a subset of events by integer, slice or boolean mask."""
        if isinstance(index, (int, np.integer)):
            index = slice(index, index + 1)
        return EventBatch(self.t[index], self.x[index], self.y[index])

    @property
    def is_empty(self) -> bool:
        """Whether the batch holds no events."""
        return len(self) == 0

    # ------------------------------------------------------------------
    # Views and transforms
    # ------------------------------------------------------------------
    def points(self) -> List[SpaceTimePoint]:
        """The events as a list of :class:`SpaceTimePoint`."""
        return list(self)

    def as_array(self) -> np.ndarray:
        """An ``(n, 3)`` array with columns ``t, x, y``."""
        return np.column_stack([self.t, self.x, self.y])

    def sorted_by_time(self) -> "EventBatch":
        """A copy with events sorted by time."""
        order = np.argsort(self.t, kind="stable")
        return EventBatch(self.t[order], self.x[order], self.y[order])

    def select(self, mask: np.ndarray) -> "EventBatch":
        """The events where ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        if mask.shape != self.t.shape:
            raise PointProcessError("selection mask must match batch length")
        return EventBatch(self.t[mask], self.x[mask], self.y[mask])

    def restrict_to_region(self, region: Region) -> "EventBatch":
        """Keep only events whose spatial location falls inside ``region``."""
        if self.is_empty:
            return self
        mask = np.fromiter(
            (region.contains(float(xi), float(yi)) for xi, yi in zip(self.x, self.y)),
            dtype=bool,
            count=len(self),
        )
        return self.select(mask)

    def restrict_to_time(self, t_start: float, t_end: float) -> "EventBatch":
        """Keep only events with ``t_start <= t < t_end``."""
        if t_end <= t_start:
            raise PointProcessError("time window must have positive length")
        mask = (self.t >= t_start) & (self.t < t_end)
        return self.select(mask)

    def shifted(self, dt: float = 0.0, dx: float = 0.0, dy: float = 0.0) -> "EventBatch":
        """A copy with all events displaced by ``(dt, dx, dy)``."""
        return EventBatch(self.t + dt, self.x + dx, self.y + dy)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def time_span(self) -> Tuple[float, float]:
        """``(min t, max t)`` of the batch; ``(0, 0)`` when empty."""
        if self.is_empty:
            return (0.0, 0.0)
        return (float(self.t.min()), float(self.t.max()))

    def duration(self) -> float:
        """Length of the observed time span."""
        t_min, t_max = self.time_span()
        return t_max - t_min
