"""Statistical diagnostics for point-process batches.

The paper's central claim for the Flatten operator is that the retained
events form an *approximately homogeneous* process at the requested rate.
The routines here quantify that claim and are used throughout the test suite
and the benchmark harness:

* :func:`empirical_rate` — observed events per unit area and time.
* :func:`quadrat_counts` / :func:`quadrat_chi_square_test` — the classical
  quadrat test of complete spatial randomness (CSR): under homogeneity the
  counts in equal-area cells are i.i.d. Poisson, so the index-of-dispersion
  statistic follows a chi-square distribution.
* :func:`coefficient_of_variation` — dispersion of per-cell rates; a simple,
  threshold-friendly skew measure.
* :func:`ks_uniformity_test` — Kolmogorov–Smirnov test of the marginal
  uniformity of each coordinate.
* :func:`ripley_k` — Ripley's K function estimate for spatial clustering.
* :func:`assess_homogeneity` — a composite report used by benches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import stats

from ..errors import PointProcessError
from ..geometry import Rectangle, RectRegion, Region
from .events import EventBatch


def _coerce_region(region) -> Region:
    if isinstance(region, Rectangle):
        return RectRegion(region)
    if isinstance(region, Region):
        return region
    raise PointProcessError(f"expected Region or Rectangle, got {type(region)!r}")


def empirical_rate(batch: EventBatch, region, duration: float) -> float:
    """Observed rate (events per unit area per unit time)."""
    region = _coerce_region(region)
    if duration <= 0:
        raise PointProcessError("duration must be positive")
    volume = region.area * duration
    if volume <= 0:
        raise PointProcessError("window must have positive volume")
    return len(batch) / volume


def quadrat_counts(batch: EventBatch, region, nx: int, ny: int) -> np.ndarray:
    """Counts of events in an ``ny x nx`` spatial grid over the region's bounding box."""
    region = _coerce_region(region)
    if nx <= 0 or ny <= 0:
        raise PointProcessError("quadrat counts need positive grid dimensions")
    bbox = region.bounding_box
    counts = np.zeros((ny, nx), dtype=int)
    if batch.is_empty:
        return counts
    qx = np.clip(((batch.x - bbox.x_min) / bbox.width * nx).astype(int), 0, nx - 1)
    ry = np.clip(((batch.y - bbox.y_min) / bbox.height * ny).astype(int), 0, ny - 1)
    for q, r in zip(qx, ry):
        counts[r, q] += 1
    return counts


@dataclass(frozen=True)
class ChiSquareResult:
    """Outcome of the quadrat chi-square test of homogeneity."""

    statistic: float
    p_value: float
    degrees_of_freedom: int

    def rejects_homogeneity(self, alpha: float = 0.01) -> bool:
        """Whether homogeneity is rejected at significance level ``alpha``."""
        return self.p_value < alpha


def quadrat_chi_square_test(
    batch: EventBatch, region, nx: int = 4, ny: int = 4
) -> ChiSquareResult:
    """Quadrat (index-of-dispersion) chi-square test of spatial homogeneity.

    Under CSR the statistic ``sum (n_i - n_bar)^2 / n_bar`` is approximately
    chi-square with ``nx*ny - 1`` degrees of freedom.
    """
    counts = quadrat_counts(batch, region, nx, ny).ravel().astype(float)
    if counts.sum() == 0:
        return ChiSquareResult(statistic=0.0, p_value=1.0, degrees_of_freedom=nx * ny - 1)
    mean = counts.mean()
    statistic = float(np.sum((counts - mean) ** 2 / mean))
    dof = counts.size - 1
    p_value = float(stats.chi2.sf(statistic, dof))
    return ChiSquareResult(statistic=statistic, p_value=p_value, degrees_of_freedom=dof)


def coefficient_of_variation(batch: EventBatch, region, nx: int = 4, ny: int = 4) -> float:
    """Coefficient of variation of quadrat counts (0 for perfectly even)."""
    counts = quadrat_counts(batch, region, nx, ny).ravel().astype(float)
    mean = counts.mean()
    if mean == 0:
        return 0.0
    return float(counts.std() / mean)


def ks_uniformity_test(batch: EventBatch, region, duration: float, *, t_start: float = 0.0) -> Tuple[float, float, float]:
    """KS p-values for the marginal uniformity of ``t``, ``x`` and ``y``.

    Only meaningful for single-rectangle regions (the common case); for
    composite regions the bounding box is used, which makes the test
    conservative in x/y.
    """
    region = _coerce_region(region)
    if batch.is_empty:
        return (1.0, 1.0, 1.0)
    bbox = region.bounding_box
    p_t = stats.kstest(
        (batch.t - t_start) / duration, "uniform"
    ).pvalue if duration > 0 else 1.0
    p_x = stats.kstest((batch.x - bbox.x_min) / bbox.width, "uniform").pvalue
    p_y = stats.kstest((batch.y - bbox.y_min) / bbox.height, "uniform").pvalue
    return (float(p_t), float(p_x), float(p_y))


def ripley_k(batch: EventBatch, region, radii: np.ndarray) -> np.ndarray:
    """Ripley's K function estimate at the given radii (no edge correction).

    For a homogeneous Poisson process ``K(r) ~ pi r^2``; clustering inflates
    K above that reference, regular patterns deflate it.
    """
    region = _coerce_region(region)
    radii = np.asarray(radii, dtype=float)
    n = len(batch)
    if n < 2:
        return np.zeros_like(radii)
    area = region.area
    coords = np.column_stack([batch.x, batch.y])
    diffs = coords[:, None, :] - coords[None, :, :]
    distances = np.sqrt((diffs ** 2).sum(axis=2))
    np.fill_diagonal(distances, np.inf)
    density = n / area
    k_values = np.empty_like(radii)
    for idx, r in enumerate(radii):
        pair_count = float(np.count_nonzero(distances <= r))
        k_values[idx] = pair_count / (n * density)
    return k_values


@dataclass(frozen=True)
class HomogeneityReport:
    """Composite homogeneity assessment of one event batch.

    Attributes
    ----------
    empirical_rate:
        Observed rate over the window.
    target_rate:
        The requested rate (``nan`` when not supplied).
    rate_relative_error:
        ``|empirical - target| / target`` (``nan`` without a target).
    chi_square:
        Quadrat chi-square test result.
    cv:
        Coefficient of variation of quadrat counts.
    ks_pvalues:
        ``(p_t, p_x, p_y)`` marginal uniformity p-values.
    """

    empirical_rate: float
    target_rate: float
    rate_relative_error: float
    chi_square: ChiSquareResult
    cv: float
    ks_pvalues: Tuple[float, float, float]

    def is_approximately_homogeneous(
        self, *, alpha: float = 0.01, max_cv: float = 1.0
    ) -> bool:
        """Whether the batch passes the chi-square test and has moderate dispersion."""
        return not self.chi_square.rejects_homogeneity(alpha) and self.cv <= max_cv

    def meets_rate(self, tolerance: float = 0.2) -> bool:
        """Whether the empirical rate is within ``tolerance`` of the target."""
        if np.isnan(self.rate_relative_error):
            return False
        return self.rate_relative_error <= tolerance


def assess_homogeneity(
    batch: EventBatch,
    region,
    duration: float,
    *,
    target_rate: Optional[float] = None,
    t_start: float = 0.0,
    nx: int = 4,
    ny: int = 4,
) -> HomogeneityReport:
    """Build a :class:`HomogeneityReport` for one batch."""
    region = _coerce_region(region)
    observed = empirical_rate(batch, region, duration)
    if target_rate is None or target_rate <= 0:
        target = float("nan")
        relative_error = float("nan")
    else:
        target = float(target_rate)
        relative_error = abs(observed - target) / target
    return HomogeneityReport(
        empirical_rate=observed,
        target_rate=target,
        rate_relative_error=relative_error,
        chi_square=quadrat_chi_square_test(batch, region, nx, ny),
        cv=coefficient_of_variation(batch, region, nx, ny),
        ks_pvalues=ks_uniformity_test(batch, region, duration, t_start=t_start),
    )
