"""Exception hierarchy for the CrAQR reproduction.

Every error raised by the library derives from :class:`CraqrError`, so a
caller can catch a single base class at the engine boundary.  The subclasses
mirror the main subsystems: geometry, point processes, streaming, query
planning and the request/response handler.
"""

from __future__ import annotations


class CraqrError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GeometryError(CraqrError):
    """Invalid geometric construction or operation.

    Raised, for instance, when building a rectangle with non-positive extent
    or when unioning rectangles that are not adjacent with a common side.
    """


class PointProcessError(CraqrError):
    """Invalid point-process specification or operation.

    Raised for non-positive rates, intensities that are not strictly positive
    on the simulation domain, or malformed event batches.
    """


class EstimationError(PointProcessError):
    """Raised when intensity-parameter estimation fails to produce a model."""


class StreamError(CraqrError):
    """Invalid stream topology construction or execution."""


class QueryError(CraqrError):
    """Invalid acquisitional query (bad region, rate, or attribute)."""


class QueryParseError(QueryError):
    """Raised by the declarative query parser on malformed query text."""


class PlanningError(CraqrError):
    """Raised when the planner cannot build or modify an execution topology."""


class BudgetError(CraqrError):
    """Raised on invalid budget specifications or impossible budget requests."""


class AcquisitionError(CraqrError):
    """Raised by the request/response handler on invalid acquisition requests."""


class StorageError(CraqrError):
    """Raised by tuple stores and result buffers on invalid operations."""


class ViewError(CraqrError):
    """Raised by the continuous-view subsystem on invalid view specs or reads."""


class WorkloadError(CraqrError):
    """Raised by workload and scenario generators on invalid parameters."""


class ServeError(CraqrError):
    """Raised by the serving layer.

    Covers malformed wire frames and handshakes, unknown protocol
    operations, invalid or truncated resumable-offset tokens, and
    client-side errors surfaced from a server's structured error reply
    (the original server-side exception type is kept in
    ``ServeError.error_type``).
    """

    def __init__(self, message: str, *, error_type: str = "ServeError") -> None:
        super().__init__(message)
        #: The server-side exception class the reply carried (e.g.
        #: ``"StorageError"`` when a fetch lagged past retention).
        self.error_type = error_type


class RecoveryError(CraqrError):
    """Raised by the checkpoint/recovery subsystem.

    Covers unreadable, torn or checksum-corrupt snapshot files, unknown
    snapshot format versions, and restore attempts against incompatible
    engine builds.
    """
