"""Struct-of-arrays sensor state.

The sensing world at scale is a numerical simulation: at 10k+ sensors the
per-object ``MobilityState`` dataclasses and one-``step``-call-per-sensor
loops dominate the engine's wall clock.  :class:`SensorStateArrays` stores
the whole crowd's mutable state as numpy columns so that

* batch mobility kernels (:meth:`~repro.sensing.mobility.MobilityModel.step_batch`)
  advance every sensor of a model group with a handful of array operations,
* spatial queries (``sensors_in``, ``density_snapshot``) reduce to boolean
  masks and bincounts over the position columns, and
* the fast-sim acquisition path vectorises participation sampling across a
  whole cell population using the per-sensor participation parameter columns.

:class:`MobileSensor` objects remain the public per-sensor API, but each one
is a lazy *view* over its SoA row: :class:`ArrayBackedMobilityState` exposes
the exact attribute surface of the old ``MobilityState`` dataclass
(including ``target_x is None`` semantics, encoded as NaN in the arrays), so
the scalar mobility ``step`` implementations run unchanged — and
byte-identically — against either representation.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import CraqrError


class ArrayBackedMobilityState:
    """A per-sensor mobility-state view over one :class:`SensorStateArrays` row.

    Duck-types :class:`~repro.sensing.mobility.MobilityState`: the scalar
    ``MobilityModel.step`` implementations read and write ``x``, ``y``,
    ``vx``, ``vy``, ``target_x``, ``target_y`` and ``pause_remaining``
    exactly as they do on the dataclass.  ``target_x``/``target_y`` map
    ``None`` to NaN in the backing arrays so batch kernels can test
    "has no target" with ``np.isnan``.
    """

    __slots__ = ("_arrays", "_index")

    def __init__(self, arrays: "SensorStateArrays", index: int) -> None:
        self._arrays = arrays
        self._index = index

    # -- positions and velocities --------------------------------------
    @property
    def x(self) -> float:
        return float(self._arrays.x[self._index])

    @x.setter
    def x(self, value: float) -> None:
        self._arrays.x[self._index] = value

    @property
    def y(self) -> float:
        return float(self._arrays.y[self._index])

    @y.setter
    def y(self, value: float) -> None:
        self._arrays.y[self._index] = value

    @property
    def vx(self) -> float:
        return float(self._arrays.vx[self._index])

    @vx.setter
    def vx(self, value: float) -> None:
        self._arrays.vx[self._index] = value

    @property
    def vy(self) -> float:
        return float(self._arrays.vy[self._index])

    @vy.setter
    def vy(self, value: float) -> None:
        self._arrays.vy[self._index] = value

    # -- waypoint target (None <-> NaN) --------------------------------
    @property
    def target_x(self) -> Optional[float]:
        value = self._arrays.target_x[self._index]
        return None if np.isnan(value) else float(value)

    @target_x.setter
    def target_x(self, value: Optional[float]) -> None:
        self._arrays.target_x[self._index] = np.nan if value is None else value

    @property
    def target_y(self) -> Optional[float]:
        value = self._arrays.target_y[self._index]
        return None if np.isnan(value) else float(value)

    @target_y.setter
    def target_y(self, value: Optional[float]) -> None:
        self._arrays.target_y[self._index] = np.nan if value is None else value

    # -- pause timer ----------------------------------------------------
    @property
    def pause_remaining(self) -> float:
        return float(self._arrays.pause_remaining[self._index])

    @pause_remaining.setter
    def pause_remaining(self, value: float) -> None:
        self._arrays.pause_remaining[self._index] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArrayBackedMobilityState(index={self._index}, x={self.x:.4f}, "
            f"y={self.y:.4f})"
        )


class SensorStateArrays:
    """All per-sensor mutable state of a sensing world, as numpy columns.

    Columns
    -------
    ``x, y, vx, vy, target_x, target_y, pause_remaining``
        Mobility state; targets are NaN when unset.
    ``sensor_ids``
        Public sensor identifier of each row.
    ``requests_received, responses_sent``
        Acquisition bookkeeping counters.
    ``p_base, p_max, latency_mean, incentive_sensitive, vector_participation``
        Participation parameters (see
        :meth:`~repro.sensing.participation.ParticipationModel.vector_params`):
        base response probability, incentive-boost cap, mean exponential
        response latency, whether incentives scale the probability, and
        whether the row may be decided vectorially at all.  Rows whose
        participation model cannot be vectorised — neither stationary
        ``vector_params`` nor the stateful vector-state protocol — keep
        ``vector_participation`` False, which makes the fast-sim acquisition
        path fall back to the exact per-sensor loop for the affected cells.
    ``participation_group``
        Index into the world's stateful participation groups (see
        :meth:`~repro.sensing.SensingWorld.participation_groups`) for rows
        whose probabilities come from the vector-state protocol
        (``vector_probabilities`` over the model's state columns);
        ``-1`` for rows decided from the stationary parameter columns.
    ``reliability, quarantined``
        Server-side health state maintained by
        :class:`repro.faults.SensorHealthMonitor`: a reliability EWMA of the
        sensor's accepted/requested ratio (1.0 until observed) and the
        quarantine mask the handler ANDs into its candidate populations.
        Inert (all-ones / all-False) unless a health monitor is attached.

    Stateful participation models additionally allocate named *extra*
    columns (e.g. a fatigue level) via :meth:`ensure_column`; they are
    accessed with :meth:`column`.
    """

    __slots__ = (
        "x", "y", "vx", "vy", "target_x", "target_y", "pause_remaining",
        "sensor_ids", "requests_received", "responses_sent",
        "p_base", "p_max", "latency_mean", "incentive_sensitive",
        "vector_participation", "participation_group",
        "reliability", "quarantined", "_extra_columns",
    )

    def __init__(self, count: int) -> None:
        if count <= 0:
            raise CraqrError("a SensorStateArrays needs at least one row")
        self.x = np.zeros(count, dtype=np.float64)
        self.y = np.zeros(count, dtype=np.float64)
        self.vx = np.zeros(count, dtype=np.float64)
        self.vy = np.zeros(count, dtype=np.float64)
        self.target_x = np.full(count, np.nan, dtype=np.float64)
        self.target_y = np.full(count, np.nan, dtype=np.float64)
        self.pause_remaining = np.zeros(count, dtype=np.float64)
        self.sensor_ids = np.zeros(count, dtype=np.int64)
        self.requests_received = np.zeros(count, dtype=np.int64)
        self.responses_sent = np.zeros(count, dtype=np.int64)
        self.p_base = np.ones(count, dtype=np.float64)
        self.p_max = np.ones(count, dtype=np.float64)
        self.latency_mean = np.zeros(count, dtype=np.float64)
        self.incentive_sensitive = np.zeros(count, dtype=bool)
        self.vector_participation = np.zeros(count, dtype=bool)
        self.participation_group = np.full(count, -1, dtype=np.int64)
        self.reliability = np.ones(count, dtype=np.float64)
        self.quarantined = np.zeros(count, dtype=bool)
        self._extra_columns: Dict[str, np.ndarray] = {}

    def __len__(self) -> int:
        return self.x.shape[0]

    # ------------------------------------------------------------------
    # Named extra columns (participation vector state)
    # ------------------------------------------------------------------
    def ensure_column(self, name: str, *, fill: float = 0.0) -> np.ndarray:
        """Allocate (or return) a named float column of the SoA's length."""
        column = self._extra_columns.get(name)
        if column is None:
            column = np.full(len(self), fill, dtype=np.float64)
            self._extra_columns[name] = column
        return column

    def column(self, name: str) -> np.ndarray:
        """A previously allocated extra column."""
        try:
            return self._extra_columns[name]
        except KeyError:
            raise CraqrError(f"no extra state column named '{name}'") from None

    def has_column(self, name: str) -> bool:
        """Whether a named extra column has been allocated."""
        return name in self._extra_columns

    # ------------------------------------------------------------------
    def state_view(self, index: int) -> ArrayBackedMobilityState:
        """The mobility-state view of one row."""
        return ArrayBackedMobilityState(self, index)

    def load_mobility_state(self, index: int, state) -> None:
        """Copy a freshly initialised ``MobilityState`` into row ``index``."""
        self.x[index] = state.x
        self.y[index] = state.y
        self.vx[index] = state.vx
        self.vy[index] = state.vy
        self.target_x[index] = np.nan if state.target_x is None else state.target_x
        self.target_y[index] = np.nan if state.target_y is None else state.target_y
        self.pause_remaining[index] = state.pause_remaining

    def set_participation(
        self, index: int, params: Optional[Tuple[float, float, float, bool]]
    ) -> None:
        """Record a row's participation parameters (``None`` = not vectorisable)."""
        if params is None:
            self.vector_participation[index] = False
            return
        p_base, p_max, latency_mean, incentive_sensitive = params
        self.p_base[index] = p_base
        self.p_max[index] = p_max
        self.latency_mean[index] = latency_mean
        self.incentive_sensitive[index] = incentive_sensitive
        self.vector_participation[index] = True

    def positions(self) -> np.ndarray:
        """An ``(n, 2)`` copy of the current positions."""
        return np.column_stack((self.x, self.y))
