"""The sensing world: region, sensors, phenomena and a shared clock.

:class:`SensingWorld` is the simulated environment the CrAQR server talks
to.  It owns the mobile sensors (with their mobility and participation
models), the phenomena fields backing each attribute, and the simulation
clock.  The request/response handler queries the world for the sensors
currently inside a grid cell and forwards acquisition requests to them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..errors import AcquisitionError, CraqrError
from ..geometry import Rectangle, Region
from .clock import SimulationClock
from .mobility import MobilityModel, RandomWaypointMobility
from .participation import ParticipationModel
from .phenomena import PhenomenonField
from .sensor import MobileSensor


@dataclass(frozen=True)
class WorldConfig:
    """Configuration of a :class:`SensingWorld`.

    Attributes
    ----------
    region:
        The rectangular world region ``R``.
    sensor_count:
        Number of mobile sensors to create.
    seed:
        Seed of the world's random generator.
    movement_step:
        Time granularity at which sensor positions are updated.
    """

    region: Rectangle
    sensor_count: int = 100
    seed: Optional[int] = None
    movement_step: float = 0.1

    def __post_init__(self) -> None:
        if self.sensor_count <= 0:
            raise CraqrError("sensor_count must be positive")
        if self.movement_step <= 0:
            raise CraqrError("movement_step must be positive")


class SensingWorld:
    """The simulated crowd of mobile sensors and the phenomena they observe."""

    def __init__(
        self,
        config: WorldConfig,
        *,
        mobility_factory: Optional[Callable[[Rectangle], MobilityModel]] = None,
        participation_factory: Optional[Callable[[int], ParticipationModel]] = None,
    ) -> None:
        self._config = config
        self._rng = np.random.default_rng(config.seed)
        self._clock = SimulationClock()
        mobility_factory = mobility_factory or (lambda region: RandomWaypointMobility(region))
        self._sensors: List[MobileSensor] = []
        for sensor_id in range(config.sensor_count):
            mobility = mobility_factory(config.region)
            participation = participation_factory(sensor_id) if participation_factory else None
            sensor_rng = np.random.default_rng(self._rng.integers(0, 2 ** 63 - 1))
            self._sensors.append(
                MobileSensor(
                    sensor_id,
                    mobility,
                    participation=participation,
                    rng=sensor_rng,
                )
            )
        self._fields: Dict[str, PhenomenonField] = {}

    # ------------------------------------------------------------------
    @property
    def config(self) -> WorldConfig:
        """The world's configuration."""
        return self._config

    @property
    def region(self) -> Rectangle:
        """The world region ``R``."""
        return self._config.region

    @property
    def clock(self) -> SimulationClock:
        """The shared simulation clock."""
        return self._clock

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._clock.now

    @property
    def sensors(self) -> Sequence[MobileSensor]:
        """All mobile sensors."""
        return tuple(self._sensors)

    @property
    def rng(self) -> np.random.Generator:
        """The world's random generator (used by the handler for sampling)."""
        return self._rng

    @property
    def attributes(self) -> List[str]:
        """Names of the attributes that have a registered field."""
        return list(self._fields.keys())

    # ------------------------------------------------------------------
    def register_field(self, field_model: PhenomenonField) -> None:
        """Register the phenomenon field backing an attribute."""
        if not field_model.attribute:
            raise CraqrError("a phenomenon field must name its attribute")
        self._fields[field_model.attribute] = field_model

    def field_for(self, attribute: str) -> PhenomenonField:
        """The field backing ``attribute``."""
        try:
            return self._fields[attribute]
        except KeyError:
            raise AcquisitionError(
                f"no phenomenon field registered for attribute '{attribute}'"
            ) from None

    def has_attribute(self, attribute: str) -> bool:
        """Whether a field is registered for the attribute."""
        return attribute in self._fields

    # ------------------------------------------------------------------
    def advance(self, duration: float) -> float:
        """Advance the clock by ``duration``, moving every sensor along the way."""
        if duration <= 0:
            raise CraqrError("duration must be positive")
        remaining = duration
        step = self._config.movement_step
        while remaining > 1e-12:
            dt = min(step, remaining)
            for sensor in self._sensors:
                sensor.move(dt)
            self._clock.advance(dt)
            remaining -= dt
        return self._clock.now

    def sensors_in(self, region: Region) -> List[MobileSensor]:
        """Sensors whose current position lies inside ``region``."""
        return [
            sensor
            for sensor in self._sensors
            if region.contains(sensor.position.x, sensor.position.y, closed=True)
        ]

    def sensors_in_rectangle(self, rect: Rectangle) -> List[MobileSensor]:
        """Sensors whose current position lies inside ``rect``."""
        return [
            sensor
            for sensor in self._sensors
            if rect.contains(sensor.position.x, sensor.position.y, closed=True)
        ]

    def sensor_positions(self) -> np.ndarray:
        """An ``(n, 2)`` array of current sensor positions."""
        return np.array([[s.position.x, s.position.y] for s in self._sensors])

    def density_snapshot(self, nx: int = 8, ny: int = 8) -> np.ndarray:
        """Counts of sensors in an ``ny x nx`` grid — a quick view of spatial skew."""
        if nx <= 0 or ny <= 0:
            raise CraqrError("grid dimensions must be positive")
        counts = np.zeros((ny, nx), dtype=int)
        region = self._config.region
        for sensor in self._sensors:
            pos = sensor.position
            q = min(int((pos.x - region.x_min) / region.width * nx), nx - 1)
            r = min(int((pos.y - region.y_min) / region.height * ny), ny - 1)
            counts[r, q] += 1
        return counts
