"""The sensing world: region, sensors, phenomena and a shared clock.

:class:`SensingWorld` is the simulated environment the CrAQR server talks
to.  It owns the mobile sensors (with their mobility and participation
models), the phenomena fields backing each attribute, and the simulation
clock.  The request/response handler queries the world for the sensors
currently inside a grid cell and forwards acquisition requests to them.

All per-sensor mutable state lives in one
:class:`~repro.sensing.state.SensorStateArrays` struct-of-arrays owned by
the world; :class:`MobileSensor` objects are lazy views over its rows.
Spatial queries (``sensors_in``, ``density_snapshot``, ``sensor_positions``)
are therefore plain array operations in every mode.  How sensors *move* and
*respond* depends on the RNG contract selected by
:attr:`WorldConfig.vectorized_rng`:

* **strict mode** (default, ``vectorized_rng=False``): every sensor draws
  from its own generator in creation order, exactly as the original
  per-object simulator did — for a given seed the SoA storage produces
  byte-identical trajectories and observations to per-object stepping of
  the same models.  (The one intentional behaviour change shipped alongside
  the refactor is the :class:`~repro.sensing.GaussMarkovMobility`
  mean-reversion fix: its seeded trajectories differ from the pre-fix ones
  because the *formula* changed, not the storage.)
* **fast-sim mode** (``vectorized_rng=True``): all sensors share the
  world's generator, so mobility advances through the models' vectorised
  ``step_batch`` kernels (one call per model group per movement step) and
  the handler's acquisition rounds sample participation and phenomena
  across a whole cell population at once.  Runs are statistically
  equivalent to strict mode (same densities, same response rates), not
  bit-equal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AcquisitionError, CraqrError
from ..geometry import Rectangle, Region
from .clock import SimulationClock
from .mobility import MobilityModel, RandomWaypointMobility
from .participation import ParticipationModel
from .phenomena import PhenomenonField
from .sensor import MobileSensor
from .state import SensorStateArrays


@dataclass(frozen=True)
class WorldConfig:
    """Configuration of a :class:`SensingWorld`.

    Attributes
    ----------
    region:
        The rectangular world region ``R``.
    sensor_count:
        Number of mobile sensors to create.
    seed:
        Seed of the world's random generator.
    movement_step:
        Time granularity at which sensor positions are updated.
    vectorized_rng:
        Selects the fast-sim RNG contract: one shared random stream across
        all sensors, enabling the batch mobility kernels and the handler's
        population-level acquisition sampling.  The default ``False`` keeps
        strict per-sensor streams (seeded byte-identical trajectories and
        observations); flip it on for large-scale simulation where
        statistical equivalence suffices.
    """

    region: Rectangle
    sensor_count: int = 100
    seed: Optional[int] = None
    movement_step: float = 0.1
    vectorized_rng: bool = False

    def __post_init__(self) -> None:
        if self.sensor_count <= 0:
            raise CraqrError("sensor_count must be positive")
        if self.movement_step <= 0:
            raise CraqrError("movement_step must be positive")


class SensingWorld:
    """The simulated crowd of mobile sensors and the phenomena they observe."""

    def __init__(
        self,
        config: WorldConfig,
        *,
        mobility_factory: Optional[Callable[[Rectangle], MobilityModel]] = None,
        participation_factory: Optional[Callable[[int], ParticipationModel]] = None,
    ) -> None:
        self._config = config
        self._rng = np.random.default_rng(config.seed)
        self._clock = SimulationClock()
        mobility_factory = mobility_factory or (lambda region: RandomWaypointMobility(region))
        self._state = SensorStateArrays(config.sensor_count)
        self._sensors: List[MobileSensor] = []
        for sensor_id in range(config.sensor_count):
            mobility = mobility_factory(config.region)
            participation = participation_factory(sensor_id) if participation_factory else None
            sensor_rng = np.random.default_rng(self._rng.integers(0, 2 ** 63 - 1))
            self._sensors.append(
                MobileSensor(
                    sensor_id,
                    mobility,
                    participation=participation,
                    rng=sensor_rng,
                    state_arrays=self._state,
                    index=sensor_id,
                )
            )
        self._mobility_groups, self._ungrouped_indices = self._group_mobility_models()
        self._participation_groups = self._group_participation_models()
        self._fields: Dict[str, PhenomenonField] = {}

    def _group_mobility_models(
        self,
    ) -> Tuple[List[Tuple[MobilityModel, np.ndarray]], np.ndarray]:
        """Bucket sensors by their model's ``batch_key`` for kernel dispatch.

        Sensors whose model returns ``None`` (no batch support) are stepped
        per object even in fast-sim mode, with their own generators.
        """
        keyed: Dict[object, Tuple[MobilityModel, List[int]]] = {}
        ungrouped: List[int] = []
        for index, sensor in enumerate(self._sensors):
            key = sensor.mobility.batch_key()
            if key is None:
                ungrouped.append(index)
            elif key in keyed:
                keyed[key][1].append(index)
            else:
                keyed[key] = (sensor.mobility, [index])
        groups = [
            (model, np.asarray(indices, dtype=np.int64))
            for model, indices in keyed.values()
        ]
        return groups, np.asarray(ungrouped, dtype=np.int64)

    def _group_participation_models(self) -> List[ParticipationModel]:
        """Wire stateful participation models into the SoA vector-state columns.

        Sensors whose model implements the vector-state protocol
        (:meth:`~repro.sensing.participation.ParticipationModel.vector_state_columns`)
        get their state columns allocated, their initial state written, and a
        ``participation_group`` id assigned; models sharing a
        ``vector_state_key`` form one group evaluated by a single
        representative instance (the per-sensor state lives entirely in the
        SoA columns, so any instance of the group can evaluate all of its
        rows).  Such rows are marked ``vector_participation`` so the
        fast-sim handler decides them with array operations instead of
        falling back to the exact per-sensor round.
        """
        soa = self._state
        keyed: Dict[object, int] = {}
        groups: List[ParticipationModel] = []
        for index, sensor in enumerate(self._sensors):
            model = sensor.participation
            columns = model.vector_state_columns()
            if columns is None:
                continue
            for name in columns:
                soa.ensure_column(name)
            key = model.vector_state_key()
            group_id = keyed.get(key)
            if group_id is None:
                group_id = len(groups)
                keyed[key] = group_id
                groups.append(model)
            p_max, latency_mean, incentive_sensitive = model.vector_static_params()
            soa.p_max[index] = p_max
            soa.latency_mean[index] = latency_mean
            soa.incentive_sensitive[index] = incentive_sensitive
            soa.participation_group[index] = group_id
            soa.vector_participation[index] = True
            model.init_vector_state(soa, index)
        return groups

    # ------------------------------------------------------------------
    @property
    def config(self) -> WorldConfig:
        """The world's configuration."""
        return self._config

    @property
    def region(self) -> Rectangle:
        """The world region ``R``."""
        return self._config.region

    @property
    def clock(self) -> SimulationClock:
        """The shared simulation clock."""
        return self._clock

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._clock.now

    @property
    def sensors(self) -> Sequence[MobileSensor]:
        """All mobile sensors."""
        return tuple(self._sensors)

    @property
    def state_arrays(self) -> SensorStateArrays:
        """The struct-of-arrays backing every sensor's mutable state."""
        return self._state

    @property
    def vectorized(self) -> bool:
        """Whether the world runs in shared-stream fast-sim mode."""
        return self._config.vectorized_rng

    @property
    def rng(self) -> np.random.Generator:
        """The world's random generator (used by the handler for sampling)."""
        return self._rng

    @property
    def participation_groups(self) -> List[ParticipationModel]:
        """Representative models of the stateful vector-participation groups.

        Indexed by the ``participation_group`` SoA column: the fast-sim
        handler asks ``participation_groups[g].vector_probabilities(...)``
        for the rows of group ``g`` (see :meth:`_group_participation_models`).
        """
        return self._participation_groups

    @property
    def attributes(self) -> List[str]:
        """Names of the attributes that have a registered field."""
        return list(self._fields.keys())

    # ------------------------------------------------------------------
    def register_field(self, field_model: PhenomenonField) -> None:
        """Register the phenomenon field backing an attribute."""
        if not field_model.attribute:
            raise CraqrError("a phenomenon field must name its attribute")
        self._fields[field_model.attribute] = field_model

    def field_for(self, attribute: str) -> PhenomenonField:
        """The field backing ``attribute``."""
        try:
            return self._fields[attribute]
        except KeyError:
            raise AcquisitionError(
                f"no phenomenon field registered for attribute '{attribute}'"
            ) from None

    def has_attribute(self, attribute: str) -> bool:
        """Whether a field is registered for the attribute."""
        return attribute in self._fields

    # ------------------------------------------------------------------
    def advance(self, duration: float) -> float:
        """Advance the clock by ``duration``, moving every sensor along the way.

        Strict mode loops every sensor's scalar ``step`` with its private
        generator (byte-identical to the seed behaviour); fast-sim mode runs
        one vectorised ``step_batch`` kernel per mobility-model group per
        movement step, drawing from the world's shared generator.
        """
        if duration <= 0:
            raise CraqrError("duration must be positive")
        remaining = duration
        step = self._config.movement_step
        vectorized = self._config.vectorized_rng
        # Scalar-stepped sensors (all of them in strict mode, only the
        # kernel-less ones in fast-sim) are checked out of the SoA once for
        # the whole call, stepped on plain dataclass scratches, and
        # committed back at the end — advance is atomic, so nothing
        # observes the SoA in between, and the per-sub-step cost is the
        # original per-object inner loop.
        if vectorized:
            scalar_sensors = [self._sensors[int(i)] for i in self._ungrouped_indices]
        else:
            scalar_sensors = self._sensors
        for sensor in scalar_sensors:
            sensor.begin_moves()
        try:
            while remaining > 1e-12:
                dt = min(step, remaining)
                if vectorized:
                    for model, indices in self._mobility_groups:
                        model.step_batch(self._state, indices, dt, self._rng)
                for sensor in scalar_sensors:
                    sensor.step_scalar(dt)
                self._clock.advance(dt)
                remaining -= dt
        finally:
            for sensor in scalar_sensors:
                sensor.end_moves()
        return self._clock.now

    def sensor_indices_in(self, region: Region) -> np.ndarray:
        """SoA row indices of the sensors currently inside ``region``."""
        mask = region.contains_many(self._state.x, self._state.y, closed=True)
        return np.nonzero(mask)[0]

    def sensor_indices_in_rectangle(self, rect: Rectangle) -> np.ndarray:
        """SoA row indices of the sensors currently inside ``rect``."""
        return self.sensor_indices_in(rect)

    def sensors_at(self, indices: np.ndarray) -> List[MobileSensor]:
        """The sensor views backing the given SoA row indices."""
        return [self._sensors[int(i)] for i in indices]

    def sensors_in(self, region: Region) -> List[MobileSensor]:
        """Sensors whose current position lies inside ``region``."""
        return self.sensors_at(self.sensor_indices_in(region))

    def sensors_in_rectangle(self, rect: Rectangle) -> List[MobileSensor]:
        """Sensors whose current position lies inside ``rect``."""
        return self.sensors_at(self.sensor_indices_in_rectangle(rect))

    def sensor_positions(self) -> np.ndarray:
        """An ``(n, 2)`` array of current sensor positions (a cheap copy)."""
        return self._state.positions()

    def density_snapshot(self, nx: int = 8, ny: int = 8) -> np.ndarray:
        """Counts of sensors in an ``ny x nx`` grid — a quick view of spatial skew.

        One vectorised bincount over the SoA position columns, using the
        same truncation arithmetic as the original per-sensor loop so the
        counts are identical.  Positions outside the region — possible with
        custom mobility models that escape the bounds — are clipped into the
        nearest boundary bucket rather than producing negative indices
        (which would crash ``bincount`` or silently miscount via
        ``r * nx + q`` collisions).
        """
        if nx <= 0 or ny <= 0:
            raise CraqrError("grid dimensions must be positive")
        region = self._config.region
        q = np.clip(
            ((self._state.x - region.x_min) / region.width * nx).astype(np.int64),
            0,
            nx - 1,
        )
        r = np.clip(
            ((self._state.y - region.y_min) / region.height * ny).astype(np.int64),
            0,
            ny - 1,
        )
        counts = np.bincount(r * nx + q, minlength=nx * ny)
        return counts.reshape(ny, nx)
