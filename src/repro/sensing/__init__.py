"""Crowdsensing simulator: the substitute for a real mobile-sensor deployment.

The paper's system sits on top of a crowd of mobile sensors (smartphones,
vehicle-mounted sensors, humans).  We do not have such a deployment, so this
package simulates one with the statistical properties the paper emphasises:

* sensors move (mobility models), so their spatial distribution is skewed
  and time-varying;
* humans respond unpredictably (participation and latency models), so the
  data-generation rate cannot be controlled directly;
* incentives change participation (incentive-response curves), matching the
  paper's Section VI extension.

The :class:`RequestResponseHandler` is the server-side component from the
paper's architecture (Fig. 1): it sends budget-limited acquisition requests
to randomly selected sensors and collects their (possibly missing, possibly
delayed) responses.
"""

from .clock import SimulationClock
from .state import ArrayBackedMobilityState, SensorStateArrays
from .sensor import MobileSensor, SensorState
from .mobility import (
    MobilityModel,
    RandomWaypointMobility,
    RandomWalkMobility,
    GaussMarkovMobility,
    HotspotMobility,
    StationaryMobility,
)
from .phenomena import (
    PhenomenonField,
    RainField,
    TemperatureField,
    ConstantField,
)
from .participation import (
    ParticipationModel,
    ResponseDecision,
    AlwaysRespond,
    BernoulliParticipation,
    DistanceDecayParticipation,
    FatigueParticipation,
)
from .incentives import IncentiveScheme, FlatIncentive, LinearIncentiveResponse, incentive_boost
from .handler import AcquisitionRequest, AcquisitionResponse, RequestResponseHandler, HandlerReport
from .world import SensingWorld, WorldConfig
from .errors import GpsNoiseModel, ValueErrorModel, ErrorInjector

__all__ = [
    "SimulationClock",
    "ArrayBackedMobilityState",
    "SensorStateArrays",
    "MobileSensor",
    "SensorState",
    "MobilityModel",
    "RandomWaypointMobility",
    "RandomWalkMobility",
    "GaussMarkovMobility",
    "HotspotMobility",
    "StationaryMobility",
    "PhenomenonField",
    "RainField",
    "TemperatureField",
    "ConstantField",
    "ParticipationModel",
    "ResponseDecision",
    "AlwaysRespond",
    "BernoulliParticipation",
    "DistanceDecayParticipation",
    "FatigueParticipation",
    "IncentiveScheme",
    "FlatIncentive",
    "LinearIncentiveResponse",
    "incentive_boost",
    "AcquisitionRequest",
    "AcquisitionResponse",
    "RequestResponseHandler",
    "HandlerReport",
    "SensingWorld",
    "WorldConfig",
    "GpsNoiseModel",
    "ValueErrorModel",
    "ErrorInjector",
]
