"""Participation models: whether and when a mobile sensor responds.

The paper stresses that response behaviour is uncontrollable: "His/her reply
could be unpredictably delayed for several reasons: he/she is not interested
in responding at this moment, he/she thinks that the incentive offered for
responding is not enough or he/she has moved to a different location."

A participation model decides, for one acquisition request, whether a sensor
responds at all and with what latency.  Models compose with the incentive
schemes of :mod:`repro.sensing.incentives`: a higher incentive multiplies the
base response probability.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Tuple

import numpy as np

from ..errors import CraqrError
from ..rng import ensure_rng


@dataclass(frozen=True)
class ResponseDecision:
    """Outcome of a participation decision for one request."""

    responds: bool
    latency: float = 0.0

    @classmethod
    def no_response(cls) -> "ResponseDecision":
        """The sensor ignores the request."""
        return cls(responds=False, latency=0.0)


class ParticipationModel(ABC):
    """Abstract decision model for responding to acquisition requests."""

    #: Whether :meth:`decide` consumes no randomness (and no per-request
    #: mutable state whose order matters), so the batched acquisition path
    #: may decide all of a sensor's requests at once without perturbing the
    #: sensor's RNG stream.  Models with interleaved draws (respond check,
    #: latency, then the sensing draw) must leave this ``False`` — the
    #: sensor then falls back to the per-request loop, which keeps the
    #: columnar and object paths byte-identical.
    batch_safe = False

    @abstractmethod
    def decide(
        self,
        sensor_id: int,
        t: float,
        *,
        incentive_multiplier: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> ResponseDecision:
        """Decide whether sensor ``sensor_id`` responds to a request sent at ``t``."""

    def vector_params(self) -> Optional[Tuple[float, float, float, bool]]:
        """Stationary decision parameters for the fast-sim acquisition path.

        Returns ``(p_base, p_max, latency_mean, incentive_sensitive)`` —
        base response probability, the cap applied after incentive boosting,
        the mean of the exponential response latency, and whether incentives
        scale the probability at all — or ``None`` when the model's
        decisions depend on mutable per-request state (fatigue, externally
        updated distances), in which case the fast-sim handler falls back to
        the exact per-sensor loop.  These parameters are copied into the
        world's :class:`~repro.sensing.state.SensorStateArrays` columns at
        sensor construction so a whole cell population's responses can be
        sampled with one draw from the shared stream.
        """
        return None

    # ------------------------------------------------------------------
    # Vector-state protocol (stateful fast-sim acquisition)
    # ------------------------------------------------------------------
    def vector_state_columns(self) -> Optional[Tuple[str, ...]]:
        """Names of the SoA columns backing the model's mutable state.

        Stateful models that can evaluate and update their state with array
        operations (fatigue recurrences, distance lookups) return the column
        names they need in :class:`~repro.sensing.state.SensorStateArrays`;
        the world then allocates the columns, calls
        :meth:`init_vector_state` per sensor, and groups rows by
        :meth:`vector_state_key` so the fast-sim handler can decide a whole
        round with :meth:`vector_probabilities` / :meth:`vector_commit`.
        ``None`` (the default) means the model has no vectorised state — if
        it also lacks stationary :meth:`vector_params`, fast-sim cells
        containing it fall back to the exact per-sensor round.
        """
        return None

    def vector_state_key(self) -> Optional[Hashable]:
        """Hashable grouping key for the vector-state dispatch.

        Rows whose models share a key are evaluated by a single
        representative instance, so the key must capture every parameter
        :meth:`vector_probabilities` / :meth:`vector_commit` read from
        ``self`` (their per-sensor state lives in the SoA columns, never on
        the instance).  ``None`` when the model has no vector state.
        """
        return None

    def vector_static_params(self) -> Tuple[float, float, bool]:
        """``(p_max, latency_mean, incentive_sensitive)`` for vector-state rows.

        The incentive cap and the latency mean are stationary even for
        stateful models, so the handler keeps them in the shared SoA
        parameter columns and only asks :meth:`vector_probabilities` for the
        time-varying base probability.
        """
        raise NotImplementedError

    def init_vector_state(self, soa, index: int) -> None:
        """Write the sensor's initial state into its SoA row.

        Called once per sensor at world construction, after the columns
        named by :meth:`vector_state_columns` have been allocated.  Models
        that expose setter APIs keyed by sensor id (e.g.
        :meth:`DistanceDecayParticipation.set_distance`) may also record the
        binding here so later setter calls write through to the column.
        """
        raise NotImplementedError

    def vector_probabilities(
        self, soa, rows: np.ndarray, times: np.ndarray
    ) -> np.ndarray:
        """Base response probabilities (before incentives) for SoA ``rows``.

        ``times`` is aligned with ``rows`` (one request per entry; a row may
        repeat when a cell was sampled with replacement).  Must not consume
        randomness or mutate state — state updates happen in
        :meth:`vector_commit`.
        """
        raise NotImplementedError

    def vector_commit(self, soa, rows: np.ndarray, times: np.ndarray) -> None:
        """Apply the round's state updates for the requested ``rows``.

        Called once per acquisition round with every request (answered or
        not), after :meth:`vector_probabilities`.  Fast-sim applies state
        at round granularity: repeated rows accumulate all of the round's
        per-request effects at the row's latest request time, which is
        statistically equivalent to the per-request scalar updates for
        batch windows short relative to the state dynamics.
        """
        raise NotImplementedError

    def decide_many(
        self,
        sensor_id: int,
        times: np.ndarray,
        *,
        incentive_multiplier: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Decide a whole run of requests; returns ``(responds, latencies)`` arrays.

        The fallback loops :meth:`decide`; batch-safe models override it
        with a vectorised implementation.
        """
        times = np.asarray(times, dtype=float)
        responds = np.zeros(times.shape[0], dtype=bool)
        latencies = np.zeros(times.shape[0], dtype=float)
        for i in range(times.shape[0]):
            decision = self.decide(
                sensor_id, float(times[i]), incentive_multiplier=incentive_multiplier, rng=rng
            )
            responds[i] = decision.responds
            latencies[i] = decision.latency
        return responds, latencies


class AlwaysRespond(ParticipationModel):
    """Every request is answered immediately (idealised sensor-sensed attribute)."""

    batch_safe = True

    def decide(self, sensor_id, t, *, incentive_multiplier=1.0, rng=None):
        del sensor_id, t, incentive_multiplier, rng
        return ResponseDecision(responds=True, latency=0.0)

    def decide_many(self, sensor_id, times, *, incentive_multiplier=1.0, rng=None):
        del sensor_id, incentive_multiplier, rng
        times = np.asarray(times, dtype=float)
        n = times.shape[0]
        return np.ones(n, dtype=bool), np.zeros(n, dtype=float)

    def vector_params(self):
        # Always responds, never delayed, deaf to incentives.
        return (1.0, 1.0, 0.0, False)


class BernoulliParticipation(ParticipationModel):
    """Responds with a fixed probability and an exponential latency.

    Parameters
    ----------
    probability:
        Base probability of responding to a single request.
    mean_latency:
        Mean of the exponential response latency (time units).
    max_probability:
        Cap applied after incentive boosting (people cannot respond more
        than always).
    """

    def __init__(
        self,
        probability: float = 0.5,
        *,
        mean_latency: float = 0.2,
        max_probability: float = 0.98,
    ) -> None:
        if not 0 < probability <= 1:
            raise CraqrError("probability must be in (0, 1]")
        if mean_latency < 0:
            raise CraqrError("mean_latency must be non-negative")
        if not probability <= max_probability <= 1:
            raise CraqrError("max_probability must be in [probability, 1]")
        self._probability = probability
        self._mean_latency = mean_latency
        self._max_probability = max_probability

    @property
    def base_probability(self) -> float:
        """The un-boosted response probability."""
        return self._probability

    def decide(self, sensor_id, t, *, incentive_multiplier=1.0, rng=None):
        del sensor_id, t
        rng = ensure_rng(rng)
        probability = min(self._probability * incentive_multiplier, self._max_probability)
        if rng.random() >= probability:
            return ResponseDecision.no_response()
        latency = float(rng.exponential(self._mean_latency)) if self._mean_latency > 0 else 0.0
        return ResponseDecision(responds=True, latency=latency)

    def vector_params(self):
        return (self._probability, self._max_probability, self._mean_latency, True)


class DistanceDecayParticipation(ParticipationModel):
    """Response probability decays with distance from a point of interest.

    Models "he/she has moved to a different location, which now is not of
    interest to the query": sensors far from the query's focus are less
    likely to answer.  The caller supplies each sensor's current distance via
    :meth:`set_distance` before asking for decisions.

    ``max_probability`` caps the probability after incentive boosting, with
    the same semantics as :class:`BernoulliParticipation` (people cannot
    respond more than always, and usually a little less).
    """

    #: SoA column holding each sensor's current distance from the focus.
    DISTANCE_COLUMN = "participation_distance"

    def __init__(
        self,
        base_probability: float = 0.8,
        *,
        decay_scale: float = 0.5,
        mean_latency: float = 0.2,
        max_probability: float = 1.0,
    ) -> None:
        if not 0 < base_probability <= 1:
            raise CraqrError("base_probability must be in (0, 1]")
        if decay_scale <= 0:
            raise CraqrError("decay_scale must be positive")
        if mean_latency < 0:
            raise CraqrError("mean_latency must be non-negative")
        if not base_probability <= max_probability <= 1:
            raise CraqrError("max_probability must be in [base_probability, 1]")
        self._base_probability = base_probability
        self._decay_scale = decay_scale
        self._mean_latency = mean_latency
        self._max_probability = max_probability
        self._distances: Dict[int, float] = {}
        #: sensor_id -> (SensorStateArrays, row) write-through bindings
        self._vector_rows: Dict[int, Tuple[object, int]] = {}

    @property
    def max_probability(self) -> float:
        """Cap applied after incentive boosting."""
        return self._max_probability

    def set_distance(self, sensor_id: int, distance: float) -> None:
        """Record the sensor's distance from the query focus.

        Writes through to the sensor's SoA distance column when the model is
        bound to a vectorised world, so fast-sim rounds see the update.
        """
        if distance < 0:
            raise CraqrError("distance must be non-negative")
        self._distances[sensor_id] = distance
        bound = self._vector_rows.get(sensor_id)
        if bound is not None:
            soa, row = bound
            soa.column(self.DISTANCE_COLUMN)[row] = distance

    def decide(self, sensor_id, t, *, incentive_multiplier=1.0, rng=None):
        del t
        rng = ensure_rng(rng)
        distance = self._distances.get(sensor_id, 0.0)
        probability = self._base_probability * math.exp(-distance / self._decay_scale)
        probability = min(probability * incentive_multiplier, self._max_probability)
        if rng.random() >= probability:
            return ResponseDecision.no_response()
        latency = float(rng.exponential(self._mean_latency)) if self._mean_latency > 0 else 0.0
        return ResponseDecision(responds=True, latency=latency)

    # -- vector-state protocol ------------------------------------------
    def vector_state_columns(self):
        return (self.DISTANCE_COLUMN,)

    def vector_state_key(self):
        return (
            "distance_decay",
            self._base_probability,
            self._decay_scale,
            self._mean_latency,
            self._max_probability,
        )

    def vector_static_params(self):
        return (self._max_probability, self._mean_latency, True)

    def init_vector_state(self, soa, index):
        sensor_id = int(soa.sensor_ids[index])
        soa.column(self.DISTANCE_COLUMN)[index] = self._distances.get(sensor_id, 0.0)
        self._vector_rows[sensor_id] = (soa, index)

    def vector_probabilities(self, soa, rows, times):
        del times  # distance decay is time-invariant within a round
        distances = soa.column(self.DISTANCE_COLUMN)[rows]
        return self._base_probability * np.exp(-distances / self._decay_scale)

    def vector_commit(self, soa, rows, times):
        pass  # requests do not change the distance state


class FatigueParticipation(ParticipationModel):
    """Response probability drops as a sensor receives more requests.

    Repeatedly pinging the same participant wears them out; the probability
    recovers slowly over time.  This creates the diminishing returns that
    make pure budget escalation less effective than incentives — the
    behaviour explored in the incentives benchmark (E11).

    ``max_probability`` caps the probability after incentive boosting, with
    the same semantics as :class:`BernoulliParticipation`.
    """

    #: SoA columns holding each sensor's fatigue level and last decision time.
    LEVEL_COLUMN = "fatigue_level"
    LAST_TIME_COLUMN = "fatigue_last_t"

    def __init__(
        self,
        base_probability: float = 0.7,
        *,
        fatigue_per_request: float = 0.05,
        recovery_per_time: float = 0.01,
        min_probability: float = 0.05,
        mean_latency: float = 0.2,
        max_probability: float = 1.0,
    ) -> None:
        if not 0 < base_probability <= 1:
            raise CraqrError("base_probability must be in (0, 1]")
        if fatigue_per_request < 0 or recovery_per_time < 0:
            raise CraqrError("fatigue and recovery rates must be non-negative")
        if not 0 <= min_probability <= base_probability:
            raise CraqrError("min_probability must be in [0, base_probability]")
        if mean_latency < 0:
            raise CraqrError("mean_latency must be non-negative")
        if not base_probability <= max_probability <= 1:
            raise CraqrError("max_probability must be in [base_probability, 1]")
        self._base_probability = base_probability
        self._fatigue_per_request = fatigue_per_request
        self._recovery_per_time = recovery_per_time
        self._min_probability = min_probability
        self._mean_latency = mean_latency
        self._max_probability = max_probability
        #: per-sensor (fatigue level, last decision time) for unbound sensors
        self._fatigue: Dict[int, Tuple[float, float]] = {}
        #: sensor_id -> (SensorStateArrays, row): once a sensor is bound to
        #: SoA vector state, the columns are its *only* fatigue store — the
        #: scalar decide()/current_probability() read and write them too,
        #: so the per-sensor fallback round and the fused vector round see
        #: one coherent state instead of drifting copies.
        self._vector_rows: Dict[int, Tuple[object, int]] = {}

    @property
    def max_probability(self) -> float:
        """Cap applied after incentive boosting."""
        return self._max_probability

    def _load_state(self, sensor_id: int, t: float) -> Tuple[float, float]:
        bound = self._vector_rows.get(sensor_id)
        if bound is not None:
            soa, row = bound
            return (
                float(soa.column(self.LEVEL_COLUMN)[row]),
                float(soa.column(self.LAST_TIME_COLUMN)[row]),
            )
        return self._fatigue.get(sensor_id, (0.0, t))

    def _store_state(self, sensor_id: int, fatigue: float, t: float) -> None:
        bound = self._vector_rows.get(sensor_id)
        if bound is not None:
            soa, row = bound
            soa.column(self.LEVEL_COLUMN)[row] = fatigue
            soa.column(self.LAST_TIME_COLUMN)[row] = t
        else:
            self._fatigue[sensor_id] = (fatigue, t)

    def current_probability(self, sensor_id: int, t: float) -> float:
        """The sensor's response probability at time ``t`` (before incentives)."""
        fatigue, last_time = self._load_state(sensor_id, t)
        recovered = max(0.0, fatigue - self._recovery_per_time * max(t - last_time, 0.0))
        return max(self._base_probability - recovered, self._min_probability)

    def decide(self, sensor_id, t, *, incentive_multiplier=1.0, rng=None):
        rng = ensure_rng(rng)
        probability = min(
            self.current_probability(sensor_id, t) * incentive_multiplier,
            self._max_probability,
        )
        fatigue, last_time = self._load_state(sensor_id, t)
        recovered = max(0.0, fatigue - self._recovery_per_time * max(t - last_time, 0.0))
        self._store_state(sensor_id, recovered + self._fatigue_per_request, t)
        if rng.random() >= probability:
            return ResponseDecision.no_response()
        latency = float(rng.exponential(self._mean_latency)) if self._mean_latency > 0 else 0.0
        return ResponseDecision(responds=True, latency=latency)

    # -- vector-state protocol ------------------------------------------
    def vector_state_columns(self):
        return (self.LEVEL_COLUMN, self.LAST_TIME_COLUMN)

    def vector_state_key(self):
        return (
            "fatigue",
            self._base_probability,
            self._fatigue_per_request,
            self._recovery_per_time,
            self._min_probability,
            self._mean_latency,
            self._max_probability,
        )

    def vector_static_params(self):
        return (self._max_probability, self._mean_latency, True)

    def init_vector_state(self, soa, index):
        sensor_id = int(soa.sensor_ids[index])
        fatigue, last_time = self._fatigue.pop(sensor_id, (0.0, 0.0))
        soa.column(self.LEVEL_COLUMN)[index] = fatigue
        soa.column(self.LAST_TIME_COLUMN)[index] = last_time
        self._vector_rows[sensor_id] = (soa, index)

    def _recovered_levels(
        self, levels: np.ndarray, last_times: np.ndarray, times: np.ndarray
    ) -> np.ndarray:
        """Fatigue left after recovery between the last decision and ``times``."""
        elapsed = np.maximum(times - last_times, 0.0)
        return np.maximum(levels - self._recovery_per_time * elapsed, 0.0)

    def vector_probabilities(self, soa, rows, times):
        levels = soa.column(self.LEVEL_COLUMN)[rows]
        last_times = soa.column(self.LAST_TIME_COLUMN)[rows]
        recovered = self._recovered_levels(levels, last_times, np.asarray(times, dtype=float))
        return np.maximum(self._base_probability - recovered, self._min_probability)

    def vector_commit(self, soa, rows, times):
        levels = soa.column(self.LEVEL_COLUMN)
        last_times = soa.column(self.LAST_TIME_COLUMN)
        times = np.asarray(times, dtype=float)
        unique_rows, inverse = np.unique(rows, return_inverse=True)
        # Latest request time and request count per distinct row: the round's
        # recovery is applied once (an array recurrence over the round) and
        # the whole round's fatigue lands at that latest time.
        latest = np.full(unique_rows.shape[0], -np.inf)
        np.maximum.at(latest, inverse, times)
        counts = np.bincount(inverse, minlength=unique_rows.shape[0])
        recovered = self._recovered_levels(
            levels[unique_rows], last_times[unique_rows], latest
        )
        levels[unique_rows] = recovered + self._fatigue_per_request * counts
        last_times[unique_rows] = latest
