"""Participation models: whether and when a mobile sensor responds.

The paper stresses that response behaviour is uncontrollable: "His/her reply
could be unpredictably delayed for several reasons: he/she is not interested
in responding at this moment, he/she thinks that the incentive offered for
responding is not enough or he/she has moved to a different location."

A participation model decides, for one acquisition request, whether a sensor
responds at all and with what latency.  Models compose with the incentive
schemes of :mod:`repro.sensing.incentives`: a higher incentive multiplies the
base response probability.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import CraqrError


@dataclass(frozen=True)
class ResponseDecision:
    """Outcome of a participation decision for one request."""

    responds: bool
    latency: float = 0.0

    @classmethod
    def no_response(cls) -> "ResponseDecision":
        """The sensor ignores the request."""
        return cls(responds=False, latency=0.0)


class ParticipationModel(ABC):
    """Abstract decision model for responding to acquisition requests."""

    #: Whether :meth:`decide` consumes no randomness (and no per-request
    #: mutable state whose order matters), so the batched acquisition path
    #: may decide all of a sensor's requests at once without perturbing the
    #: sensor's RNG stream.  Models with interleaved draws (respond check,
    #: latency, then the sensing draw) must leave this ``False`` — the
    #: sensor then falls back to the per-request loop, which keeps the
    #: columnar and object paths byte-identical.
    batch_safe = False

    @abstractmethod
    def decide(
        self,
        sensor_id: int,
        t: float,
        *,
        incentive_multiplier: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> ResponseDecision:
        """Decide whether sensor ``sensor_id`` responds to a request sent at ``t``."""

    def vector_params(self) -> Optional[Tuple[float, float, float, bool]]:
        """Stationary decision parameters for the fast-sim acquisition path.

        Returns ``(p_base, p_max, latency_mean, incentive_sensitive)`` —
        base response probability, the cap applied after incentive boosting,
        the mean of the exponential response latency, and whether incentives
        scale the probability at all — or ``None`` when the model's
        decisions depend on mutable per-request state (fatigue, externally
        updated distances), in which case the fast-sim handler falls back to
        the exact per-sensor loop.  These parameters are copied into the
        world's :class:`~repro.sensing.state.SensorStateArrays` columns at
        sensor construction so a whole cell population's responses can be
        sampled with one draw from the shared stream.
        """
        return None

    def decide_many(
        self,
        sensor_id: int,
        times: np.ndarray,
        *,
        incentive_multiplier: float = 1.0,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Decide a whole run of requests; returns ``(responds, latencies)`` arrays.

        The fallback loops :meth:`decide`; batch-safe models override it
        with a vectorised implementation.
        """
        times = np.asarray(times, dtype=float)
        responds = np.zeros(times.shape[0], dtype=bool)
        latencies = np.zeros(times.shape[0], dtype=float)
        for i in range(times.shape[0]):
            decision = self.decide(
                sensor_id, float(times[i]), incentive_multiplier=incentive_multiplier, rng=rng
            )
            responds[i] = decision.responds
            latencies[i] = decision.latency
        return responds, latencies


class AlwaysRespond(ParticipationModel):
    """Every request is answered immediately (idealised sensor-sensed attribute)."""

    batch_safe = True

    def decide(self, sensor_id, t, *, incentive_multiplier=1.0, rng=None):
        del sensor_id, t, incentive_multiplier, rng
        return ResponseDecision(responds=True, latency=0.0)

    def decide_many(self, sensor_id, times, *, incentive_multiplier=1.0, rng=None):
        del sensor_id, incentive_multiplier, rng
        times = np.asarray(times, dtype=float)
        n = times.shape[0]
        return np.ones(n, dtype=bool), np.zeros(n, dtype=float)

    def vector_params(self):
        # Always responds, never delayed, deaf to incentives.
        return (1.0, 1.0, 0.0, False)


class BernoulliParticipation(ParticipationModel):
    """Responds with a fixed probability and an exponential latency.

    Parameters
    ----------
    probability:
        Base probability of responding to a single request.
    mean_latency:
        Mean of the exponential response latency (time units).
    max_probability:
        Cap applied after incentive boosting (people cannot respond more
        than always).
    """

    def __init__(
        self,
        probability: float = 0.5,
        *,
        mean_latency: float = 0.2,
        max_probability: float = 0.98,
    ) -> None:
        if not 0 < probability <= 1:
            raise CraqrError("probability must be in (0, 1]")
        if mean_latency < 0:
            raise CraqrError("mean_latency must be non-negative")
        if not probability <= max_probability <= 1:
            raise CraqrError("max_probability must be in [probability, 1]")
        self._probability = probability
        self._mean_latency = mean_latency
        self._max_probability = max_probability

    @property
    def base_probability(self) -> float:
        """The un-boosted response probability."""
        return self._probability

    def decide(self, sensor_id, t, *, incentive_multiplier=1.0, rng=None):
        del sensor_id, t
        rng = rng if rng is not None else np.random.default_rng()
        probability = min(self._probability * incentive_multiplier, self._max_probability)
        if rng.random() >= probability:
            return ResponseDecision.no_response()
        latency = float(rng.exponential(self._mean_latency)) if self._mean_latency > 0 else 0.0
        return ResponseDecision(responds=True, latency=latency)

    def vector_params(self):
        return (self._probability, self._max_probability, self._mean_latency, True)


class DistanceDecayParticipation(ParticipationModel):
    """Response probability decays with distance from a point of interest.

    Models "he/she has moved to a different location, which now is not of
    interest to the query": sensors far from the query's focus are less
    likely to answer.  The caller supplies each sensor's current distance via
    :meth:`set_distance` before asking for decisions.
    """

    def __init__(
        self,
        base_probability: float = 0.8,
        *,
        decay_scale: float = 0.5,
        mean_latency: float = 0.2,
    ) -> None:
        if not 0 < base_probability <= 1:
            raise CraqrError("base_probability must be in (0, 1]")
        if decay_scale <= 0:
            raise CraqrError("decay_scale must be positive")
        if mean_latency < 0:
            raise CraqrError("mean_latency must be non-negative")
        self._base_probability = base_probability
        self._decay_scale = decay_scale
        self._mean_latency = mean_latency
        self._distances: Dict[int, float] = {}

    def set_distance(self, sensor_id: int, distance: float) -> None:
        """Record the sensor's distance from the query focus."""
        if distance < 0:
            raise CraqrError("distance must be non-negative")
        self._distances[sensor_id] = distance

    def decide(self, sensor_id, t, *, incentive_multiplier=1.0, rng=None):
        del t
        rng = rng if rng is not None else np.random.default_rng()
        distance = self._distances.get(sensor_id, 0.0)
        probability = self._base_probability * math.exp(-distance / self._decay_scale)
        probability = min(probability * incentive_multiplier, 1.0)
        if rng.random() >= probability:
            return ResponseDecision.no_response()
        latency = float(rng.exponential(self._mean_latency)) if self._mean_latency > 0 else 0.0
        return ResponseDecision(responds=True, latency=latency)


class FatigueParticipation(ParticipationModel):
    """Response probability drops as a sensor receives more requests.

    Repeatedly pinging the same participant wears them out; the probability
    recovers slowly over time.  This creates the diminishing returns that
    make pure budget escalation less effective than incentives — the
    behaviour explored in the incentives benchmark (E11).
    """

    def __init__(
        self,
        base_probability: float = 0.7,
        *,
        fatigue_per_request: float = 0.05,
        recovery_per_time: float = 0.01,
        min_probability: float = 0.05,
        mean_latency: float = 0.2,
    ) -> None:
        if not 0 < base_probability <= 1:
            raise CraqrError("base_probability must be in (0, 1]")
        if fatigue_per_request < 0 or recovery_per_time < 0:
            raise CraqrError("fatigue and recovery rates must be non-negative")
        if not 0 <= min_probability <= base_probability:
            raise CraqrError("min_probability must be in [0, base_probability]")
        if mean_latency < 0:
            raise CraqrError("mean_latency must be non-negative")
        self._base_probability = base_probability
        self._fatigue_per_request = fatigue_per_request
        self._recovery_per_time = recovery_per_time
        self._min_probability = min_probability
        self._mean_latency = mean_latency
        #: per-sensor (fatigue level, last decision time)
        self._fatigue: Dict[int, Tuple[float, float]] = {}

    def current_probability(self, sensor_id: int, t: float) -> float:
        """The sensor's response probability at time ``t`` (before incentives)."""
        fatigue, last_time = self._fatigue.get(sensor_id, (0.0, t))
        recovered = max(0.0, fatigue - self._recovery_per_time * max(t - last_time, 0.0))
        return max(self._base_probability - recovered, self._min_probability)

    def decide(self, sensor_id, t, *, incentive_multiplier=1.0, rng=None):
        rng = rng if rng is not None else np.random.default_rng()
        probability = min(self.current_probability(sensor_id, t) * incentive_multiplier, 1.0)
        fatigue, last_time = self._fatigue.get(sensor_id, (0.0, t))
        recovered = max(0.0, fatigue - self._recovery_per_time * max(t - last_time, 0.0))
        self._fatigue[sensor_id] = (recovered + self._fatigue_per_request, t)
        if rng.random() >= probability:
            return ResponseDecision.no_response()
        latency = float(rng.exponential(self._mean_latency)) if self._mean_latency > 0 else 0.0
        return ResponseDecision(responds=True, latency=latency)
