"""The request/response handler (paper Section IV-A).

The handler "has the task of sending data acquisition requests to mobile
sensors and collecting their responses".  Its key parameter is the *budget*:
the number of acquisition requests per attribute and per grid cell that may
be sent in a given duration.  Requests go to a randomly selected set of
mobile sensors, "sampled with or without replacement, depending on the
number of mobile sensors available".

The handler is deliberately unaware of queries and topologies: it produces a
batch of raw :class:`~repro.streams.tuples.SensorTuple` observations per grid
cell per acquisition round, which the crowdsensed stream fabricator then
pushes through PMAT topologies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import AcquisitionError, BudgetError, GeometryError
from ..faults import FaultInjector, ResilienceConfig, SensorHealthMonitor
from ..geometry import Grid, GridCell
from ..streams import SensorTuple, TupleBatch, make_tuple_id_allocator
from .incentives import FlatIncentive, IncentiveScheme
from .world import SensingWorld

CellKey = Tuple[int, int]


@dataclass(frozen=True)
class AcquisitionRequest:
    """One acquisition request sent to one sensor."""

    attribute: str
    cell: CellKey
    sensor_id: int
    sent_at: float
    incentive: float = 0.0


@dataclass(frozen=True)
class AcquisitionResponse:
    """One response received from a sensor (already shaped as a tuple)."""

    request: AcquisitionRequest
    tuple: SensorTuple


@dataclass
class HandlerReport:
    """Book-keeping of one acquisition round.

    Attributes
    ----------
    requests_sent:
        Total requests dispatched this round (retry waves included).
    responses_received:
        Total responses *accepted* this round — injected transit drops and
        deadline timeouts are not received.
    per_cell_requests / per_cell_responses:
        Breakdown per ``(attribute, cell)`` pair.
    incentive_spent:
        Total incentive paid this round.  With a retry policy configured
        incentives are paid per accepted response; otherwise per request.
    timeouts / per_cell_timeouts:
        Responses dropped for missing the configured response deadline.
    drops_injected / per_cell_drops:
        Responses lost in transit by the fault injector (simulator-side
        ground truth, enabling fault attribution of rate shortfalls).
    retries_sent / per_cell_retries:
        Requests dispatched by retry waves (a subset of ``requests_sent``).
    """

    requests_sent: int = 0
    responses_received: int = 0
    per_cell_requests: Dict[Tuple[str, CellKey], int] = field(default_factory=dict)
    per_cell_responses: Dict[Tuple[str, CellKey], int] = field(default_factory=dict)
    incentive_spent: float = 0.0
    timeouts: int = 0
    drops_injected: int = 0
    retries_sent: int = 0
    per_cell_timeouts: Dict[Tuple[str, CellKey], int] = field(default_factory=dict)
    per_cell_drops: Dict[Tuple[str, CellKey], int] = field(default_factory=dict)
    per_cell_retries: Dict[Tuple[str, CellKey], int] = field(default_factory=dict)

    @property
    def response_rate(self) -> float:
        """Fraction of requests that were answered (0 when nothing was sent)."""
        if self.requests_sent == 0:
            return 0.0
        return self.responses_received / self.requests_sent

    def response_rate_for(
        self, attribute: str, cell: CellKey
    ) -> Optional[float]:
        """One pair's accepted-response rate, or ``None`` without requests.

        ``None`` keeps "no requests were sent" (an empty or fully
        quarantined cell) distinguishable from "requests were sent and none
        were answered" (0.0) — conflating the two would make a silent cell
        look like a total outage and vice versa.
        """
        sent = self.per_cell_requests.get((attribute, cell), 0)
        if sent == 0:
            return None
        return self.per_cell_responses.get((attribute, cell), 0) / sent


class RequestResponseHandler:
    """Budget-limited acquisition of crowdsensed observations.

    Parameters
    ----------
    world:
        The sensing world the requests go to.
    grid:
        The logical grid over the world region; budgets are per cell.
    default_budget:
        Budget used for ``(attribute, cell)`` pairs that have not been set
        explicitly.
    incentive:
        Optional incentive scheme attached to every request; ``None`` means
        no payment (multiplier 1).
    faults:
        Optional :class:`~repro.faults.FaultInjector` corrupting responses
        in transit (drops, stuck-at replay, outliers, latency inflation,
        clock skew).  The injector draws from its own seeded stream, so
        ``None`` leaves every path byte-identical to a fault-free build.
    resilience:
        Optional :class:`~repro.faults.ResilienceConfig`: response deadline
        (late responses dropped as timeouts) and retry policy (failed
        requests retried from a withheld per-cell reserve with replacement
        draws; budgets are never exceeded and incentives are then paid per
        accepted response only).
    health:
        Optional :class:`~repro.faults.SensorHealthMonitor`; when attached,
        every wave's per-sensor outcome is reported to it and quarantined
        rows are masked out of candidate populations (one extra mask AND in
        the bucketing pass — it stays one pass).
    """

    def __init__(
        self,
        world: SensingWorld,
        grid: Grid,
        *,
        default_budget: int = 50,
        incentive: Optional[IncentiveScheme] = None,
        faults: Optional[FaultInjector] = None,
        resilience: Optional[ResilienceConfig] = None,
        health: Optional[SensorHealthMonitor] = None,
    ) -> None:
        if default_budget <= 0:
            raise BudgetError("default_budget must be positive")
        self._world = world
        self._grid = grid
        self._default_budget = default_budget
        self._budgets: Dict[Tuple[str, CellKey], int] = {}
        self._incentive = incentive
        self._faults = faults
        self._resilience = resilience
        self._health = health
        self._retry = resilience.retry if resilience is not None else None
        self._deadline = resilience.deadline if resilience is not None else None
        self._allocate_tuple_id = make_tuple_id_allocator()
        self._total_requests = 0
        self._total_responses = 0
        self._rounds = 0

    # ------------------------------------------------------------------
    # Budget management (consumed by the budget tuner)
    # ------------------------------------------------------------------
    @property
    def grid(self) -> Grid:
        """The grid the handler partitions budgets over."""
        return self._grid

    @property
    def default_budget(self) -> int:
        """Budget used when no per-cell budget has been set."""
        return self._default_budget

    def budget_for(self, attribute: str, cell: CellKey) -> int:
        """The current budget ``beta`` for an attribute on a grid cell."""
        return self._budgets.get((attribute, cell), self._default_budget)

    def set_budget(self, attribute: str, cell: CellKey, budget: int) -> None:
        """Set the budget for an attribute on a grid cell."""
        if budget <= 0:
            raise BudgetError("budget must be positive")
        self._budgets[(attribute, cell)] = int(budget)

    def budgets(self) -> Dict[Tuple[str, CellKey], int]:
        """A copy of all explicitly set budgets."""
        return dict(self._budgets)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def total_requests(self) -> int:
        """Requests sent over the handler's lifetime."""
        return self._total_requests

    @property
    def total_responses(self) -> int:
        """Responses received over the handler's lifetime."""
        return self._total_responses

    @property
    def rounds(self) -> int:
        """Number of acquisition rounds executed."""
        return self._rounds

    @property
    def faults(self) -> Optional[FaultInjector]:
        """The attached fault injector, if any."""
        return self._faults

    @property
    def resilience(self) -> Optional[ResilienceConfig]:
        """The attached resilience configuration, if any."""
        return self._resilience

    @property
    def health_monitor(self) -> Optional[SensorHealthMonitor]:
        """The attached sensor-health monitor, if any."""
        return self._health

    @property
    def _plain(self) -> bool:
        """Whether the strict paths may run their pre-fault legacy bodies.

        With no injector, no resilience and no health monitor the legacy
        bodies execute byte-for-byte the pre-fault code, which is what pins
        the "no FaultPlan -> byte-identical" contract.
        """
        return (
            self._faults is None
            and self._resilience is None
            and self._health is None
        )

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------
    def _incentive_for_request(self) -> Tuple[float, float]:
        """Return ``(payment, multiplier)`` for the next request."""
        if self._incentive is None:
            return (0.0, 1.0)
        payment = self._incentive.payment_for_request()
        return (payment, self._incentive.multiplier())

    def acquire_cell(
        self,
        attribute: str,
        cell: GridCell,
        *,
        duration: float,
        report: Optional[HandlerReport] = None,
    ) -> List[SensorTuple]:
        """Run one acquisition round for one attribute on one grid cell.

        Sends up to ``budget`` requests to sensors currently inside the cell
        (sampling without replacement when enough sensors are available,
        with replacement otherwise, per the paper) spread uniformly over the
        batch window, and returns the tuples for the responses received.

        With faults, resilience or health attached the round runs through
        the shared strict wave implementation (:meth:`_acquire_cell_strict`)
        and materialises its batch; otherwise the pre-fault body below runs
        byte-for-byte.
        """
        field_model, budget, indices, key = self._start_round(
            attribute, cell, duration=duration
        )
        report = report if report is not None else HandlerReport()
        if indices.size == 0:
            return []
        if not self._plain:
            batch = self._acquire_cell_strict(
                attribute, field_model, budget, indices, key, cell,
                duration=duration, report=report,
            )
            return [] if batch is None else batch.to_tuples()
        sensors = self._world.sensors_at(indices)

        # A round always dispatches exactly `budget` requests: count them
        # once per round instead of once per request.
        self._count_requests(report, key, budget)
        chosen_indices, request_times = self._sample_requests(
            len(sensors), budget, duration
        )
        collected: List[SensorTuple] = []
        for index, request_time in zip(chosen_indices, request_times):
            sensor = sensors[int(index)]
            payment, multiplier = self._incentive_for_request()
            report.incentive_spent += payment
            row = sensor.handle_request(
                field_model, float(request_time), incentive_multiplier=multiplier
            )
            if row is None:
                continue
            response_time, x, y, value = row
            item = SensorTuple(
                tuple_id=self._allocate_tuple_id(),
                attribute=attribute,
                t=float(response_time),
                x=float(x),
                y=float(y),
                value=value,
                sensor_id=sensor.sensor_id,
                metadata={"cell": cell.key, "incentive": payment},
            )
            collected.append(item)
        self._count_responses(report, key, len(collected))
        return collected

    def _start_round(self, attribute: str, cell: GridCell, *, duration: float):
        """Validate and resolve everything one acquisition round needs.

        The cell population is returned as SoA row indices (one boolean
        mask over the position columns); callers that need the sensor view
        objects expand them with :meth:`SensingWorld.sensors_at`.
        """
        if duration <= 0:
            raise AcquisitionError("duration must be positive")
        field_model = self._world.field_for(attribute)
        budget = self.budget_for(attribute, cell.key)
        indices = self._world.sensor_indices_in_rectangle(cell.rect)
        if self._health is not None and indices.size:
            indices = indices[~self._world.state_arrays.quarantined[indices]]
        return field_model, budget, indices, (attribute, cell.key)

    def _round_payments(self, budget: int) -> Tuple[np.ndarray, np.ndarray]:
        """Per-request payments and probability multipliers for one round."""
        if self._incentive is None:
            return np.zeros(budget), np.ones(budget)
        return self._incentive.payments_for_requests(budget)

    def _allocate_tuple_ids(self, count: int) -> np.ndarray:
        """Allocate ``count`` consecutive tuple ids as an int64 column."""
        return self._allocate_tuple_id.allocate_block(count)

    @staticmethod
    def _cell_column(cell: GridCell, count: int) -> np.ndarray:
        """An ``(count, 2)`` column repeating the cell key for batch extras."""
        column = np.empty((count, 2), dtype=np.int64)
        column[:, 0] = cell.key[0]
        column[:, 1] = cell.key[1]
        return column

    def _sample_requests(self, sensor_count: int, budget: int, duration: float):
        """Draw the round's sensor choices and request times from the world RNG.

        Sampling without replacement when enough sensors are available, with
        replacement otherwise (per the paper); times are spread uniformly
        over the batch window.  Both acquisition paths share this method, so
        their world-RNG draw order is identical by construction.
        """
        rng = self._world.rng
        if sensor_count >= budget:
            chosen_indices = rng.choice(sensor_count, size=budget, replace=False)
        else:
            chosen_indices = rng.choice(sensor_count, size=budget, replace=True)
        t_start = self._world.now
        request_times = np.sort(rng.uniform(t_start, t_start + duration, size=budget))
        return chosen_indices, request_times

    def _count_requests(self, report: HandlerReport, key, count: int) -> None:
        self._total_requests += count
        report.requests_sent += count
        report.per_cell_requests[key] = report.per_cell_requests.get(key, 0) + count

    def _count_responses(self, report: HandlerReport, key, count: int) -> None:
        self._total_responses += count
        report.responses_received += count
        report.per_cell_responses[key] = report.per_cell_responses.get(key, 0) + count

    @staticmethod
    def _count_retries(report: HandlerReport, key, count: int) -> None:
        report.retries_sent += count
        report.per_cell_retries[key] = report.per_cell_retries.get(key, 0) + count

    def _finalize_wave(
        self,
        attribute: str,
        rows: np.ndarray,
        request_times: np.ndarray,
        segments: np.ndarray,
        cell_keys: Tuple[CellKey, ...],
        responded: np.ndarray,
        latencies: np.ndarray,
        values: np.ndarray,
        report: HandlerReport,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Apply faults and the response deadline to one assembled wave.

        Every acquisition path funnels its wave through here with the same
        column layout — ``rows`` / ``request_times`` / ``segments`` per
        request (``segments`` indexing ``cell_keys``), ``latencies`` /
        ``values`` per response — so the injector consumes its private
        stream identically regardless of the path, and drop/timeout
        accounting lives in exactly one place.

        Returns ``(accepted, response_times, accepted_values)``:
        ``accepted`` is a boolean per request, the other two align with the
        accepted responses in request order.  Response timestamps include
        injected clock skew, clamped to the batch-window start so no tuple
        predates its window (the views layer's frame contract).
        """
        resp_index = np.nonzero(responded)[0]
        dropped = np.zeros(resp_index.size, dtype=bool)
        skew = None
        if self._faults is not None:
            outcome = self._faults.apply_round(
                attribute,
                rows=rows,
                request_times=request_times,
                segments=segments,
                cell_keys=cell_keys,
                responded=responded,
                latencies=latencies,
                values=values,
            )
            dropped = outcome.dropped
            latencies = outcome.latencies
            values = outcome.values
            skew = outcome.skew
            if dropped.any():
                counts = np.bincount(
                    segments[resp_index[dropped]], minlength=len(cell_keys)
                )
                for key, count in zip(cell_keys, counts):
                    if count:
                        pair = (attribute, key)
                        report.per_cell_drops[pair] = (
                            report.per_cell_drops.get(pair, 0) + int(count)
                        )
                report.drops_injected += int(dropped.sum())
        if self._deadline is not None and resp_index.size:
            timed_out = ~dropped & (np.asarray(latencies) > self._deadline)
            if timed_out.any():
                counts = np.bincount(
                    segments[resp_index[timed_out]], minlength=len(cell_keys)
                )
                for key, count in zip(cell_keys, counts):
                    if count:
                        pair = (attribute, key)
                        report.per_cell_timeouts[pair] = (
                            report.per_cell_timeouts.get(pair, 0) + int(count)
                        )
                report.timeouts += int(timed_out.sum())
                dropped = dropped | timed_out
        accepted = responded.copy()
        keep = ~dropped
        if dropped.any():
            accepted[resp_index[dropped]] = False
        times = request_times[resp_index[keep]] + np.asarray(latencies)[keep]
        if skew is not None:
            times = np.maximum(times + skew[keep], self._world.now)
        accepted_values = np.asarray(values)[keep]
        if self._health is not None:
            self._health.observe(rows, accepted)
            self._health.observe_values(attribute, rows[accepted], accepted_values)
        return accepted, times, accepted_values

    def _settle_wave_payments(
        self, payments: np.ndarray, accepted: np.ndarray, report: HandlerReport
    ) -> np.ndarray:
        """Pay-on-accept settlement of one retry-mode wave.

        Payments were drawn (and recorded by the scheme) per request; the
        unaccepted requests' share is refunded so only accepted responses
        cost anything.  Returns the accepted responses' payments (the
        batch's ``incentive`` extra column).
        """
        accepted_payments = payments[accepted]
        report.incentive_spent += float(accepted_payments.sum())
        if self._incentive is not None:
            rejected = ~accepted
            refund = float(payments[rejected].sum())
            count = int(rejected.sum())
            if count:
                self._incentive.refund(refund, count)
        return accepted_payments

    def acquire_cell_batch(
        self,
        attribute: str,
        cell: GridCell,
        *,
        duration: float,
        report: Optional[HandlerReport] = None,
    ) -> Optional[TupleBatch]:
        """Columnar :meth:`acquire_cell`: one round, returned as a :class:`TupleBatch`.

        Draws from the world RNG in exactly the same order as
        :meth:`acquire_cell` (sensor choice, then request times) and
        preserves each sensor's private RNG stream by answering a sensor's
        requests in ascending-time order, so for a given seed both paths
        produce identical observations and identical tuple ids.  The
        difference is that no :class:`SensorTuple` objects are created:
        responses land directly in numpy columns.

        In fast-sim mode (``WorldConfig.vectorized_rng``) the round instead
        samples the whole cell population at once from the world's shared
        stream: participation decisions, latencies and phenomenon values are
        single vectorised draws over the SoA columns, served by the fused
        round (:meth:`_acquire_fused_round`) with this cell as its only
        segment — so fault injection, deadlines and retries exist in exactly
        one fast-sim implementation.  Stateful models that implement the
        vector-state protocol (fatigue, distance decay) are decided
        vectorially through their participation group; only cells containing
        a sensor whose model supports neither stationary ``vector_params``
        nor vector state fall back to the exact per-sensor round.
        """
        field_model, budget, indices, key = self._start_round(
            attribute, cell, duration=duration
        )
        report = report if report is not None else HandlerReport()
        if indices.size == 0:
            return None
        world = self._world
        if world.vectorized and bool(
            np.all(world.state_arrays.vector_participation[indices])
        ):
            return self._acquire_fused_round(
                attribute, field_model, [cell], [indices],
                duration=duration, report=report,
            )
        if not self._plain:
            return self._acquire_cell_strict(
                attribute, field_model, budget, indices, key, cell,
                duration=duration, report=report,
            )
        sensors = world.sensors_at(indices)

        self._count_requests(report, key, budget)
        chosen_indices, request_times = self._sample_requests(
            len(sensors), budget, duration
        )
        payments, multipliers = self._round_payments(budget)
        report.incentive_spent += float(payments.sum())

        chosen = np.asarray(chosen_indices)
        positions: List[np.ndarray] = []
        t_parts: List[np.ndarray] = []
        x_parts: List[np.ndarray] = []
        y_parts: List[np.ndarray] = []
        value_parts: List[np.ndarray] = []
        sensor_parts: List[np.ndarray] = []
        for index in np.unique(chosen):
            mask = chosen == index
            sensor = sensors[int(index)]
            answered, response_times, xs, ys, values = sensor.handle_requests(
                field_model, request_times[mask], incentive_multiplier=multipliers[mask]
            )
            if response_times.shape[0] == 0:
                continue
            positions.append(np.nonzero(mask)[0][answered])
            t_parts.append(response_times)
            x_parts.append(xs)
            y_parts.append(ys)
            value_parts.append(np.asarray(values))
            sensor_parts.append(
                np.full(response_times.shape[0], sensor.sensor_id, dtype=np.int64)
            )

        if not positions:
            self._count_responses(report, key, 0)
            return None

        all_positions = np.concatenate(positions)
        # Reassemble the per-sensor responses into global request-time order
        # so tuple ids are allocated exactly as the object path allocates
        # them (one id per response, in request order).
        order = np.argsort(all_positions, kind="stable")
        count = all_positions.shape[0]
        self._count_responses(report, key, count)
        return TupleBatch(
            attribute,
            np.concatenate(t_parts)[order],
            np.concatenate(x_parts)[order],
            np.concatenate(y_parts)[order],
            np.concatenate(value_parts)[order],
            np.concatenate(sensor_parts)[order],
            self._allocate_tuple_ids(count),
            extra={
                "cell": self._cell_column(cell, count),
                "incentive": payments[all_positions[order]],
            },
        )

    def _acquire_cell_strict(
        self,
        attribute: str,
        field_model,
        budget: int,
        indices: np.ndarray,
        key,
        cell: GridCell,
        *,
        duration: float,
        report: HandlerReport,
    ) -> Optional[TupleBatch]:
        """Exact per-sensor acquisition with faults, deadline and retries.

        The shared strict implementation behind both :meth:`acquire_cell`
        and :meth:`acquire_cell_batch` whenever faults, resilience or health
        are attached: waves of requests are answered per sensor from the
        sensors' private streams (grouped exactly like the plain columnar
        body, so for a given seed both public paths produce identical
        observations and tuple ids), assembled into request-order columns
        and funnelled through :meth:`_finalize_wave`.  With a retry policy
        configured, a reserve of the cell budget is withheld from the first
        wave and failed requests are retried with replacement draws from the
        not-yet-contacted population; the cell budget is never exceeded.
        """
        world = self._world
        rng = world.rng
        sensors = world.sensors_at(indices)
        population = len(sensors)
        retry = self._retry
        if retry is None:
            reserve = 0
            wave_budget = budget
            attempts = 1
        else:
            reserve = min(int(budget * retry.reserve_fraction), budget - 1)
            reserve = max(reserve, 0)
            wave_budget = budget - reserve
            attempts = retry.max_attempts
        contacted = np.zeros(population, dtype=bool)
        cell_keys = (cell.key,)
        t_parts: List[np.ndarray] = []
        x_parts: List[np.ndarray] = []
        y_parts: List[np.ndarray] = []
        value_parts: List[np.ndarray] = []
        sensor_parts: List[np.ndarray] = []
        payment_parts: List[np.ndarray] = []
        failures = 0
        for wave in range(attempts):
            if wave == 0:
                chosen, request_times = self._sample_requests(
                    population, wave_budget, duration
                )
            else:
                size = min(failures, reserve)
                if size <= 0:
                    break
                reserve -= size
                fresh = np.nonzero(~contacted)[0]
                # Replacement draws from the not-yet-contacted population;
                # an exhausted population falls back to with-replacement
                # over everyone (matching the paper's undersized-cell rule).
                if fresh.size >= size:
                    chosen = fresh[rng.choice(fresh.size, size=size, replace=False)]
                else:
                    chosen = rng.choice(population, size=size, replace=True)
                t_start = world.now
                request_times = np.sort(
                    rng.uniform(t_start, t_start + duration, size=size)
                )
                self._count_retries(report, key, size)
            chosen = np.asarray(chosen)
            contacted[chosen] = True
            n = chosen.shape[0]
            self._count_requests(report, key, n)
            payments, multipliers = self._round_payments(n)
            if retry is None:
                report.incentive_spent += float(payments.sum())

            positions: List[np.ndarray] = []
            wave_t: List[np.ndarray] = []
            wave_x: List[np.ndarray] = []
            wave_y: List[np.ndarray] = []
            wave_v: List[np.ndarray] = []
            wave_sid: List[np.ndarray] = []
            for index in np.unique(chosen):
                mask = chosen == index
                sensor = sensors[int(index)]
                answered, response_times, xs, ys, values = sensor.handle_requests(
                    field_model,
                    request_times[mask],
                    incentive_multiplier=multipliers[mask],
                )
                if response_times.shape[0] == 0:
                    continue
                positions.append(np.nonzero(mask)[0][answered])
                wave_t.append(response_times)
                wave_x.append(xs)
                wave_y.append(ys)
                wave_v.append(np.asarray(values))
                wave_sid.append(
                    np.full(response_times.shape[0], sensor.sensor_id, dtype=np.int64)
                )

            responded = np.zeros(n, dtype=bool)
            if positions:
                all_positions = np.concatenate(positions)
                order = np.argsort(all_positions, kind="stable")
                ordered_positions = all_positions[order]
                responded[ordered_positions] = True
                latencies = (
                    np.concatenate(wave_t)[order] - request_times[ordered_positions]
                )
                values_arr = np.concatenate(wave_v)[order]
                xs_arr = np.concatenate(wave_x)[order]
                ys_arr = np.concatenate(wave_y)[order]
                sid_arr = np.concatenate(wave_sid)[order]
            else:
                latencies = np.empty(0)
                values_arr = np.empty(0, dtype=object)
                xs_arr = ys_arr = np.empty(0)
                sid_arr = np.empty(0, dtype=np.int64)

            accepted, times, accepted_values = self._finalize_wave(
                attribute,
                indices[chosen],
                request_times,
                np.zeros(n, dtype=np.int64),
                cell_keys,
                responded,
                latencies,
                values_arr,
                report,
            )
            if retry is None:
                accepted_payments = payments[accepted]
            else:
                accepted_payments = self._settle_wave_payments(
                    payments, accepted, report
                )
            accepted_count = int(accepted.sum())
            self._count_responses(report, key, accepted_count)
            if accepted_count:
                # Accepted responses, filtered in request order.
                resp_keep = accepted[np.nonzero(responded)[0]]
                t_parts.append(times)
                x_parts.append(xs_arr[resp_keep])
                y_parts.append(ys_arr[resp_keep])
                value_parts.append(accepted_values)
                sensor_parts.append(sid_arr[resp_keep])
                payment_parts.append(accepted_payments)
            failures = n - accepted_count
            if failures == 0:
                break

        if not t_parts:
            return None
        count = sum(part.shape[0] for part in t_parts)
        return TupleBatch(
            attribute,
            np.concatenate(t_parts),
            np.concatenate(x_parts),
            np.concatenate(y_parts),
            np.concatenate(value_parts),
            np.concatenate(sensor_parts),
            self._allocate_tuple_ids(count),
            extra={
                "cell": self._cell_column(cell, count),
                "incentive": np.concatenate(payment_parts),
            },
        )

    # ------------------------------------------------------------------
    # Vectorised participation (shared by the cell-level and fused rounds)
    # ------------------------------------------------------------------
    def _vector_response_probabilities(
        self, rows: np.ndarray, times: np.ndarray, multipliers: np.ndarray
    ) -> np.ndarray:
        """Final response probabilities for the requested SoA ``rows``.

        Stationary rows read the participation parameter columns directly;
        rows of a stateful vector-participation group are routed to the
        group's representative model (one
        :meth:`~repro.sensing.participation.ParticipationModel.vector_probabilities`
        call per distinct group in the round).  Incentive boosting and the
        per-row ``p_max`` cap apply uniformly to both kinds.
        """
        soa = self._world.state_arrays
        base = soa.p_base[rows]  # fancy indexing: a fresh array, safe to edit
        group_ids = soa.participation_group[rows]
        stateful = group_ids >= 0
        if np.any(stateful):
            groups = self._world.participation_groups
            for group_id in np.unique(group_ids[stateful]):
                mask = group_ids == group_id
                base[mask] = groups[int(group_id)].vector_probabilities(
                    soa, rows[mask], times[mask]
                )
        return np.where(
            soa.incentive_sensitive[rows],
            np.minimum(base * multipliers, soa.p_max[rows]),
            base,
        )

    def _vector_commit_round(self, rows: np.ndarray, times: np.ndarray) -> None:
        """Apply the round's state updates for stateful participation rows."""
        soa = self._world.state_arrays
        group_ids = soa.participation_group[rows]
        stateful = group_ids >= 0
        if not np.any(stateful):
            return
        groups = self._world.participation_groups
        for group_id in np.unique(group_ids[stateful]):
            mask = group_ids == group_id
            groups[int(group_id)].vector_commit(soa, rows[mask], times[mask])

    def _bucket_sensors(self) -> Tuple[np.ndarray, np.ndarray, frozenset]:
        """Bucket the whole crowd into grid cells, once per acquisition round.

        The expensive part of population resolution is independent of which
        cells (and which attribute) a round requests: every sensor's cell
        code is computed and sorted in one pass, so a multi-attribute round
        pays it once (:meth:`acquire_batches` threads the result through
        each attribute's :meth:`acquire_attribute_batch`).

        Returns ``(sorted_codes, sorted_rows, non_vector_codes)``: cell
        codes ascending with the SoA row indices aligned, plus the codes of
        cells hosting any sensor without vectorisable participation.
        """
        soa = self._world.state_arrays
        grid = self._grid
        region = grid.region
        side = grid.side
        xs, ys = soa.x, soa.y
        inside = (
            (region.x_min <= xs) & (xs <= region.x_max)
            & (region.y_min <= ys) & (ys <= region.y_max)
        )
        if self._health is not None and soa.quarantined.any():
            inside = inside & ~soa.quarantined
        if inside.all():
            # The common case (no mobility model escapes the region): work
            # on the columns directly, and the argsort result doubles as
            # the sorted row indices — no gathers at all.
            rows = None
            in_xs, in_ys = xs, ys
        else:
            rows = np.nonzero(inside)[0]
            in_xs, in_ys = xs[rows], ys[rows]
        # Same bucketing arithmetic as Grid.cells_for_points (including the
        # clamp of the outermost top/right boundary), inlined because the
        # containment check above already validated the coordinates.
        cell_width = region.width / side
        cell_height = region.height / side
        q = ((in_xs - region.x_min) / cell_width).astype(np.int64)
        r = ((in_ys - region.y_min) / cell_height).astype(np.int64)
        np.minimum(q, side - 1, out=q)
        np.minimum(r, side - 1, out=r)
        codes = r * side + q
        # Radix-sorting a narrow integer key is several times faster than
        # sorting int64; any practical grid fits in int16.
        sort_codes = codes.astype(np.int16) if side * side < 2 ** 15 else codes
        order = np.argsort(sort_codes, kind="stable")
        sorted_codes = sort_codes[order]
        sorted_rows = order if rows is None else rows[order]
        # Cells hosting any non-vectorisable sensor, computed in one mask
        # instead of one np.all per cell (and skipped entirely for the
        # common fully-vectorisable crowd).
        if soa.vector_participation.all():
            non_vector_codes = frozenset()
        else:
            non_vector_codes = frozenset(
                np.unique(  # craqr: ignore[CRQ401] - per distinct cell (already unique-reduced), not per row
                    sorted_codes[~soa.vector_participation[sorted_rows]]
                ).tolist()
            )
        return sorted_codes, sorted_rows, non_vector_codes

    def _resolve_cell_populations(
        self,
        cells: List[GridCell],
        bucketing: Optional[Tuple[np.ndarray, np.ndarray, frozenset]] = None,
    ) -> Tuple[Dict[CellKey, np.ndarray], Dict[CellKey, bool]]:
        """SoA row indices of every requested cell's population.

        Instead of one O(n) containment mask per cell, the crowd is
        bucketed once (:meth:`_bucket_sensors`, or the precomputed
        ``bucketing`` of the current round) and each requested cell's
        population is a slice lookup via two vectorised ``searchsorted``
        calls.  Sensors that escaped the region (possible only with
        out-of-bounds custom mobility models) are excluded, and cells that
        do not belong to the handler's grid are left out (the caller falls
        back to the exact per-cell containment round for them).  Sensors
        exactly on an interior cell edge land in one bucket (the upper
        cell) rather than both closed rectangles — indistinguishable
        statistically, which is the fused fast-sim round's contract.

        Returns ``(populations, fully_vector)``: the second map tells the
        caller, without any further per-cell array work, whether every row
        of a cell's population has vectorisable participation.
        """
        if bucketing is None:
            bucketing = self._bucket_sensors()
        sorted_codes, sorted_rows, non_vector_codes = bucketing
        side = self._grid.side
        wanted = np.array(
            [cell.r * side + cell.q for cell in cells], dtype=sorted_codes.dtype
        )
        lows = np.searchsorted(sorted_codes, wanted, side="left")
        highs = np.searchsorted(sorted_codes, wanted, side="right")
        populations: Dict[CellKey, np.ndarray] = {}
        fully_vector: Dict[CellKey, bool] = {}
        for cell, lo, hi, code in zip(  # craqr: ignore[CRQ402] - per requested cell, not per sensor row
            cells, lows.tolist(), highs.tolist(), wanted.tolist()  # craqr: ignore[CRQ401] - len(cells) scalars, cheaper unboxed once
        ):
            populations[cell.key] = sorted_rows[lo:hi]
            fully_vector[cell.key] = code not in non_vector_codes
        return populations, fully_vector

    def _cell_in_grid(self, cell: GridCell) -> bool:
        """Whether ``cell`` is (geometrically) a cell of the handler's grid."""
        try:
            return self._grid.cell(cell.q, cell.r) == cell
        except GeometryError:
            return False

    def acquire_attribute_batch(
        self,
        attribute: str,
        cells: List[GridCell],
        *,
        duration: float,
        report: Optional[HandlerReport] = None,
        bucketing: Optional[Tuple[np.ndarray, np.ndarray, frozenset]] = None,
        round_cache: Optional[dict] = None,
    ) -> Optional[TupleBatch]:
        """Fused fast-sim acquisition: all of one attribute's cells in one round.

        A population-level fast round still ran once per ``(attribute,
        cell)`` pair — one containment mask, one participation draw, one
        latency draw, one ``field.values`` call and one :class:`TupleBatch`
        per cell.  This round fuses all requested
        cells of an attribute: every cell population is resolved by a single
        bucketing pass (:meth:`_resolve_cell_populations`), the chosen rows
        of all cells are concatenated, and the whole attribute is served
        with **one** participation draw, **one** latency draw and **one**
        ``field.values`` call, while per-cell budgets, request/response
        counts and incentive accounting stay exactly per ``(attribute,
        cell)``.

        Cells that cannot take the fused path — a population containing a
        sensor without vectorisable participation, or a cell that is not
        part of the handler's grid — are served by :meth:`acquire_cell_batch`
        (which itself falls back to the exact per-sensor round when
        needed).  Empty cells send nothing, as in the per-cell paths.

        Only meaningful in fast-sim mode (``WorldConfig.vectorized_rng``);
        :meth:`acquire_batches` dispatches here per attribute whenever the
        world is vectorised, sharing one :meth:`_bucket_sensors` pass across
        all attributes of the round via ``bucketing`` (sensor positions are
        frozen within a round, so the bucketing is too).  Returns one batch
        for the whole attribute (the target cell of every tuple rides in
        the ``cell`` extra column), or ``None`` when no responses arrived.
        """
        if duration <= 0:
            raise AcquisitionError("duration must be positive")
        world = self._world
        field_model = world.field_for(attribute)
        report = report if report is not None else HandlerReport()

        # The cell plan — on/off-grid split, resolved populations and the
        # fused/fallback partition — depends only on the requested cells
        # and the round's (frozen) sensor positions, so attributes of one
        # round requesting the same cells share it via ``round_cache``.
        plan = None
        plan_key = None
        if round_cache is not None:
            plan_key = ("plan", tuple(cell.key for cell in cells))
            plan = round_cache.get(plan_key)
        if plan is None:
            grid_cells: List[GridCell] = []
            off_grid: List[GridCell] = []
            for cell in cells:
                (grid_cells if self._cell_in_grid(cell) else off_grid).append(cell)
            populations, fully_vector = self._resolve_cell_populations(
                grid_cells, bucketing
            )

            fused_cells: List[GridCell] = []
            fused_populations: List[np.ndarray] = []
            fallback_cells: List[GridCell] = list(off_grid)
            for cell in grid_cells:
                population = populations[cell.key]
                if population.size == 0:
                    continue  # nobody to ask: no requests, like the per-cell paths
                if fully_vector[cell.key]:
                    fused_cells.append(cell)
                    fused_populations.append(population)
                else:
                    fallback_cells.append(cell)
            plan = (fused_cells, fused_populations, fallback_cells)
            if round_cache is not None:
                round_cache[plan_key] = plan
        else:
            fused_cells, fused_populations, fallback_cells = plan

        parts: List[TupleBatch] = []
        for cell in fallback_cells:
            batch = self.acquire_cell_batch(
                attribute, cell, duration=duration, report=report
            )
            if batch is not None and len(batch):
                parts.append(batch)

        fused = self._acquire_fused_round(
            attribute, field_model, fused_cells, fused_populations,
            duration=duration, report=report, round_cache=round_cache,
        )
        if fused is not None:
            parts.append(fused)
        if not parts:
            return None
        return TupleBatch.concatenate(parts)

    @staticmethod
    def _fused_sensor_choices(
        populations: List[np.ndarray],
        budgets: np.ndarray,
        rng: np.random.Generator,
        *,
        round_cache: Optional[dict] = None,
        cache_key=None,
    ) -> Tuple[np.ndarray, bool]:
        """Every cell's sensor choices in one vectorised draw.

        Pads the cell populations into an ``(m, max_population)`` matrix,
        draws one random key per candidate, and takes each row's ``budget``
        smallest keys via a single ``argpartition`` — a uniform
        without-replacement sample per cell (sorting the selected keys is a
        uniform shuffle, so the sample is also uniformly *ordered*, matching
        the per-cell ``rng.choice`` contract).  Two round shapes use the
        per-cell draws instead: cells whose population is smaller than
        their budget need with-replacement sampling, which the padded
        matrix cannot express, and heavily skewed crowds (one cell holding
        most of the population) would make the dense padding cost
        ``cells x max_population`` memory instead of ``O(candidates)``.

        Sensor positions are frozen within an acquisition round, so the
        padded candidate/key matrices depend only on the requested cells —
        not on the attribute being served.  A multi-attribute round passes
        ``round_cache`` (see :meth:`acquire_batches`): the first attribute
        builds the matrices, later attributes over the same cells reuse
        them and only redraw the random keys (the random draws themselves
        are never cached, so each attribute's sample stays independent and
        the stream consumption is identical with or without the cache).

        Returns ``(rows, replacement_used)`` with ``rows`` in cell-major
        request order.
        """
        sizes = np.fromiter(
            (population.size for population in populations),
            dtype=np.int64,
            count=len(populations),
        )
        m = len(populations)
        width = int(sizes.max())
        undersized = bool(np.any(sizes < budgets))
        skewed = m * width > max(4 * int(sizes.sum()), 1 << 16)
        if undersized or skewed:
            chosen_parts = []
            for population, budget in zip(populations, budgets):  # craqr: ignore[CRQ402] - per cell-population fallback, not per row
                budget = int(budget)
                replace = population.size < budget
                chosen_parts.append(
                    population[
                        rng.choice(population.size, size=budget, replace=replace)
                    ]
                )
            return np.concatenate(chosen_parts), undersized
        caching = round_cache is not None and cache_key is not None
        cached = round_cache.get(cache_key) if caching else None
        if cached is None:
            candidate_rows = np.concatenate(populations)
            segment_of_candidate = np.repeat(np.arange(m), sizes)
            within_segment = np.arange(candidate_rows.size) - np.repeat(
                np.cumsum(sizes) - sizes, sizes
            )
            padded_rows = np.zeros((m, width), dtype=np.int64)
            padded_rows[segment_of_candidate, within_segment] = candidate_rows
            key_template = np.full((m, width), np.inf)
            if caching:
                round_cache[cache_key] = (
                    candidate_rows,
                    segment_of_candidate,
                    within_segment,
                    padded_rows,
                    key_template,
                )
                keys = key_template.copy()
            else:
                keys = key_template  # sole user: no need to preserve the padding
        else:
            (
                candidate_rows,
                segment_of_candidate,
                within_segment,
                padded_rows,
                key_template,
            ) = cached
            keys = key_template.copy()
        keys[segment_of_candidate, within_segment] = rng.random(candidate_rows.size)

        max_budget = int(budgets.max())
        partitioned = np.argpartition(keys, max_budget - 1, axis=1)[:, :max_budget]
        partitioned_keys = np.take_along_axis(keys, partitioned, axis=1)
        ordered = np.take_along_axis(
            partitioned, np.argsort(partitioned_keys, axis=1), axis=1
        )
        row_ids = np.broadcast_to(np.arange(m)[:, None], ordered.shape)
        wanted = np.arange(max_budget)[None, :] < budgets[:, None]
        return padded_rows[row_ids, ordered][wanted], False

    @staticmethod
    def _fused_request_times(
        budgets: np.ndarray, duration: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Sorted request times for every cell segment from one draw.

        Uses the exponential-spacing construction of uniform order
        statistics — ``k`` sorted ``U(0, 1)`` samples are the first ``k``
        normalised prefix sums of ``k + 1`` iid exponentials — so no
        per-segment sort is needed: one exponential draw, two cumulative
        sums and a mask produce every cell's ascending request times
        (distributionally identical to the per-cell ``sort(uniform(...))``).
        """
        extended = np.asarray(budgets, dtype=np.int64) + 1
        draws = rng.exponential(1.0, int(extended.sum()))
        ends = np.cumsum(extended)
        cumulative = np.cumsum(draws)
        segment_base = np.concatenate(([0.0], cumulative[ends[:-1] - 1]))
        segment_totals = cumulative[ends - 1] - segment_base
        keep = np.ones(draws.size, dtype=bool)
        keep[ends - 1] = False
        uniforms = (
            (cumulative - np.repeat(segment_base, extended))[keep]
            / np.repeat(segment_totals, extended)[keep]
        )
        return duration * uniforms

    def _acquire_fused_round(
        self,
        attribute: str,
        field_model,
        cells: List[GridCell],
        populations: List[np.ndarray],
        *,
        duration: float,
        report: HandlerReport,
        round_cache: Optional[dict] = None,
    ) -> Optional[TupleBatch]:
        """The fused core: one draw of everything across the given cells.

        ``cells`` and ``populations`` are aligned; every population is
        non-empty and fully vector-capable.  Sensor choices keep the paper's
        with/without-replacement semantics but are drawn for all cells at
        once (:meth:`_fused_sensor_choices`), request times come from one
        order-statistics draw (:meth:`_fused_request_times`), and
        participation, latencies and sensing are single vectorised draws
        over the concatenated rows.

        With faults, resilience or health attached every wave funnels
        through :meth:`_run_fused_wave` / :meth:`_finalize_wave` (the same
        column protocol as the strict path, still one vectorised pass per
        wave) and a retry policy withholds a per-cell reserve from the
        first wave exactly as in :meth:`_acquire_cell_strict`; without any
        of them, the single-wave body below runs unchanged.
        """
        if not cells:
            return None
        world = self._world
        soa = world.state_arrays
        rng = world.rng

        fused_key = tuple(cell.key for cell in cells)
        budgets = np.array(
            [self.budget_for(attribute, key) for key in fused_key], dtype=np.int64
        )
        if not self._plain:
            return self._acquire_fused_resilient(
                attribute, field_model, cells, populations, fused_key, budgets,
                duration=duration, report=report, round_cache=round_cache,
            )
        total = int(budgets.sum())
        rows, replacement_used = self._fused_sensor_choices(
            populations,
            budgets,
            rng,
            round_cache=round_cache,
            cache_key=("choices", fused_key),
        )
        for key, budget in zip(fused_key, budgets):
            self._count_requests(report, (attribute, key), int(budget))

        segments = np.repeat(np.arange(len(cells)), budgets)
        request_times = world.now + self._fused_request_times(budgets, duration, rng)

        payments, multipliers = self._round_payments(total)
        report.incentive_spent += float(payments.sum())

        probabilities = self._vector_response_probabilities(
            rows, request_times, multipliers
        )
        self._vector_commit_round(rows, request_times)
        responds = rng.random(total) < probabilities
        if replacement_used:
            np.add.at(soa.requests_received, rows, 1)
        else:
            # Populations are disjoint across cells and sampled without
            # replacement within each, so every row is unique: the cheaper
            # fancy-index increment is exact.
            soa.requests_received[rows] += 1

        respond_segments = segments[responds]
        response_counts = np.bincount(respond_segments, minlength=len(cells))
        for key, count in zip(fused_key, response_counts):
            self._count_responses(report, (attribute, key), int(count))
        count = int(responds.sum())
        if count == 0:
            return None
        respond_rows = rows[responds]
        if replacement_used:
            np.add.at(soa.responses_sent, respond_rows, 1)
        else:
            soa.responses_sent[respond_rows] += 1

        # Exp(scale m) == m * Exp(1): one draw serves every per-sensor mean.
        latencies = rng.exponential(1.0, count) * soa.latency_mean[respond_rows]
        respond_times = request_times[responds]
        xs = soa.x[respond_rows]
        ys = soa.y[respond_rows]
        values = field_model.values(respond_times, xs, ys, rng=rng)
        cell_keys = np.array(fused_key, dtype=np.int64)
        return TupleBatch(
            attribute,
            respond_times + latencies,
            xs,
            ys,
            np.asarray(values),
            soa.sensor_ids[respond_rows],
            self._allocate_tuple_ids(count),
            extra={
                "cell": cell_keys[respond_segments],
                "incentive": payments[responds],
            },
        )

    def _run_fused_wave(
        self,
        attribute: str,
        field_model,
        fused_key: Tuple[CellKey, ...],
        rows: np.ndarray,
        request_times: np.ndarray,
        segments: np.ndarray,
        replacement_used: bool,
        report: HandlerReport,
    ):
        """Serve one fused wave under faults/resilience, fully vectorised.

        Draws participation, latencies and phenomenon values exactly like
        the plain fused round, then funnels the wave through
        :meth:`_finalize_wave` for fault injection, the response deadline
        and health observation.  Returns the accepted columns (in request
        order) plus the per-cell accepted counts the retry loop needs.
        """
        world = self._world
        soa = world.state_arrays
        rng = world.rng
        n = rows.size
        payments, multipliers = self._round_payments(n)
        probabilities = self._vector_response_probabilities(
            rows, request_times, multipliers
        )
        self._vector_commit_round(rows, request_times)
        responds = rng.random(n) < probabilities
        if replacement_used:
            np.add.at(soa.requests_received, rows, 1)
        else:
            soa.requests_received[rows] += 1
        count = int(responds.sum())
        respond_rows = rows[responds]
        if replacement_used:
            np.add.at(soa.responses_sent, respond_rows, 1)
        else:
            soa.responses_sent[respond_rows] += 1
        latencies = rng.exponential(1.0, count) * soa.latency_mean[respond_rows]
        respond_times = request_times[responds]
        xs = soa.x[respond_rows]
        ys = soa.y[respond_rows]
        if count:
            values = np.asarray(field_model.values(respond_times, xs, ys, rng=rng))
        else:
            values = np.empty(0)

        accepted, times, accepted_values = self._finalize_wave(
            attribute,
            rows,
            request_times,
            segments,
            fused_key,
            responds,
            latencies,
            values,
            report,
        )
        if self._retry is None:
            report.incentive_spent += float(payments.sum())
            accepted_payments = payments[accepted]
        else:
            accepted_payments = self._settle_wave_payments(
                payments, accepted, report
            )
        accepted_counts = np.bincount(segments[accepted], minlength=len(fused_key))
        for key, cell_count in zip(fused_key, accepted_counts):
            self._count_responses(report, (attribute, key), int(cell_count))
        resp_keep = accepted[np.nonzero(responds)[0]]
        return (
            times,
            xs[resp_keep],
            ys[resp_keep],
            accepted_values,
            soa.sensor_ids[respond_rows[resp_keep]],
            accepted_payments,
            segments[accepted],
            accepted_counts,
        )

    def _acquire_fused_resilient(
        self,
        attribute: str,
        field_model,
        cells: List[GridCell],
        populations: List[np.ndarray],
        fused_key: Tuple[CellKey, ...],
        budgets_full: np.ndarray,
        *,
        duration: float,
        report: HandlerReport,
        round_cache: Optional[dict] = None,
    ) -> Optional[TupleBatch]:
        """The fused round's fault/resilience wave loop.

        Wave 0 serves every cell with its budget minus the retry reserve;
        each later wave retries the failed requests of every cell from its
        withheld reserve with replacement draws from the not-yet-contacted
        population (falling back to with-replacement over the whole cell
        when exhausted).  Per-cell budgets are never exceeded.
        """
        world = self._world
        rng = world.rng
        m = len(cells)
        retry = self._retry
        if retry is None:
            reserves = np.zeros(m, dtype=np.int64)
            wave_budgets = budgets_full
            attempts = 1
        else:
            reserves = np.minimum(
                (budgets_full * retry.reserve_fraction).astype(np.int64),
                budgets_full - 1,
            )
            np.maximum(reserves, 0, out=reserves)
            wave_budgets = budgets_full - reserves
            attempts = retry.max_attempts

        contacted: List[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in range(m)
        ]
        t_parts: List[np.ndarray] = []
        x_parts: List[np.ndarray] = []
        y_parts: List[np.ndarray] = []
        value_parts: List[np.ndarray] = []
        sensor_parts: List[np.ndarray] = []
        payment_parts: List[np.ndarray] = []
        segment_parts: List[np.ndarray] = []
        failures = np.zeros(m, dtype=np.int64)
        for wave in range(attempts):
            if wave == 0:
                rows, replacement_used = self._fused_sensor_choices(
                    populations,
                    wave_budgets,
                    rng,
                    round_cache=round_cache,
                    cache_key=("choices", fused_key),
                )
                sizes = wave_budgets
            else:
                want = np.minimum(failures, reserves)
                if not want.any():
                    break
                reserves = reserves - want
                replacement_used = False
                retry_parts: List[np.ndarray] = []
                for i in range(m):
                    k = int(want[i])
                    if k == 0:
                        continue
                    population = populations[i]
                    fresh = np.setdiff1d(population, contacted[i])
                    # Replacement draws: fresh sensors first, falling back
                    # to with-replacement over the whole cell population.
                    if fresh.size >= k:
                        retry_parts.append(
                            fresh[rng.choice(fresh.size, size=k, replace=False)]
                        )
                    else:
                        retry_parts.append(
                            population[
                                rng.choice(population.size, size=k, replace=True)
                            ]
                        )
                        replacement_used = True
                    key = (attribute, fused_key[i])
                    self._count_retries(report, key, k)
                rows = np.concatenate(retry_parts)
                sizes = want
            segments = np.repeat(np.arange(m), sizes)
            request_times = world.now + self._fused_request_times(
                sizes, duration, rng
            )
            for key, size in zip(fused_key, sizes):
                if size:
                    self._count_requests(report, (attribute, key), int(size))
            # Record who was contacted before serving: retry draws of the
            # next wave must exclude this wave's rows.
            bounds = np.cumsum(sizes)[:-1]
            for i, part in enumerate(np.split(rows, bounds)):
                if part.size:
                    contacted[i] = np.concatenate((contacted[i], part))
            (
                times, xs, ys, values, sensor_ids, payments, seg_accepted,
                accepted_counts,
            ) = self._run_fused_wave(
                attribute, field_model, fused_key, rows, request_times,
                segments, replacement_used, report,
            )
            if times.size:
                t_parts.append(times)
                x_parts.append(xs)
                y_parts.append(ys)
                value_parts.append(values)
                sensor_parts.append(sensor_ids)
                payment_parts.append(payments)
                segment_parts.append(seg_accepted)
            failures = np.asarray(sizes, dtype=np.int64) - accepted_counts
            if retry is None or not failures.any():
                break

        if not t_parts:
            return None
        count = sum(part.shape[0] for part in t_parts)
        cell_keys = np.array(fused_key, dtype=np.int64)
        return TupleBatch(
            attribute,
            np.concatenate(t_parts),
            np.concatenate(x_parts),
            np.concatenate(y_parts),
            np.concatenate(value_parts),
            np.concatenate(sensor_parts),
            self._allocate_tuple_ids(count),
            extra={
                "cell": cell_keys[np.concatenate(segment_parts)],
                "incentive": np.concatenate(payment_parts),
            },
        )

    def acquire(
        self,
        attribute_cells: Dict[str, List[GridCell]],
        *,
        duration: float,
    ) -> Tuple[Dict[CellKey, List[SensorTuple]], HandlerReport]:
        """Run one acquisition round over several attributes and cells.

        Parameters
        ----------
        attribute_cells:
            Maps each attribute to the grid cells it must be acquired from
            (the cells that host at least one query for that attribute).
        duration:
            Length of the batch window.

        Returns
        -------
        A pair ``(tuples_by_cell, report)`` where ``tuples_by_cell`` groups
        the collected tuples by grid-cell key (all attributes merged, since
        the per-cell topology routes per attribute internally).
        """
        report = HandlerReport()
        tuples_by_cell: Dict[CellKey, List[SensorTuple]] = {}
        for attribute, cells in attribute_cells.items():
            for cell in cells:
                items = self.acquire_cell(
                    attribute, cell, duration=duration, report=report
                )
                if items:
                    tuples_by_cell.setdefault(cell.key, []).extend(items)
        for items in tuples_by_cell.values():
            items.sort(key=lambda item: item.t)
        if self._health is not None:
            self._health.commit_round()
        self._rounds += 1
        return tuples_by_cell, report

    def acquire_batches(
        self,
        attribute_cells: Dict[str, List[GridCell]],
        *,
        duration: float,
    ) -> Tuple[Dict[str, TupleBatch], HandlerReport]:
        """Columnar :meth:`acquire`: one acquisition round as per-attribute batches.

        Returns ``(batch_per_attribute, report)``.  Each batch carries the
        target cell of every tuple in its ``cell`` extra column; the
        fabricator's map stage re-buckets by the *reported* coordinates
        anyway, so no per-cell grouping is done here.

        In strict mode the round runs one seeded byte-identical
        :meth:`acquire_cell_batch` per ``(attribute, cell)`` pair; in
        fast-sim mode (``WorldConfig.vectorized_rng``) each attribute is
        served by one fused :meth:`acquire_attribute_batch` round instead,
        sharing one bucketing pass *and* one set of padded candidate/key
        matrices (keyed by the requested cell set) across all attributes of
        the round — the per-attribute work is then just the fresh random
        draws.
        """
        report = HandlerReport()
        batches: Dict[str, TupleBatch] = {}
        if self._world.vectorized:
            bucketing = self._bucket_sensors() if attribute_cells else None
            # Candidate/key matrices depend only on the requested cells, so
            # attributes of one round sharing a cell set share them too.
            round_cache: dict = {}
            for attribute, cells in attribute_cells.items():
                batch = self.acquire_attribute_batch(
                    attribute, cells, duration=duration, report=report,
                    bucketing=bucketing, round_cache=round_cache,
                )
                if batch is not None and len(batch):
                    batches[attribute] = batch
            if self._health is not None:
                self._health.commit_round()
            self._rounds += 1
            return batches, report
        per_attribute: Dict[str, List[TupleBatch]] = {}
        for attribute, cells in attribute_cells.items():
            for cell in cells:
                batch = self.acquire_cell_batch(
                    attribute, cell, duration=duration, report=report
                )
                if batch is not None and len(batch):
                    per_attribute.setdefault(attribute, []).append(batch)
        if self._health is not None:
            self._health.commit_round()
        self._rounds += 1
        return (
            {
                attribute: TupleBatch.concatenate(batches)
                for attribute, batches in per_attribute.items()
            },
            report,
        )
