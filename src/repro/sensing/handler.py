"""The request/response handler (paper Section IV-A).

The handler "has the task of sending data acquisition requests to mobile
sensors and collecting their responses".  Its key parameter is the *budget*:
the number of acquisition requests per attribute and per grid cell that may
be sent in a given duration.  Requests go to a randomly selected set of
mobile sensors, "sampled with or without replacement, depending on the
number of mobile sensors available".

The handler is deliberately unaware of queries and topologies: it produces a
batch of raw :class:`~repro.streams.tuples.SensorTuple` observations per grid
cell per acquisition round, which the crowdsensed stream fabricator then
pushes through PMAT topologies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import AcquisitionError, BudgetError
from ..geometry import Grid, GridCell
from ..streams import SensorTuple, TupleBatch, make_tuple_id_allocator
from .incentives import FlatIncentive, IncentiveScheme
from .world import SensingWorld

CellKey = Tuple[int, int]


@dataclass(frozen=True)
class AcquisitionRequest:
    """One acquisition request sent to one sensor."""

    attribute: str
    cell: CellKey
    sensor_id: int
    sent_at: float
    incentive: float = 0.0


@dataclass(frozen=True)
class AcquisitionResponse:
    """One response received from a sensor (already shaped as a tuple)."""

    request: AcquisitionRequest
    tuple: SensorTuple


@dataclass
class HandlerReport:
    """Book-keeping of one acquisition round.

    Attributes
    ----------
    requests_sent:
        Total requests dispatched this round.
    responses_received:
        Total responses collected this round.
    per_cell_requests / per_cell_responses:
        Breakdown per ``(attribute, cell)`` pair.
    incentive_spent:
        Total incentive paid this round.
    """

    requests_sent: int = 0
    responses_received: int = 0
    per_cell_requests: Dict[Tuple[str, CellKey], int] = field(default_factory=dict)
    per_cell_responses: Dict[Tuple[str, CellKey], int] = field(default_factory=dict)
    incentive_spent: float = 0.0

    @property
    def response_rate(self) -> float:
        """Fraction of requests that were answered (0 when nothing was sent)."""
        if self.requests_sent == 0:
            return 0.0
        return self.responses_received / self.requests_sent


class RequestResponseHandler:
    """Budget-limited acquisition of crowdsensed observations.

    Parameters
    ----------
    world:
        The sensing world the requests go to.
    grid:
        The logical grid over the world region; budgets are per cell.
    default_budget:
        Budget used for ``(attribute, cell)`` pairs that have not been set
        explicitly.
    incentive:
        Optional incentive scheme attached to every request; ``None`` means
        no payment (multiplier 1).
    """

    def __init__(
        self,
        world: SensingWorld,
        grid: Grid,
        *,
        default_budget: int = 50,
        incentive: Optional[IncentiveScheme] = None,
    ) -> None:
        if default_budget <= 0:
            raise BudgetError("default_budget must be positive")
        self._world = world
        self._grid = grid
        self._default_budget = default_budget
        self._budgets: Dict[Tuple[str, CellKey], int] = {}
        self._incentive = incentive
        self._allocate_tuple_id = make_tuple_id_allocator()
        self._total_requests = 0
        self._total_responses = 0
        self._rounds = 0

    # ------------------------------------------------------------------
    # Budget management (consumed by the budget tuner)
    # ------------------------------------------------------------------
    @property
    def grid(self) -> Grid:
        """The grid the handler partitions budgets over."""
        return self._grid

    @property
    def default_budget(self) -> int:
        """Budget used when no per-cell budget has been set."""
        return self._default_budget

    def budget_for(self, attribute: str, cell: CellKey) -> int:
        """The current budget ``beta`` for an attribute on a grid cell."""
        return self._budgets.get((attribute, cell), self._default_budget)

    def set_budget(self, attribute: str, cell: CellKey, budget: int) -> None:
        """Set the budget for an attribute on a grid cell."""
        if budget <= 0:
            raise BudgetError("budget must be positive")
        self._budgets[(attribute, cell)] = int(budget)

    def budgets(self) -> Dict[Tuple[str, CellKey], int]:
        """A copy of all explicitly set budgets."""
        return dict(self._budgets)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def total_requests(self) -> int:
        """Requests sent over the handler's lifetime."""
        return self._total_requests

    @property
    def total_responses(self) -> int:
        """Responses received over the handler's lifetime."""
        return self._total_responses

    @property
    def rounds(self) -> int:
        """Number of acquisition rounds executed."""
        return self._rounds

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------
    def _incentive_for_request(self) -> Tuple[float, float]:
        """Return ``(payment, multiplier)`` for the next request."""
        if self._incentive is None:
            return (0.0, 1.0)
        payment = self._incentive.payment_for_request()
        return (payment, self._incentive.multiplier())

    def acquire_cell(
        self,
        attribute: str,
        cell: GridCell,
        *,
        duration: float,
        report: Optional[HandlerReport] = None,
    ) -> List[SensorTuple]:
        """Run one acquisition round for one attribute on one grid cell.

        Sends up to ``budget`` requests to sensors currently inside the cell
        (sampling without replacement when enough sensors are available,
        with replacement otherwise, per the paper) spread uniformly over the
        batch window, and returns the tuples for the responses received.
        """
        field_model, budget, indices, key = self._start_round(
            attribute, cell, duration=duration
        )
        report = report if report is not None else HandlerReport()
        if indices.size == 0:
            return []
        sensors = self._world.sensors_at(indices)

        # A round always dispatches exactly `budget` requests: count them
        # once per round instead of once per request.
        self._count_requests(report, key, budget)
        chosen_indices, request_times = self._sample_requests(
            len(sensors), budget, duration
        )
        collected: List[SensorTuple] = []
        for index, request_time in zip(chosen_indices, request_times):
            sensor = sensors[int(index)]
            payment, multiplier = self._incentive_for_request()
            report.incentive_spent += payment
            row = sensor.handle_request(
                field_model, float(request_time), incentive_multiplier=multiplier
            )
            if row is None:
                continue
            response_time, x, y, value = row
            item = SensorTuple(
                tuple_id=self._allocate_tuple_id(),
                attribute=attribute,
                t=float(response_time),
                x=float(x),
                y=float(y),
                value=value,
                sensor_id=sensor.sensor_id,
                metadata={"cell": cell.key, "incentive": payment},
            )
            collected.append(item)
        self._count_responses(report, key, len(collected))
        return collected

    def _start_round(self, attribute: str, cell: GridCell, *, duration: float):
        """Validate and resolve everything one acquisition round needs.

        The cell population is returned as SoA row indices (one boolean
        mask over the position columns); callers that need the sensor view
        objects expand them with :meth:`SensingWorld.sensors_at`.
        """
        if duration <= 0:
            raise AcquisitionError("duration must be positive")
        field_model = self._world.field_for(attribute)
        budget = self.budget_for(attribute, cell.key)
        indices = self._world.sensor_indices_in_rectangle(cell.rect)
        return field_model, budget, indices, (attribute, cell.key)

    def _round_payments(self, budget: int) -> Tuple[np.ndarray, np.ndarray]:
        """Per-request payments and probability multipliers for one round."""
        if self._incentive is None:
            return np.zeros(budget), np.ones(budget)
        return self._incentive.payments_for_requests(budget)

    def _allocate_tuple_ids(self, count: int) -> np.ndarray:
        """Allocate ``count`` consecutive tuple ids as an int64 column."""
        return np.fromiter(
            (self._allocate_tuple_id() for _ in range(count)), dtype=np.int64, count=count
        )

    @staticmethod
    def _cell_column(cell: GridCell, count: int) -> np.ndarray:
        """An ``(count, 2)`` column repeating the cell key for batch extras."""
        column = np.empty((count, 2), dtype=np.int64)
        column[:, 0] = cell.key[0]
        column[:, 1] = cell.key[1]
        return column

    def _sample_requests(self, sensor_count: int, budget: int, duration: float):
        """Draw the round's sensor choices and request times from the world RNG.

        Sampling without replacement when enough sensors are available, with
        replacement otherwise (per the paper); times are spread uniformly
        over the batch window.  Both acquisition paths share this method, so
        their world-RNG draw order is identical by construction.
        """
        rng = self._world.rng
        if sensor_count >= budget:
            chosen_indices = rng.choice(sensor_count, size=budget, replace=False)
        else:
            chosen_indices = rng.choice(sensor_count, size=budget, replace=True)
        t_start = self._world.now
        request_times = np.sort(rng.uniform(t_start, t_start + duration, size=budget))
        return chosen_indices, request_times

    def _count_requests(self, report: HandlerReport, key, count: int) -> None:
        self._total_requests += count
        report.requests_sent += count
        report.per_cell_requests[key] = report.per_cell_requests.get(key, 0) + count

    def _count_responses(self, report: HandlerReport, key, count: int) -> None:
        self._total_responses += count
        report.responses_received += count
        report.per_cell_responses[key] = report.per_cell_responses.get(key, 0) + count

    def acquire_cell_batch(
        self,
        attribute: str,
        cell: GridCell,
        *,
        duration: float,
        report: Optional[HandlerReport] = None,
    ) -> Optional[TupleBatch]:
        """Columnar :meth:`acquire_cell`: one round, returned as a :class:`TupleBatch`.

        Draws from the world RNG in exactly the same order as
        :meth:`acquire_cell` (sensor choice, then request times) and
        preserves each sensor's private RNG stream by answering a sensor's
        requests in ascending-time order, so for a given seed both paths
        produce identical observations and identical tuple ids.  The
        difference is that no :class:`SensorTuple` objects are created:
        responses land directly in numpy columns.

        In fast-sim mode (``WorldConfig.vectorized_rng``) the round instead
        samples the whole cell population at once from the world's shared
        stream: participation decisions, latencies and phenomenon values are
        single vectorised draws over the SoA columns (see
        :meth:`_acquire_cell_batch_fast`).  Cells containing a sensor whose
        participation model cannot be vectorised fall back to the exact
        per-sensor round.
        """
        field_model, budget, indices, key = self._start_round(
            attribute, cell, duration=duration
        )
        report = report if report is not None else HandlerReport()
        if indices.size == 0:
            return None
        world = self._world
        if world.vectorized and bool(
            np.all(world.state_arrays.vector_participation[indices])
        ):
            return self._acquire_cell_batch_fast(
                attribute, field_model, budget, indices, key, cell,
                duration=duration, report=report,
            )
        sensors = world.sensors_at(indices)

        self._count_requests(report, key, budget)
        chosen_indices, request_times = self._sample_requests(
            len(sensors), budget, duration
        )
        payments, multipliers = self._round_payments(budget)
        report.incentive_spent += float(payments.sum())

        chosen = np.asarray(chosen_indices)
        positions: List[np.ndarray] = []
        t_parts: List[np.ndarray] = []
        x_parts: List[np.ndarray] = []
        y_parts: List[np.ndarray] = []
        value_parts: List[np.ndarray] = []
        sensor_parts: List[np.ndarray] = []
        for index in np.unique(chosen):
            mask = chosen == index
            sensor = sensors[int(index)]
            answered, response_times, xs, ys, values = sensor.handle_requests(
                field_model, request_times[mask], incentive_multiplier=multipliers[mask]
            )
            if response_times.shape[0] == 0:
                continue
            positions.append(np.nonzero(mask)[0][answered])
            t_parts.append(response_times)
            x_parts.append(xs)
            y_parts.append(ys)
            value_parts.append(np.asarray(values))
            sensor_parts.append(
                np.full(response_times.shape[0], sensor.sensor_id, dtype=np.int64)
            )

        if not positions:
            self._count_responses(report, key, 0)
            return None

        all_positions = np.concatenate(positions)
        # Reassemble the per-sensor responses into global request-time order
        # so tuple ids are allocated exactly as the object path allocates
        # them (one id per response, in request order).
        order = np.argsort(all_positions, kind="stable")
        count = all_positions.shape[0]
        self._count_responses(report, key, count)
        return TupleBatch(
            attribute,
            np.concatenate(t_parts)[order],
            np.concatenate(x_parts)[order],
            np.concatenate(y_parts)[order],
            np.concatenate(value_parts)[order],
            np.concatenate(sensor_parts)[order],
            self._allocate_tuple_ids(count),
            extra={
                "cell": self._cell_column(cell, count),
                "incentive": payments[all_positions[order]],
            },
        )

    def _acquire_cell_batch_fast(
        self,
        attribute: str,
        field_model,
        budget: int,
        indices: np.ndarray,
        key,
        cell: GridCell,
        *,
        duration: float,
        report: HandlerReport,
    ):
        """One fast-sim acquisition round, vectorised across the cell population.

        Instead of answering each chosen sensor from its private stream, the
        whole round draws from the world's shared generator: one uniform
        draw decides every participation outcome against the SoA probability
        columns, one exponential draw produces every latency, and one
        ``field.values`` call senses every response at the responders'
        current SoA positions.  :meth:`acquire_cell_batch` dispatches here
        only when every sensor in the cell exposes vectorisable
        participation parameters (``indices`` is the non-empty cell
        population it already resolved).

        Note: unlike the per-sensor paths, fast-sim does not journal
        observations into each sensor's local memory — at fast-sim scale the
        per-sensor journals are dead weight; request/response counters are
        still maintained (vectorially) in the SoA.
        """
        world = self._world
        soa = world.state_arrays
        self._count_requests(report, key, budget)
        chosen_indices, request_times = self._sample_requests(
            indices.size, budget, duration
        )
        payments, multipliers = self._round_payments(budget)
        report.incentive_spent += float(payments.sum())

        rows = indices[np.asarray(chosen_indices)]
        probabilities = np.where(
            soa.incentive_sensitive[rows],
            np.minimum(soa.p_base[rows] * multipliers, soa.p_max[rows]),
            soa.p_base[rows],
        )
        rng = world.rng
        responds = rng.random(budget) < probabilities
        # Rows repeat only when the cell held fewer sensors than the budget
        # (sampling with replacement); repeats need the unbuffered
        # scatter-add, unique rows take the cheaper fancy-index increment.
        unique_rows = indices.size >= budget
        if unique_rows:
            soa.requests_received[rows] += 1
        else:
            np.add.at(soa.requests_received, rows, 1)
        count = int(responds.sum())
        self._count_responses(report, key, count)
        if count == 0:
            return None
        respond_rows = rows[responds]
        if unique_rows:
            soa.responses_sent[respond_rows] += 1
        else:
            np.add.at(soa.responses_sent, respond_rows, 1)
        latency_means = soa.latency_mean[respond_rows]
        # Exp(scale m) == m * Exp(1): one draw serves every per-sensor mean
        # (zero means yield zero latency).
        latencies = rng.exponential(1.0, count) * latency_means
        respond_times = request_times[responds]
        xs = soa.x[respond_rows]
        ys = soa.y[respond_rows]
        values = field_model.values(respond_times, xs, ys, rng=rng)
        return TupleBatch(
            attribute,
            respond_times + latencies,
            xs,
            ys,
            np.asarray(values),
            soa.sensor_ids[respond_rows],
            self._allocate_tuple_ids(count),
            extra={
                "cell": self._cell_column(cell, count),
                "incentive": payments[responds],
            },
        )

    def acquire(
        self,
        attribute_cells: Dict[str, List[GridCell]],
        *,
        duration: float,
    ) -> Tuple[Dict[CellKey, List[SensorTuple]], HandlerReport]:
        """Run one acquisition round over several attributes and cells.

        Parameters
        ----------
        attribute_cells:
            Maps each attribute to the grid cells it must be acquired from
            (the cells that host at least one query for that attribute).
        duration:
            Length of the batch window.

        Returns
        -------
        A pair ``(tuples_by_cell, report)`` where ``tuples_by_cell`` groups
        the collected tuples by grid-cell key (all attributes merged, since
        the per-cell topology routes per attribute internally).
        """
        report = HandlerReport()
        tuples_by_cell: Dict[CellKey, List[SensorTuple]] = {}
        for attribute, cells in attribute_cells.items():
            for cell in cells:
                items = self.acquire_cell(
                    attribute, cell, duration=duration, report=report
                )
                if items:
                    tuples_by_cell.setdefault(cell.key, []).extend(items)
        for items in tuples_by_cell.values():
            items.sort(key=lambda item: item.t)
        self._rounds += 1
        return tuples_by_cell, report

    def acquire_batches(
        self,
        attribute_cells: Dict[str, List[GridCell]],
        *,
        duration: float,
    ) -> Tuple[Dict[str, TupleBatch], HandlerReport]:
        """Columnar :meth:`acquire`: one acquisition round as per-attribute batches.

        Returns ``(batch_per_attribute, report)``.  Each batch carries the
        target cell of every tuple in its ``cell`` extra column; the
        fabricator's map stage re-buckets by the *reported* coordinates
        anyway, so no per-cell grouping is done here.
        """
        report = HandlerReport()
        per_attribute: Dict[str, List[TupleBatch]] = {}
        for attribute, cells in attribute_cells.items():
            for cell in cells:
                batch = self.acquire_cell_batch(
                    attribute, cell, duration=duration, report=report
                )
                if batch is not None and len(batch):
                    per_attribute.setdefault(attribute, []).append(batch)
        self._rounds += 1
        return (
            {
                attribute: TupleBatch.concatenate(batches)
                for attribute, batches in per_attribute.items()
            },
            report,
        )
