"""Mobile sensors.

Each :class:`MobileSensor` combines a mobility state, a participation model
for human-sensed attributes, and local memory for sensed information (the
paper assumes "each mobile sensor is assumed to have local memory to store
sensed information").  Sensors answer acquisition requests for an attribute
by reading the relevant phenomenon field at their current location.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..errors import AcquisitionError
from ..geometry import SpacePoint
from .mobility import MobilityModel, MobilityState
from .participation import AlwaysRespond, ParticipationModel, ResponseDecision
from .phenomena import PhenomenonField


@dataclass
class SensorState:
    """Snapshot of a sensor's public state at a point in time."""

    sensor_id: int
    t: float
    x: float
    y: float

    @property
    def location(self) -> SpacePoint:
        """The sensor's position."""
        return SpacePoint(self.x, self.y)


class MobileSensor:
    """One simulated mobile sensor (a smartphone, vehicle sensor or human)."""

    def __init__(
        self,
        sensor_id: int,
        mobility: MobilityModel,
        *,
        participation: Optional[ParticipationModel] = None,
        rng: Optional[np.random.Generator] = None,
        memory_capacity: int = 256,
    ) -> None:
        if memory_capacity <= 0:
            raise AcquisitionError("memory_capacity must be positive")
        self._sensor_id = sensor_id
        self._mobility = mobility
        self._participation = participation or AlwaysRespond()
        self._rng = rng if rng is not None else np.random.default_rng()
        self._state: MobilityState = mobility.initial_state(self._rng)
        self._memory: List[Tuple[float, str, Any]] = []
        self._memory_capacity = memory_capacity
        self._requests_received = 0
        self._responses_sent = 0

    # ------------------------------------------------------------------
    @property
    def sensor_id(self) -> int:
        """Unique identifier of the sensor."""
        return self._sensor_id

    @property
    def position(self) -> SpacePoint:
        """Current position."""
        return SpacePoint(self._state.x, self._state.y)

    @property
    def requests_received(self) -> int:
        """Acquisition requests received so far."""
        return self._requests_received

    @property
    def responses_sent(self) -> int:
        """Responses actually produced so far."""
        return self._responses_sent

    @property
    def memory(self) -> List[Tuple[float, str, Any]]:
        """Locally stored observations as ``(t, attribute, value)`` rows."""
        return list(self._memory)

    def state_at(self, t: float) -> SensorState:
        """A :class:`SensorState` snapshot stamped with time ``t``."""
        return SensorState(self._sensor_id, t, self._state.x, self._state.y)

    # ------------------------------------------------------------------
    def move(self, dt: float) -> SpacePoint:
        """Advance the sensor's position by ``dt`` time units."""
        self._mobility.step(self._state, dt, self._rng)
        return self.position

    def _remember(self, t: float, attribute: str, value: Any) -> None:
        self._memory.append((t, attribute, value))
        if len(self._memory) > self._memory_capacity:
            del self._memory[: len(self._memory) - self._memory_capacity]

    def sense(self, field: PhenomenonField, t: float) -> Any:
        """Sample the phenomenon at the sensor's location and store it locally."""
        value = field.value(t, self._state.x, self._state.y, rng=self._rng)
        self._remember(t, field.attribute, value)
        return value

    def handle_request(
        self,
        field: PhenomenonField,
        t: float,
        *,
        incentive_multiplier: float = 1.0,
    ) -> Optional[Tuple[float, float, float, Any]]:
        """Answer an acquisition request, or return ``None`` when ignored.

        The returned row is ``(response_time, x, y, value)`` where ``x, y``
        is the sensor's position when the request arrived (the paper treats
        the reported coordinates as the sensing location) and
        ``response_time = t + latency``.
        """
        self._requests_received += 1
        decision: ResponseDecision = self._participation.decide(
            self._sensor_id, t, incentive_multiplier=incentive_multiplier, rng=self._rng
        )
        if not decision.responds:
            return None
        value = self.sense(field, t)
        self._responses_sent += 1
        return (t + decision.latency, self._state.x, self._state.y, value)
