"""Mobile sensors.

Each :class:`MobileSensor` combines a mobility state, a participation model
for human-sensed attributes, and local memory for sensed information (the
paper assumes "each mobile sensor is assumed to have local memory to store
sensed information").  Sensors answer acquisition requests for an attribute
by reading the relevant phenomenon field at their current location.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..errors import AcquisitionError
from ..geometry import SpacePoint
from ..rng import ensure_rng
from .mobility import MobilityModel, MobilityState
from .participation import AlwaysRespond, ParticipationModel, ResponseDecision
from .phenomena import PhenomenonField
from .state import ArrayBackedMobilityState, SensorStateArrays


@dataclass
class SensorState:
    """Snapshot of a sensor's public state at a point in time."""

    sensor_id: int
    t: float
    x: float
    y: float

    @property
    def location(self) -> SpacePoint:
        """The sensor's position."""
        return SpacePoint(self.x, self.y)


class MobileSensor:
    """One simulated mobile sensor (a smartphone, vehicle sensor or human).

    A sensor's mutable state (position, velocity, waypoint target, request
    counters, participation parameters) lives in a
    :class:`~repro.sensing.state.SensorStateArrays` row; the sensor object is
    a lazy view over that row.  A :class:`~repro.sensing.SensingWorld` shares
    one SoA across its whole crowd so batch kernels can advance every sensor
    at once; a standalone sensor allocates a private single-row SoA, so both
    construction styles behave identically.
    """

    def __init__(
        self,
        sensor_id: int,
        mobility: MobilityModel,
        *,
        participation: Optional[ParticipationModel] = None,
        rng: Optional[np.random.Generator] = None,
        memory_capacity: int = 256,
        state_arrays: Optional[SensorStateArrays] = None,
        index: Optional[int] = None,
    ) -> None:
        if memory_capacity <= 0:
            raise AcquisitionError("memory_capacity must be positive")
        self._sensor_id = sensor_id
        self._mobility = mobility
        self._participation = participation or AlwaysRespond()
        self._rng = ensure_rng(rng)
        if state_arrays is None:
            if index is not None:
                raise AcquisitionError(
                    "index is only meaningful together with a shared "
                    "SensorStateArrays"
                )
            state_arrays = SensorStateArrays(1)
            index = 0
        elif index is None:
            raise AcquisitionError(
                "index is required when binding to a shared SensorStateArrays"
            )
        self._arrays = state_arrays
        self._index = index
        # Draw the initial placement exactly as the per-object path did,
        # then copy it into the SoA row the sensor views from now on.
        initial_state = mobility.initial_state(self._rng)
        state_arrays.load_mobility_state(index, initial_state)
        state_arrays.sensor_ids[index] = sensor_id
        state_arrays.set_participation(index, self._participation.vector_params())
        self._state: ArrayBackedMobilityState = state_arrays.state_view(index)
        # The model's own state object doubles as the scalar-step scratch:
        # `move` checks the canonical columns out of the SoA into it and
        # commits them back afterwards, so scalar steps run at
        # plain-attribute speed and any *extra* per-sensor state a custom
        # model stashed on its MobilityState survives for the sensor's
        # lifetime, as it did pre-SoA.
        self._scratch = initial_state
        self._memory: List[Tuple[float, str, Any]] = []
        self._memory_capacity = memory_capacity

    # ------------------------------------------------------------------
    @property
    def sensor_id(self) -> int:
        """Unique identifier of the sensor."""
        return self._sensor_id

    @property
    def mobility(self) -> MobilityModel:
        """The sensor's mobility model (consulted for batch-kernel grouping)."""
        return self._mobility

    @property
    def participation(self) -> ParticipationModel:
        """The sensor's participation model."""
        return self._participation

    @property
    def position(self) -> SpacePoint:
        """Current position."""
        return SpacePoint(self._state.x, self._state.y)

    @property
    def requests_received(self) -> int:
        """Acquisition requests received so far."""
        return int(self._arrays.requests_received[self._index])

    @property
    def responses_sent(self) -> int:
        """Responses actually produced so far."""
        return int(self._arrays.responses_sent[self._index])

    @property
    def memory(self) -> List[Tuple[float, str, Any]]:
        """Locally stored observations as ``(t, attribute, value)`` rows."""
        return list(self._memory)

    def state_at(self, t: float) -> SensorState:
        """A :class:`SensorState` snapshot stamped with time ``t``."""
        return SensorState(self._sensor_id, t, self._state.x, self._state.y)

    # ------------------------------------------------------------------
    def begin_moves(self) -> MobilityState:
        """Check the SoA row out into the scalar-step scratch state.

        Part of the scalar advance protocol (``begin_moves`` /
        ``step_scalar``\\* / ``end_moves``) used by
        :meth:`~repro.sensing.SensingWorld.advance` in strict mode: the
        checkout/commit round-trip is paid once per ``advance`` call instead
        of once per movement sub-step, so the inner loop runs on plain
        dataclass attributes at the original per-object speed.  The
        ``float(...)`` conversions are exact, so seeded byte-identity is
        preserved.
        """
        arrays = self._arrays
        i = self._index
        scratch = self._scratch
        scratch.x = float(arrays.x[i])
        scratch.y = float(arrays.y[i])
        scratch.vx = float(arrays.vx[i])
        scratch.vy = float(arrays.vy[i])
        tx = arrays.target_x[i]
        ty = arrays.target_y[i]
        scratch.target_x = None if tx != tx else float(tx)  # NaN check
        scratch.target_y = None if ty != ty else float(ty)
        scratch.pause_remaining = float(arrays.pause_remaining[i])
        return scratch

    def step_scalar(self, dt: float) -> None:
        """Advance the checked-out scratch state by ``dt`` (no SoA write-back)."""
        self._mobility.step(self._scratch, dt, self._rng)

    def end_moves(self) -> None:
        """Commit the scratch state back into the SoA row."""
        arrays = self._arrays
        i = self._index
        scratch = self._scratch
        arrays.x[i] = scratch.x
        arrays.y[i] = scratch.y
        arrays.vx[i] = scratch.vx
        arrays.vy[i] = scratch.vy
        arrays.target_x[i] = np.nan if scratch.target_x is None else scratch.target_x
        arrays.target_y[i] = np.nan if scratch.target_y is None else scratch.target_y
        arrays.pause_remaining[i] = scratch.pause_remaining

    def move(self, dt: float) -> SpacePoint:
        """Advance the sensor's position by ``dt`` time units.

        One full checkout / step / commit round-trip; the SoA row is
        canonical again when the call returns.
        """
        scratch = self.begin_moves()
        self._mobility.step(scratch, dt, self._rng)
        self.end_moves()
        return SpacePoint(scratch.x, scratch.y)

    def _remember(self, t: float, attribute: str, value: Any) -> None:
        self._memory.append((t, attribute, value))
        if len(self._memory) > self._memory_capacity:
            del self._memory[: len(self._memory) - self._memory_capacity]

    def sense(self, field: PhenomenonField, t: float) -> Any:
        """Sample the phenomenon at the sensor's location and store it locally."""
        value = field.value(t, self._state.x, self._state.y, rng=self._rng)
        self._remember(t, field.attribute, value)
        return value

    def handle_requests(
        self,
        field: PhenomenonField,
        times: np.ndarray,
        *,
        incentive_multiplier=1.0,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Answer a run of acquisition requests addressed to this sensor.

        The columnar acquisition path groups a cell round's requests by
        sensor and calls this once per sensor with the sensor's request
        times in ascending order.  ``incentive_multiplier`` is a scalar or
        an array aligned with ``times`` (an incentive scheme may change its
        payment mid-round).  Returns ``(answered, response_times, xs, ys,
        values)`` where ``answered`` is a boolean mask over the input
        ``times`` and the remaining arrays are aligned with the answered
        requests only.

        When the participation model is batch-safe (its decisions consume no
        randomness) the decisions and the sensing draws are vectorised while
        consuming the sensor's RNG stream exactly as the scalar
        :meth:`handle_request` loop would; otherwise the scalar loop runs,
        so both acquisition paths always produce identical observations.
        """
        times = np.asarray(times, dtype=float)
        n = times.shape[0]
        empty = np.empty(0)
        if n == 0:
            return np.empty(0, dtype=bool), empty, empty, empty, np.empty(0, dtype=object)
        multipliers = np.broadcast_to(
            np.asarray(incentive_multiplier, dtype=float), times.shape
        )
        if not self._participation.batch_safe:
            rows = [
                self.handle_request(field, float(t), incentive_multiplier=float(m))
                for t, m in zip(times, multipliers)
            ]
            answered = np.array([row is not None for row in rows], dtype=bool)
            kept = [row for row in rows if row is not None]
            if not kept:
                return answered, empty, empty, empty, np.empty(0, dtype=object)
            response_times = np.array([row[0] for row in kept], dtype=float)
            xs = np.array([row[1] for row in kept], dtype=float)
            ys = np.array([row[2] for row in kept], dtype=float)
            values = [row[3] for row in kept]
            try:
                value_column = np.asarray(values)
                if value_column.ndim != 1:  # e.g. list/tuple values
                    raise ValueError
            except ValueError:
                value_column = np.empty(len(values), dtype=object)
                value_column[:] = values
            return answered, response_times, xs, ys, value_column

        self._arrays.requests_received[self._index] += n
        if np.all(multipliers == multipliers[0]):
            responds, latencies = self._participation.decide_many(
                self._sensor_id,
                times,
                incentive_multiplier=float(multipliers[0]),
                rng=self._rng,
            )
        else:
            # Batch-safe decisions consume no randomness, so per-request
            # multipliers can be honoured with scalar decide() calls while
            # the sensing draws below stay vectorised.
            responds = np.empty(n, dtype=bool)
            latencies = np.empty(n, dtype=float)
            for i in range(n):
                decision = self._participation.decide(
                    self._sensor_id,
                    float(times[i]),
                    incentive_multiplier=float(multipliers[i]),
                    rng=self._rng,
                )
                responds[i] = decision.responds
                latencies[i] = decision.latency
        respond_times = times[responds]
        k = respond_times.shape[0]
        if k == 0:
            return responds, empty, empty, empty, np.empty(0, dtype=object)
        xs = np.full(k, self._state.x, dtype=float)
        ys = np.full(k, self._state.y, dtype=float)
        values = field.values(respond_times, xs, ys, rng=self._rng)
        self._memory.extend(
            (float(t), field.attribute, value)
            for t, value in zip(respond_times, np.asarray(values).tolist())
        )
        if len(self._memory) > self._memory_capacity:
            del self._memory[: len(self._memory) - self._memory_capacity]
        self._arrays.responses_sent[self._index] += k
        return responds, respond_times + latencies[responds], xs, ys, values

    def handle_request(
        self,
        field: PhenomenonField,
        t: float,
        *,
        incentive_multiplier: float = 1.0,
    ) -> Optional[Tuple[float, float, float, Any]]:
        """Answer an acquisition request, or return ``None`` when ignored.

        The returned row is ``(response_time, x, y, value)`` where ``x, y``
        is the sensor's position when the request arrived (the paper treats
        the reported coordinates as the sensing location) and
        ``response_time = t + latency``.
        """
        self._arrays.requests_received[self._index] += 1
        decision: ResponseDecision = self._participation.decide(
            self._sensor_id, t, incentive_multiplier=incentive_multiplier, rng=self._rng
        )
        if not decision.responds:
            return None
        value = self.sense(field, t)
        self._arrays.responses_sent[self._index] += 1
        return (t + decision.latency, self._state.x, self._state.y, value)
