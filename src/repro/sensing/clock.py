"""A simple simulation clock.

All components of the sensing simulator share one clock so that batches,
sensor movement and response latencies line up.  Time is a float in
arbitrary units (the examples interpret one unit as one minute).
"""

from __future__ import annotations

from ..errors import CraqrError


class SimulationClock:
    """Monotonically advancing simulation time."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._start = float(start)
        self._ticks = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def start(self) -> float:
        """Time the clock was created with."""
        return self._start

    @property
    def elapsed(self) -> float:
        """Time elapsed since the start."""
        return self._now - self._start

    @property
    def ticks(self) -> int:
        """Number of :meth:`advance` calls so far."""
        return self._ticks

    def advance(self, dt: float) -> float:
        """Advance the clock by ``dt`` (> 0) and return the new time."""
        if dt <= 0:
            raise CraqrError("the clock can only move forward (dt must be > 0)")
        self._now += dt
        self._ticks += 1
        return self._now

    def reset(self) -> None:
        """Reset to the start time."""
        self._now = self._start
        self._ticks = 0
