"""Incentive schemes (Section VI extension).

The paper proposes, as an alternative to increasing the request budget, to
"offer more incentive to the mobile sensors to respond".  An incentive
scheme maps an offered payment to a multiplier on the base response
probability (an elasticity curve) and tracks how much was spent — the
quantity the incentives benchmark trades off against acquisition-request
cost.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..errors import CraqrError


def incentive_boost(payment: float, *, elasticity: float = 1.0, saturation: float = 3.0) -> float:
    """Response-probability multiplier for a given payment.

    A concave saturating curve: no payment gives multiplier 1, large payments
    approach ``saturation``.  ``elasticity`` controls how quickly the curve
    rises.
    """
    if payment < 0:
        raise CraqrError("payment must be non-negative")
    if elasticity <= 0 or saturation < 1:
        raise CraqrError("elasticity must be > 0 and saturation >= 1")
    return 1.0 + (saturation - 1.0) * (1.0 - math.exp(-elasticity * payment))


class IncentiveScheme(ABC):
    """Maps a desired response boost to a payment and tracks spending."""

    def __init__(self) -> None:
        self._total_spent = 0.0
        self._payments = 0

    @property
    def total_spent(self) -> float:
        """Total incentive paid out so far."""
        return self._total_spent

    @property
    def payments(self) -> int:
        """Number of individual payments made."""
        return self._payments

    def record_payment(self, amount: float) -> None:
        """Account for one payment."""
        if amount < 0:
            raise CraqrError("payment must be non-negative")
        self._total_spent += amount
        self._payments += 1

    def refund(self, amount: float, count: int) -> None:
        """Undo payments attached to requests that were never accepted.

        With a retry policy configured the handler pays incentives only for
        accepted responses: payments are drawn (and recorded) per request as
        usual, then the unaccepted requests' share is refunded so
        :attr:`total_spent` / :attr:`payments` count paid responses only.
        """
        if amount < 0 or count < 0:
            raise CraqrError("refund amount and count must be non-negative")
        if count > self._payments or amount > self._total_spent + 1e-9:
            raise CraqrError("cannot refund more than was recorded")
        self._total_spent = max(self._total_spent - amount, 0.0)
        self._payments -= count

    @abstractmethod
    def payment_for_request(self) -> float:
        """Payment attached to the next acquisition request."""

    @abstractmethod
    def multiplier(self) -> float:
        """Response-probability multiplier the current payment buys."""

    def payments_for_requests(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        """Payments and multipliers for a whole round of ``count`` requests.

        Used by the columnar acquisition path; the fallback loops
        :meth:`payment_for_request` / :meth:`multiplier` so stateful schemes
        keep their per-request accounting.
        """
        payments = np.empty(count, dtype=float)
        multipliers = np.empty(count, dtype=float)
        for i in range(count):
            payments[i] = self.payment_for_request()
            multipliers[i] = self.multiplier()
        return payments, multipliers


class FlatIncentive(IncentiveScheme):
    """A fixed payment per request (possibly zero)."""

    def __init__(self, payment: float = 0.0, *, elasticity: float = 1.0, saturation: float = 3.0) -> None:
        super().__init__()
        if payment < 0:
            raise CraqrError("payment must be non-negative")
        self._payment = payment
        self._elasticity = elasticity
        self._saturation = saturation

    @property
    def payment(self) -> float:
        """The per-request payment."""
        return self._payment

    def set_payment(self, payment: float) -> None:
        """Change the per-request payment (used by adaptive controllers)."""
        if payment < 0:
            raise CraqrError("payment must be non-negative")
        self._payment = payment

    def payment_for_request(self) -> float:
        self.record_payment(self._payment)
        return self._payment

    def multiplier(self) -> float:
        return incentive_boost(
            self._payment, elasticity=self._elasticity, saturation=self._saturation
        )

    def payments_for_requests(self, count: int) -> Tuple[np.ndarray, np.ndarray]:
        self._total_spent += self._payment * count
        self._payments += count
        return (
            np.full(count, self._payment, dtype=float),
            np.full(count, self.multiplier(), dtype=float),
        )


@dataclass
class LinearIncentiveResponse:
    """A simple adaptive incentive controller.

    When the rate-violation feedback exceeds the threshold the controller
    raises the payment by ``step`` (up to ``max_payment``); otherwise it
    lowers it by the same step (down to zero).  This mirrors the paper's
    budget-tuning loop but acts on incentives instead of request counts.
    """

    scheme: FlatIncentive
    step: float = 0.1
    max_payment: float = 2.0

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise CraqrError("step must be positive")
        if self.max_payment <= 0:
            raise CraqrError("max_payment must be positive")

    def adjust(self, violation_percent: float, threshold: float) -> float:
        """Adjust the payment based on violation feedback; returns the new payment."""
        current = self.scheme.payment
        if violation_percent > threshold:
            new_payment = min(current + self.step, self.max_payment)
        else:
            new_payment = max(current - self.step, 0.0)
        self.scheme.set_payment(new_payment)
        return new_payment

    @property
    def saturated(self) -> bool:
        """Whether the payment has reached its maximum."""
        return self.scheme.payment >= self.max_payment
