"""Synthetic phenomena fields: the quantities the crowd senses.

The paper's two running examples are *rain* (a human-sensed boolean
attribute) and *ambient temperature* (a sensor-sensed real attribute).
These fields provide ground-truth values at any space-time point so the
simulator can answer acquisition requests realistically, and so examples
can show end-to-end value streams rather than bare coordinates.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import CraqrError
from ..geometry import Rectangle
from ..rng import ensure_rng


class PhenomenonField(ABC):
    """A spatio-temporal field ``value(t, x, y)``."""

    #: Name of the attribute the field backs (e.g. ``"rain"``).
    attribute: str = "value"

    @abstractmethod
    def value(self, t: float, x: float, y: float, rng: Optional[np.random.Generator] = None):
        """Ground-truth (possibly noisy) value at the given point."""

    def values(
        self,
        t: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Vectorised :meth:`value` over aligned coordinate arrays.

        Subclasses override this with numpy implementations that consume the
        generator's bit stream exactly as the equivalent sequence of scalar
        :meth:`value` calls would, so the columnar acquisition path yields
        byte-identical observations.  The fallback simply loops.
        """
        t = np.asarray(t, dtype=float)
        out = np.empty(t.shape[0], dtype=object)
        for i in range(t.shape[0]):
            out[i] = self.value(float(t[i]), float(x[i]), float(y[i]), rng=rng)
        return out


@dataclass
class ConstantField(PhenomenonField):
    """A field that always returns the same value; useful in tests."""

    constant: object = 0.0
    attribute: str = "value"

    def value(self, t, x, y, rng=None):
        return self.constant

    def values(self, t, x, y, rng=None):
        n = np.asarray(t).shape[0]
        if isinstance(self.constant, (bool, int, float)):
            return np.full(n, self.constant)
        out = np.empty(n, dtype=object)
        out[:] = [self.constant] * n
        return out


class RainField(PhenomenonField):
    """A moving rain front: boolean rain indicator over space and time.

    A rain band of width ``band_width`` sweeps across the region in the x
    direction with the given period.  Inside the band it rains with high
    probability, outside with low probability — so human responses are noisy
    but spatially coherent, as real crowd reports would be.
    """

    attribute = "rain"

    def __init__(
        self,
        region: Rectangle,
        *,
        band_width: float = 0.3,
        period: float = 60.0,
        p_rain_inside: float = 0.95,
        p_rain_outside: float = 0.02,
    ) -> None:
        if band_width <= 0 or period <= 0:
            raise CraqrError("band_width and period must be positive")
        if not (0 <= p_rain_outside <= p_rain_inside <= 1):
            raise CraqrError("need 0 <= p_rain_outside <= p_rain_inside <= 1")
        self._region = region
        self._band_width = band_width
        self._period = period
        self._p_inside = p_rain_inside
        self._p_outside = p_rain_outside

    def band_center(self, t: float) -> float:
        """x-coordinate of the centre of the rain band at time ``t``."""
        phase = (t % self._period) / self._period
        return self._region.x_min + phase * self._region.width

    def rain_probability(self, t: float, x: float, y: float) -> float:
        """Probability that a responder at ``(x, y)`` reports rain at time ``t``."""
        del y  # the band is uniform in y
        center = self.band_center(t)
        # Wrap-around distance along x.
        dx = abs(x - center)
        dx = min(dx, self._region.width - dx)
        if dx <= self._band_width / 2:
            return self._p_inside
        return self._p_outside

    def value(self, t, x, y, rng=None) -> bool:
        rng = ensure_rng(rng)
        return bool(rng.random() < self.rain_probability(t, x, y))

    def rain_probabilities(self, t: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`rain_probability` over aligned arrays."""
        del y
        t = np.asarray(t, dtype=float)
        x = np.asarray(x, dtype=float)
        phase = np.mod(t, self._period) / self._period
        center = self._region.x_min + phase * self._region.width
        dx = np.abs(x - center)
        dx = np.minimum(dx, self._region.width - dx)
        return np.where(dx <= self._band_width / 2, self._p_inside, self._p_outside)

    def values(self, t, x, y, rng=None) -> np.ndarray:
        rng = ensure_rng(rng)
        probabilities = self.rain_probabilities(t, x, y)
        # rng.random(n) consumes the same draws as n scalar rng.random()
        # calls, so this matches the scalar path bit for bit.
        return rng.random(probabilities.shape[0]) < probabilities


class TemperatureField(PhenomenonField):
    """Smooth temperature surface with a diurnal cycle and urban heat islands.

    ``temperature = base + diurnal(t) + sum of Gaussian heat islands + noise``
    """

    attribute = "temp"

    def __init__(
        self,
        region: Rectangle,
        *,
        base: float = 18.0,
        diurnal_amplitude: float = 6.0,
        period: float = 1440.0,
        heat_islands: Sequence[Tuple[float, float, float, float]] = (),
        noise_std: float = 0.3,
    ) -> None:
        if period <= 0:
            raise CraqrError("period must be positive")
        if noise_std < 0:
            raise CraqrError("noise_std must be non-negative")
        for island in heat_islands:
            if len(island) != 4 or island[3] <= 0:
                raise CraqrError("heat islands must be (cx, cy, amplitude, sigma>0)")
        self._region = region
        self._base = base
        self._diurnal_amplitude = diurnal_amplitude
        self._period = period
        self._heat_islands = [tuple(map(float, island)) for island in heat_islands]
        self._noise_std = noise_std

    def mean_value(self, t: float, x: float, y: float) -> float:
        """Noise-free temperature at the given point.

        Uses numpy's scalar transcendentals (not :mod:`math`) so the result
        is bit-identical to the vectorised :meth:`mean_values` — libm and
        numpy's SIMD ``exp`` can differ in the last ulp.
        """
        diurnal = self._diurnal_amplitude * float(np.sin(2 * np.pi * t / self._period))
        value = self._base + diurnal
        for cx, cy, amplitude, sigma in self._heat_islands:
            d2 = (x - cx) ** 2 + (y - cy) ** 2
            value += amplitude * float(np.exp(-d2 / (2 * sigma * sigma)))
        return value

    def value(self, t, x, y, rng=None) -> float:
        rng = ensure_rng(rng)
        noise = float(rng.normal(0.0, self._noise_std)) if self._noise_std > 0 else 0.0
        return self.mean_value(t, x, y) + noise

    def mean_values(self, t: np.ndarray, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`mean_value` over aligned arrays."""
        t = np.asarray(t, dtype=float)
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        value = self._base + self._diurnal_amplitude * np.sin(2 * np.pi * t / self._period)
        for cx, cy, amplitude, sigma in self._heat_islands:
            d2 = (x - cx) ** 2 + (y - cy) ** 2
            value = value + amplitude * np.exp(-d2 / (2 * sigma * sigma))
        return value

    def values(self, t, x, y, rng=None) -> np.ndarray:
        rng = ensure_rng(rng)
        mean = self.mean_values(t, x, y)
        if self._noise_std > 0:
            mean = mean + rng.normal(0.0, self._noise_std, mean.shape[0])
        return mean
