"""Mobility models for mobile sensors.

The paper's core motivation is that crowdsensed data has a highly skewed
spatio-temporal distribution "caused largely due to the mobility of
sensors".  These models generate that mobility:

* :class:`StationaryMobility` — a degenerate model for WSN-style baselines.
* :class:`RandomWalkMobility` — independent Gaussian steps.
* :class:`RandomWaypointMobility` — the classic pick-a-destination-and-walk
  model; produces centre-heavy spatial densities.
* :class:`GaussMarkovMobility` — velocity with temporal correlation.
* :class:`HotspotMobility` — sensors are attracted to a set of hotspots,
  producing the strong spatial skew used in the skew-mitigation experiment.

All models implement two entry points:

* ``step(state, dt, rng)`` — advance one sensor's state in place, drawing
  from that sensor's private generator.  This is the strict-mode path: the
  world loops it once per sensor, so a seeded run is byte-identical whatever
  the storage backing ``state`` (dataclass or SoA view).
* ``step_batch(arrays, indices, dt, rng)`` — advance a whole group of
  sensors at once as masked array operations over a
  :class:`~repro.sensing.state.SensorStateArrays`, drawing from one shared
  generator.  This is the fast-sim kernel: draw *order* across sensors
  differs from the scalar loop (statistically equivalent, not bit-equal),
  which is exactly the trade the world's ``vectorized_rng`` mode makes.

``batch_key()`` returns a hashable grouping key for models that support the
batch kernel: sensors whose models share a key are stepped by one
``step_batch`` call.  The base implementation returns ``None`` (no grouping)
and falls back to looping ``step`` over SoA views, so custom subclasses stay
correct in either mode.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Hashable, Optional, Sequence, Tuple

import numpy as np

from ..errors import CraqrError
from ..geometry import Rectangle
from .state import SensorStateArrays

#: Distances below this are treated as "already at the target".
_TINY = 1e-12


@dataclass
class MobilityState:
    """Mutable per-sensor mobility state (standalone dataclass form).

    World-owned sensors use the SoA-backed view
    (:class:`~repro.sensing.state.ArrayBackedMobilityState`) instead; both
    expose the same attributes and the scalar ``step`` implementations work
    identically on either.
    """

    x: float
    y: float
    vx: float = 0.0
    vy: float = 0.0
    target_x: Optional[float] = None
    target_y: Optional[float] = None
    pause_remaining: float = 0.0


class MobilityModel(ABC):
    """Abstract mobility model."""

    def __init__(self, region: Rectangle) -> None:
        self._region = region

    @property
    def region(self) -> Rectangle:
        """The world rectangle sensors move in."""
        return self._region

    def initial_state(self, rng: np.random.Generator) -> MobilityState:
        """Place the sensor uniformly at random in the region."""
        return MobilityState(
            x=float(rng.uniform(self._region.x_min, self._region.x_max)),
            y=float(rng.uniform(self._region.y_min, self._region.y_max)),
        )

    @abstractmethod
    def step(self, state: MobilityState, dt: float, rng: np.random.Generator) -> None:
        """Advance the state in place by ``dt`` time units."""

    def batch_key(self) -> Optional[Hashable]:
        """Grouping key for the vectorised kernel, or ``None`` when unsupported.

        Two model instances with equal keys must behave identically, so the
        world may route all their sensors through one :meth:`step_batch`
        call on a representative instance.
        """
        return None

    def _kernel_key(self, *params: Hashable) -> Optional[Hashable]:
        """Build a ``batch_key`` tuple of ``(class, region, *params)``.

        A class is only grouped when it defines its *own* ``step_batch``:
        a subclass that customises the scalar dynamics in any way —
        overriding ``step`` or just a helper hook like ``_pick_target`` —
        without shipping a matching kernel would otherwise be silently
        stepped by the inherited kernel in fast-sim mode, discarding its
        dynamics.  Such models fall back to per-object stepping instead
        (and the class in the key keeps distinct subclasses from ever
        sharing a group).
        """
        cls = type(self)
        if "step_batch" not in vars(cls):
            return None
        return (cls, self._region) + params

    def step_batch(
        self,
        arrays: SensorStateArrays,
        indices: np.ndarray,
        dt: float,
        rng: np.random.Generator,
    ) -> None:
        """Advance the rows ``indices`` of ``arrays`` by ``dt`` at once.

        The fallback loops the scalar :meth:`step` over SoA views with the
        shared generator; vectorised models override it with masked array
        kernels.
        """
        for i in np.asarray(indices, dtype=np.int64):
            self.step(arrays.state_view(int(i)), dt, rng)

    def _clamp(self, state: MobilityState) -> None:
        """Keep the position inside the region (reflecting at the walls)."""
        state.x = min(max(state.x, self._region.x_min), self._region.x_max)
        state.y = min(max(state.y, self._region.y_min), self._region.y_max)

    def _clamp_batch(self, arrays: SensorStateArrays, idx: np.ndarray) -> None:
        """Vectorised :meth:`_clamp` over the rows ``idx``."""
        region = self._region
        arrays.x[idx] = np.clip(arrays.x[idx], region.x_min, region.x_max)
        arrays.y[idx] = np.clip(arrays.y[idx], region.y_min, region.y_max)


class StationaryMobility(MobilityModel):
    """Sensors that never move (traditional WSN baseline)."""

    def step(self, state: MobilityState, dt: float, rng: np.random.Generator) -> None:
        del dt, rng  # stationary sensors ignore both

    def batch_key(self) -> Optional[Hashable]:
        return self._kernel_key()

    def step_batch(self, arrays, indices, dt, rng) -> None:
        del arrays, indices, dt, rng  # nothing moves


class RandomWalkMobility(MobilityModel):
    """Independent Gaussian displacement at every step."""

    def __init__(self, region: Rectangle, *, step_std: float = 0.05) -> None:
        super().__init__(region)
        if step_std <= 0:
            raise CraqrError("step_std must be positive")
        self._step_std = step_std

    def step(self, state: MobilityState, dt: float, rng: np.random.Generator) -> None:
        scale = self._step_std * math.sqrt(dt)
        state.x += float(rng.normal(0.0, scale))
        state.y += float(rng.normal(0.0, scale))
        self._clamp(state)

    def batch_key(self) -> Optional[Hashable]:
        return self._kernel_key(self._step_std)

    def step_batch(self, arrays, indices, dt, rng) -> None:
        idx = np.asarray(indices, dtype=np.int64)
        scale = self._step_std * math.sqrt(dt)
        steps = rng.normal(0.0, scale, (2, idx.size))
        arrays.x[idx] += steps[0]
        arrays.y[idx] += steps[1]
        self._clamp_batch(arrays, idx)


class RandomWaypointMobility(MobilityModel):
    """Pick a uniform destination, walk towards it at constant speed, pause, repeat."""

    def __init__(
        self,
        region: Rectangle,
        *,
        speed: float = 0.2,
        pause: float = 0.5,
    ) -> None:
        super().__init__(region)
        if speed <= 0:
            raise CraqrError("speed must be positive")
        if pause < 0:
            raise CraqrError("pause must be non-negative")
        self._speed = speed
        self._pause = pause

    def _pick_target(self, state: MobilityState, rng: np.random.Generator) -> None:
        state.target_x = float(rng.uniform(self._region.x_min, self._region.x_max))
        state.target_y = float(rng.uniform(self._region.y_min, self._region.y_max))

    def step(self, state: MobilityState, dt: float, rng: np.random.Generator) -> None:
        if state.pause_remaining > 0:
            state.pause_remaining = max(0.0, state.pause_remaining - dt)
            return
        if state.target_x is None or state.target_y is None:
            self._pick_target(state, rng)
        dx = state.target_x - state.x
        dy = state.target_y - state.y
        distance = math.hypot(dx, dy)
        travel = self._speed * dt
        if travel >= distance:
            state.x, state.y = state.target_x, state.target_y
            state.target_x = state.target_y = None
            state.pause_remaining = self._pause
        else:
            state.x += travel * dx / distance
            state.y += travel * dy / distance
        self._clamp(state)

    def batch_key(self) -> Optional[Hashable]:
        return self._kernel_key(self._speed, self._pause)

    def step_batch(self, arrays, indices, dt, rng) -> None:
        idx = np.asarray(indices, dtype=np.int64)
        pause = arrays.pause_remaining[idx]
        paused = pause > 0.0
        if paused.any():
            # Pausing sensors only run their timer down this step; like the
            # scalar path they start walking again on the *next* step.
            arrays.pause_remaining[idx[paused]] = np.maximum(0.0, pause[paused] - dt)
        active = idx[~paused]
        if active.size == 0:
            return
        tx = arrays.target_x[active]
        ty = arrays.target_y[active]
        need = np.isnan(tx)
        if need.any():
            region = self._region
            count = int(need.sum())
            tx[need] = rng.uniform(region.x_min, region.x_max, count)
            ty[need] = rng.uniform(region.y_min, region.y_max, count)
        x = arrays.x[active]
        y = arrays.y[active]
        dx = tx - x
        dy = ty - y
        distance = np.hypot(dx, dy)
        travel = self._speed * dt
        arrive = travel >= distance
        safe = np.maximum(distance, _TINY)
        arrays.x[active] = np.where(arrive, tx, x + travel * dx / safe)
        arrays.y[active] = np.where(arrive, ty, y + travel * dy / safe)
        arrays.target_x[active] = np.where(arrive, np.nan, tx)
        arrays.target_y[active] = np.where(arrive, np.nan, ty)
        arrays.pause_remaining[active] = np.where(arrive, self._pause, 0.0)
        self._clamp_batch(arrays, active)


class GaussMarkovMobility(MobilityModel):
    """Velocity process with temporal correlation (Gauss-Markov model).

    ``v_{t+1} = alpha * v_t + (1 - alpha) * mean_speed * u_t + noise`` where
    ``u_t`` is the unit vector of the current heading: the speed reverts
    toward ``mean_speed`` along the direction the sensor is already moving,
    while the noise term (scaled by ``sqrt(1 - alpha^2)``) perturbs both
    components.  Velocity reflects off the region walls.
    """

    def __init__(
        self,
        region: Rectangle,
        *,
        mean_speed: float = 0.15,
        alpha: float = 0.75,
        speed_std: float = 0.05,
    ) -> None:
        super().__init__(region)
        if not 0 <= alpha <= 1:
            raise CraqrError("alpha must be in [0, 1]")
        if mean_speed <= 0 or speed_std <= 0:
            raise CraqrError("mean_speed and speed_std must be positive")
        self._mean_speed = mean_speed
        self._alpha = alpha
        self._speed_std = speed_std

    def initial_state(self, rng: np.random.Generator) -> MobilityState:
        state = super().initial_state(rng)
        angle = rng.uniform(0.0, 2 * math.pi)
        state.vx = self._mean_speed * math.cos(angle)
        state.vy = self._mean_speed * math.sin(angle)
        return state

    def step(self, state: MobilityState, dt: float, rng: np.random.Generator) -> None:
        a = self._alpha
        noise_scale = self._speed_std * math.sqrt(1 - a * a)
        speed = math.hypot(state.vx, state.vy)
        if speed > _TINY:
            mean_vx = self._mean_speed * state.vx / speed
            mean_vy = self._mean_speed * state.vy / speed
        else:
            mean_vx = mean_vy = 0.0
        state.vx = a * state.vx + (1 - a) * mean_vx + float(
            rng.normal(0.0, noise_scale)
        )
        state.vy = a * state.vy + (1 - a) * mean_vy + float(
            rng.normal(0.0, noise_scale)
        )
        state.x += state.vx * dt
        state.y += state.vy * dt
        # Reflect velocity when a wall is hit so sensors stay inside.
        if state.x <= self._region.x_min or state.x >= self._region.x_max:
            state.vx = -state.vx
        if state.y <= self._region.y_min or state.y >= self._region.y_max:
            state.vy = -state.vy
        self._clamp(state)

    def batch_key(self) -> Optional[Hashable]:
        return self._kernel_key(self._mean_speed, self._alpha, self._speed_std)

    def step_batch(self, arrays, indices, dt, rng) -> None:
        idx = np.asarray(indices, dtype=np.int64)
        a = self._alpha
        noise_scale = self._speed_std * math.sqrt(1 - a * a)
        vx = arrays.vx[idx]
        vy = arrays.vy[idx]
        speed = np.hypot(vx, vy)
        safe = np.maximum(speed, _TINY)
        moving = speed > _TINY
        mean_vx = np.where(moving, self._mean_speed * vx / safe, 0.0)
        mean_vy = np.where(moving, self._mean_speed * vy / safe, 0.0)
        noise = rng.normal(0.0, noise_scale, (2, idx.size))
        vx = a * vx + (1 - a) * mean_vx + noise[0]
        vy = a * vy + (1 - a) * mean_vy + noise[1]
        region = self._region
        x = arrays.x[idx] + vx * dt
        y = arrays.y[idx] + vy * dt
        arrays.vx[idx] = np.where((x <= region.x_min) | (x >= region.x_max), -vx, vx)
        arrays.vy[idx] = np.where((y <= region.y_min) | (y >= region.y_max), -vy, vy)
        arrays.x[idx] = np.clip(x, region.x_min, region.x_max)
        arrays.y[idx] = np.clip(y, region.y_min, region.y_max)


class HotspotMobility(MobilityModel):
    """Sensors gravitate towards hotspots, producing strong spatial skew.

    Each step the sensor moves towards its currently assigned hotspot with
    some jitter; occasionally it re-samples which hotspot it is attracted to
    (weighted by hotspot popularity).
    """

    def __init__(
        self,
        region: Rectangle,
        hotspots: Sequence[Tuple[float, float, float]],
        *,
        speed: float = 0.2,
        jitter: float = 0.03,
        switch_probability: float = 0.02,
    ) -> None:
        super().__init__(region)
        if not hotspots:
            raise CraqrError("hotspot mobility needs at least one hotspot")
        for spot in hotspots:
            if len(spot) != 3 or spot[2] <= 0:
                raise CraqrError("hotspots must be (x, y, weight>0) triples")
        if speed <= 0 or jitter < 0:
            raise CraqrError("speed must be positive and jitter non-negative")
        if not 0 <= switch_probability <= 1:
            raise CraqrError("switch_probability must be in [0, 1]")
        self._hotspots = [(float(x), float(y), float(w)) for x, y, w in hotspots]
        weights = np.array([w for _, _, w in self._hotspots])
        self._weights = weights / weights.sum()
        self._hotspot_xs = np.array([x for x, _, _ in self._hotspots])
        self._hotspot_ys = np.array([y for _, y, _ in self._hotspots])
        self._speed = speed
        self._jitter = jitter
        self._switch_probability = switch_probability

    def _assign_hotspot(self, state: MobilityState, rng: np.random.Generator) -> None:
        index = int(rng.choice(len(self._hotspots), p=self._weights))
        hx, hy, _ = self._hotspots[index]
        state.target_x, state.target_y = hx, hy

    def initial_state(self, rng: np.random.Generator) -> MobilityState:
        state = super().initial_state(rng)
        self._assign_hotspot(state, rng)
        return state

    def step(self, state: MobilityState, dt: float, rng: np.random.Generator) -> None:
        if state.target_x is None or rng.random() < self._switch_probability:
            self._assign_hotspot(state, rng)
        dx = state.target_x - state.x
        dy = state.target_y - state.y
        distance = math.hypot(dx, dy)
        travel = min(self._speed * dt, distance)
        if distance > _TINY:
            state.x += travel * dx / distance
            state.y += travel * dy / distance
        state.x += float(rng.normal(0.0, self._jitter * math.sqrt(dt)))
        state.y += float(rng.normal(0.0, self._jitter * math.sqrt(dt)))
        self._clamp(state)

    def batch_key(self) -> Optional[Hashable]:
        return self._kernel_key(
            tuple(self._hotspots), self._speed, self._jitter,
            self._switch_probability,
        )

    def step_batch(self, arrays, indices, dt, rng) -> None:
        idx = np.asarray(indices, dtype=np.int64)
        n = idx.size
        tx = arrays.target_x[idx]
        ty = arrays.target_y[idx]
        switch = np.isnan(tx) | (rng.random(n) < self._switch_probability)
        if switch.any():
            choice = rng.choice(
                len(self._hotspots), size=int(switch.sum()), p=self._weights
            )
            tx[switch] = self._hotspot_xs[choice]
            ty[switch] = self._hotspot_ys[choice]
            arrays.target_x[idx] = tx
            arrays.target_y[idx] = ty
        x = arrays.x[idx]
        y = arrays.y[idx]
        dx = tx - x
        dy = ty - y
        distance = np.hypot(dx, dy)
        travel = np.minimum(self._speed * dt, distance)
        scale = np.where(distance > _TINY, travel / np.maximum(distance, _TINY), 0.0)
        jitter = rng.normal(0.0, self._jitter * math.sqrt(dt), (2, n))
        arrays.x[idx] = x + scale * dx + jitter[0]
        arrays.y[idx] = y + scale * dy + jitter[1]
        self._clamp_batch(arrays, idx)
