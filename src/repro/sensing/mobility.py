"""Mobility models for mobile sensors.

The paper's core motivation is that crowdsensed data has a highly skewed
spatio-temporal distribution "caused largely due to the mobility of
sensors".  These models generate that mobility:

* :class:`StationaryMobility` — a degenerate model for WSN-style baselines.
* :class:`RandomWalkMobility` — independent Gaussian steps.
* :class:`RandomWaypointMobility` — the classic pick-a-destination-and-walk
  model; produces centre-heavy spatial densities.
* :class:`GaussMarkovMobility` — velocity with temporal correlation.
* :class:`HotspotMobility` — sensors are attracted to a set of hotspots,
  producing the strong spatial skew used in the skew-mitigation experiment.

All models implement ``step(state, dt, rng) -> (x, y)``: given the sensor's
current state and a time step, return the next position (clamped to the
world region by the caller).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from ..errors import CraqrError
from ..geometry import Rectangle


@dataclass
class MobilityState:
    """Mutable per-sensor mobility state."""

    x: float
    y: float
    vx: float = 0.0
    vy: float = 0.0
    target_x: Optional[float] = None
    target_y: Optional[float] = None
    pause_remaining: float = 0.0


class MobilityModel(ABC):
    """Abstract mobility model."""

    def __init__(self, region: Rectangle) -> None:
        self._region = region

    @property
    def region(self) -> Rectangle:
        """The world rectangle sensors move in."""
        return self._region

    def initial_state(self, rng: np.random.Generator) -> MobilityState:
        """Place the sensor uniformly at random in the region."""
        return MobilityState(
            x=float(rng.uniform(self._region.x_min, self._region.x_max)),
            y=float(rng.uniform(self._region.y_min, self._region.y_max)),
        )

    @abstractmethod
    def step(self, state: MobilityState, dt: float, rng: np.random.Generator) -> None:
        """Advance the state in place by ``dt`` time units."""

    def _clamp(self, state: MobilityState) -> None:
        """Keep the position inside the region (reflecting at the walls)."""
        state.x = min(max(state.x, self._region.x_min), self._region.x_max)
        state.y = min(max(state.y, self._region.y_min), self._region.y_max)


class StationaryMobility(MobilityModel):
    """Sensors that never move (traditional WSN baseline)."""

    def step(self, state: MobilityState, dt: float, rng: np.random.Generator) -> None:
        del dt, rng  # stationary sensors ignore both


class RandomWalkMobility(MobilityModel):
    """Independent Gaussian displacement at every step."""

    def __init__(self, region: Rectangle, *, step_std: float = 0.05) -> None:
        super().__init__(region)
        if step_std <= 0:
            raise CraqrError("step_std must be positive")
        self._step_std = step_std

    def step(self, state: MobilityState, dt: float, rng: np.random.Generator) -> None:
        scale = self._step_std * math.sqrt(dt)
        state.x += float(rng.normal(0.0, scale))
        state.y += float(rng.normal(0.0, scale))
        self._clamp(state)


class RandomWaypointMobility(MobilityModel):
    """Pick a uniform destination, walk towards it at constant speed, pause, repeat."""

    def __init__(
        self,
        region: Rectangle,
        *,
        speed: float = 0.2,
        pause: float = 0.5,
    ) -> None:
        super().__init__(region)
        if speed <= 0:
            raise CraqrError("speed must be positive")
        if pause < 0:
            raise CraqrError("pause must be non-negative")
        self._speed = speed
        self._pause = pause

    def _pick_target(self, state: MobilityState, rng: np.random.Generator) -> None:
        state.target_x = float(rng.uniform(self._region.x_min, self._region.x_max))
        state.target_y = float(rng.uniform(self._region.y_min, self._region.y_max))

    def step(self, state: MobilityState, dt: float, rng: np.random.Generator) -> None:
        if state.pause_remaining > 0:
            state.pause_remaining = max(0.0, state.pause_remaining - dt)
            return
        if state.target_x is None or state.target_y is None:
            self._pick_target(state, rng)
        dx = state.target_x - state.x
        dy = state.target_y - state.y
        distance = math.hypot(dx, dy)
        travel = self._speed * dt
        if travel >= distance:
            state.x, state.y = state.target_x, state.target_y
            state.target_x = state.target_y = None
            state.pause_remaining = self._pause
        else:
            state.x += travel * dx / distance
            state.y += travel * dy / distance
        self._clamp(state)


class GaussMarkovMobility(MobilityModel):
    """Velocity process with temporal correlation (Gauss-Markov model)."""

    def __init__(
        self,
        region: Rectangle,
        *,
        mean_speed: float = 0.15,
        alpha: float = 0.75,
        speed_std: float = 0.05,
    ) -> None:
        super().__init__(region)
        if not 0 <= alpha <= 1:
            raise CraqrError("alpha must be in [0, 1]")
        if mean_speed <= 0 or speed_std <= 0:
            raise CraqrError("mean_speed and speed_std must be positive")
        self._mean_speed = mean_speed
        self._alpha = alpha
        self._speed_std = speed_std

    def initial_state(self, rng: np.random.Generator) -> MobilityState:
        state = super().initial_state(rng)
        angle = rng.uniform(0.0, 2 * math.pi)
        state.vx = self._mean_speed * math.cos(angle)
        state.vy = self._mean_speed * math.sin(angle)
        return state

    def step(self, state: MobilityState, dt: float, rng: np.random.Generator) -> None:
        a = self._alpha
        noise_scale = self._speed_std * math.sqrt(1 - a * a)
        state.vx = a * state.vx + (1 - a) * self._mean_speed * 0.0 + float(
            rng.normal(0.0, noise_scale)
        )
        state.vy = a * state.vy + (1 - a) * self._mean_speed * 0.0 + float(
            rng.normal(0.0, noise_scale)
        )
        state.x += state.vx * dt
        state.y += state.vy * dt
        # Reflect velocity when a wall is hit so sensors stay inside.
        if state.x <= self._region.x_min or state.x >= self._region.x_max:
            state.vx = -state.vx
        if state.y <= self._region.y_min or state.y >= self._region.y_max:
            state.vy = -state.vy
        self._clamp(state)


class HotspotMobility(MobilityModel):
    """Sensors gravitate towards hotspots, producing strong spatial skew.

    Each step the sensor moves towards its currently assigned hotspot with
    some jitter; occasionally it re-samples which hotspot it is attracted to
    (weighted by hotspot popularity).
    """

    def __init__(
        self,
        region: Rectangle,
        hotspots: Sequence[Tuple[float, float, float]],
        *,
        speed: float = 0.2,
        jitter: float = 0.03,
        switch_probability: float = 0.02,
    ) -> None:
        super().__init__(region)
        if not hotspots:
            raise CraqrError("hotspot mobility needs at least one hotspot")
        for spot in hotspots:
            if len(spot) != 3 or spot[2] <= 0:
                raise CraqrError("hotspots must be (x, y, weight>0) triples")
        if speed <= 0 or jitter < 0:
            raise CraqrError("speed must be positive and jitter non-negative")
        if not 0 <= switch_probability <= 1:
            raise CraqrError("switch_probability must be in [0, 1]")
        self._hotspots = [(float(x), float(y), float(w)) for x, y, w in hotspots]
        weights = np.array([w for _, _, w in self._hotspots])
        self._weights = weights / weights.sum()
        self._speed = speed
        self._jitter = jitter
        self._switch_probability = switch_probability

    def _assign_hotspot(self, state: MobilityState, rng: np.random.Generator) -> None:
        index = int(rng.choice(len(self._hotspots), p=self._weights))
        hx, hy, _ = self._hotspots[index]
        state.target_x, state.target_y = hx, hy

    def initial_state(self, rng: np.random.Generator) -> MobilityState:
        state = super().initial_state(rng)
        self._assign_hotspot(state, rng)
        return state

    def step(self, state: MobilityState, dt: float, rng: np.random.Generator) -> None:
        if state.target_x is None or rng.random() < self._switch_probability:
            self._assign_hotspot(state, rng)
        dx = state.target_x - state.x
        dy = state.target_y - state.y
        distance = math.hypot(dx, dy)
        travel = min(self._speed * dt, distance)
        if distance > 1e-12:
            state.x += travel * dx / distance
            state.y += travel * dy / distance
        state.x += float(rng.normal(0.0, self._jitter * math.sqrt(dt)))
        state.y += float(rng.normal(0.0, self._jitter * math.sqrt(dt)))
        self._clamp(state)
