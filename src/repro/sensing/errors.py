"""Measurement-error models (Section VI extension).

The paper: "Errors can be introduced by sampling constraints, GPS errors,
sensors inaccuracies, or errors in human judgment.  In the future, we will
explore methods for mitigating the effect of such errors on query accuracy."

This module provides the error sources; the mitigation operators live in
:mod:`repro.core.pmat.cleaning`.

* :class:`GpsNoiseModel` — Gaussian position error, clamped to the region.
* :class:`ValueErrorModel` — additive sensor noise plus occasional gross
  outliers for numeric attributes, and random flips for boolean (human
  judgment) attributes.
* :class:`ErrorInjector` — applies both models to sensor tuples, so any
  stream (from the handler or from synthetic generators) can be corrupted
  in a controlled, reproducible way for robustness experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List, Optional

import numpy as np

from ..errors import CraqrError
from ..geometry import Rectangle
from ..rng import ensure_rng
from ..streams import SensorTuple


@dataclass(frozen=True)
class GpsNoiseModel:
    """Gaussian GPS error with standard deviation ``sigma`` (in map units)."""

    sigma: float
    region: Optional[Rectangle] = None

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise CraqrError("the GPS noise sigma cannot be negative")

    def perturb(self, x: float, y: float, rng: np.random.Generator) -> tuple:
        """Return a noisy position (clamped into the region when one is set)."""
        if self.sigma == 0:
            return (x, y)
        noisy_x = x + float(rng.normal(0.0, self.sigma))
        noisy_y = y + float(rng.normal(0.0, self.sigma))
        if self.region is not None:
            noisy_x = min(max(noisy_x, self.region.x_min), self.region.x_max)
            noisy_y = min(max(noisy_y, self.region.y_min), self.region.y_max)
        return (noisy_x, noisy_y)


@dataclass(frozen=True)
class ValueErrorModel:
    """Sensor inaccuracy and human-judgment errors on the sensed value.

    Attributes
    ----------
    noise_std:
        Standard deviation of additive Gaussian noise on numeric values.
    outlier_probability:
        Probability that a numeric reading is replaced by a gross outlier.
    outlier_scale:
        Magnitude of gross outliers (added or subtracted).
    flip_probability:
        Probability that a boolean (human-sensed) value is flipped.
    """

    noise_std: float = 0.0
    outlier_probability: float = 0.0
    outlier_scale: float = 10.0
    flip_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.noise_std < 0 or self.outlier_scale < 0:
            raise CraqrError("noise parameters cannot be negative")
        if not 0 <= self.outlier_probability <= 1:
            raise CraqrError("outlier_probability must be in [0, 1]")
        if not 0 <= self.flip_probability <= 1:
            raise CraqrError("flip_probability must be in [0, 1]")

    def corrupt(self, value, rng: np.random.Generator):
        """Return the corrupted value (type preserved)."""
        if isinstance(value, bool):
            if rng.random() < self.flip_probability:
                return not value
            return value
        if isinstance(value, (int, float)) and value is not None:
            corrupted = float(value)
            if self.noise_std > 0:
                corrupted += float(rng.normal(0.0, self.noise_std))
            if self.outlier_probability > 0 and rng.random() < self.outlier_probability:
                sign = 1.0 if rng.random() < 0.5 else -1.0
                corrupted += sign * self.outlier_scale
            return corrupted
        return value


class ErrorInjector:
    """Applies GPS and value error models to sensor tuples."""

    def __init__(
        self,
        *,
        gps: Optional[GpsNoiseModel] = None,
        value: Optional[ValueErrorModel] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._gps = gps
        self._value = value
        self._rng = ensure_rng(rng)
        self._corrupted = 0

    @property
    def corrupted(self) -> int:
        """Number of tuples processed so far."""
        return self._corrupted

    def corrupt_tuple(self, item: SensorTuple) -> SensorTuple:
        """Return a corrupted copy of one tuple."""
        x, y = item.x, item.y
        if self._gps is not None:
            x, y = self._gps.perturb(x, y, self._rng)
        value = item.value
        if self._value is not None:
            value = self._value.corrupt(value, self._rng)
        self._corrupted += 1
        metadata = dict(item.metadata)
        metadata.setdefault("true_x", item.x)
        metadata.setdefault("true_y", item.y)
        metadata.setdefault("true_value", item.value)
        return replace(item, x=x, y=y, value=value, metadata=metadata)

    def corrupt_many(self, items: Iterable[SensorTuple]) -> List[SensorTuple]:
        """Corrupted copies of every tuple in ``items``."""
        return [self.corrupt_tuple(item) for item in items]
