"""A simple spatio-temporal grid index over stored tuples.

The index buckets tuple positions into a uniform spatial grid and keeps each
bucket's tuples sorted by insertion (which is time order for streaming
inserts).  Range queries intersect the query rectangle with the buckets and
filter within candidate buckets — the standard grid-file trade-off, entirely
adequate for the in-memory scales of the simulator.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import StorageError
from ..geometry import Rectangle
from ..streams import SensorTuple


class SpatioTemporalIndex:
    """Uniform-grid spatial index with per-bucket time ordering."""

    def __init__(self, region: Rectangle, *, nx: int = 16, ny: int = 16) -> None:
        if nx <= 0 or ny <= 0:
            raise StorageError("index grid dimensions must be positive")
        self._region = region
        self._nx = nx
        self._ny = ny
        self._buckets: Dict[Tuple[int, int], List[SensorTuple]] = {}
        self._count = 0

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of indexed tuples."""
        return self._count

    @property
    def bucket_count(self) -> int:
        """Number of non-empty buckets."""
        return len(self._buckets)

    def _bucket_of(self, x: float, y: float) -> Tuple[int, int]:
        q = int((x - self._region.x_min) / self._region.width * self._nx)
        r = int((y - self._region.y_min) / self._region.height * self._ny)
        return (min(max(q, 0), self._nx - 1), min(max(r, 0), self._ny - 1))

    # ------------------------------------------------------------------
    def insert(self, item: SensorTuple) -> None:
        """Index one tuple."""
        bucket = self._bucket_of(item.x, item.y)
        self._buckets.setdefault(bucket, []).append(item)
        self._count += 1

    def insert_many(self, items: Iterable[SensorTuple]) -> int:
        """Index many tuples; returns the number inserted."""
        inserted = 0
        for item in items:
            self.insert(item)
            inserted += 1
        return inserted

    def query(
        self,
        rect: Rectangle,
        *,
        t_start: Optional[float] = None,
        t_end: Optional[float] = None,
        attribute: Optional[str] = None,
    ) -> List[SensorTuple]:
        """Tuples inside ``rect`` (and optionally a time window / attribute)."""
        q_min, r_min = self._bucket_of(rect.x_min, rect.y_min)
        q_max, r_max = self._bucket_of(rect.x_max, rect.y_max)
        results: List[SensorTuple] = []
        for q in range(q_min, q_max + 1):
            for r in range(r_min, r_max + 1):
                for item in self._buckets.get((q, r), []):
                    if not rect.contains(item.x, item.y, closed=True):
                        continue
                    if t_start is not None and item.t < t_start:
                        continue
                    if t_end is not None and item.t >= t_end:
                        continue
                    if attribute is not None and item.attribute != attribute:
                        continue
                    results.append(item)
        results.sort(key=lambda item: item.t)
        return results

    def clear(self) -> None:
        """Drop everything from the index."""
        self._buckets.clear()
        self._count = 0
