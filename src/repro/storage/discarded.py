"""Storage for tuples discarded by PMAT operators.

The paper notes, for the Flatten operator, that "if necessary, the discarded
tuples can be stored separately".  :class:`DiscardedStore` is that separate
store: a capped tuple store keyed by the operator that dropped each tuple,
so later analyses (or re-planning) can recover cheaply acquired but unused
observations.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import StorageError
from ..streams import SensorTuple
from .tuple_store import TupleStore


class DiscardedStore:
    """Per-operator storage of discarded tuples."""

    def __init__(self, *, capacity_per_operator: Optional[int] = 10_000) -> None:
        if capacity_per_operator is not None and capacity_per_operator <= 0:
            raise StorageError("capacity_per_operator must be positive or None")
        self._capacity = capacity_per_operator
        self._stores: Dict[str, TupleStore] = {}
        self._total = 0

    # ------------------------------------------------------------------
    @property
    def total_discarded(self) -> int:
        """Total tuples recorded since creation (evictions included)."""
        return self._total

    @property
    def operators(self) -> List[str]:
        """Names of operators that have discarded at least one tuple."""
        return list(self._stores.keys())

    def record(self, operator_name: str, item: SensorTuple) -> None:
        """Record one discarded tuple for the given operator."""
        if not operator_name:
            raise StorageError("operator_name must be non-empty")
        store = self._stores.get(operator_name)
        if store is None:
            store = TupleStore(capacity=self._capacity)
            self._stores[operator_name] = store
        store.insert(item)
        self._total += 1

    def subscriber_for(self, operator_name: str):
        """A callback suitable for subscribing to an operator's discard stream."""
        return lambda item: self.record(operator_name, item)

    def for_operator(self, operator_name: str) -> List[SensorTuple]:
        """The retained discarded tuples of one operator."""
        store = self._stores.get(operator_name)
        return store.all() if store is not None else []

    def counts(self) -> Dict[str, int]:
        """Currently retained discarded-tuple counts per operator."""
        return {name: len(store) for name, store in self._stores.items()}
