"""A general-purpose in-memory tuple store with an optional retention cap.

Used for raw acquisition batches (so examples can inspect what the handler
collected) and, through :class:`~repro.storage.discarded.DiscardedStore`, for
the tuples PMAT operators drop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional

from ..errors import StorageError
from ..geometry import Rectangle
from ..streams import SensorTuple
from .index import SpatioTemporalIndex


@dataclass(frozen=True)
class StoreStats:
    """Summary statistics of a tuple store."""

    stored: int
    inserted_total: int
    evicted_total: int
    attributes: tuple


class TupleStore:
    """An append-mostly, optionally capped, in-memory tuple store.

    Parameters
    ----------
    capacity:
        Maximum number of tuples retained; older tuples are evicted FIFO
        when the cap is exceeded.  ``None`` means unbounded.
    region:
        When provided, an auxiliary spatial index is maintained so range
        queries do not scan the whole store.
    """

    def __init__(
        self,
        *,
        capacity: Optional[int] = None,
        region: Optional[Rectangle] = None,
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise StorageError("capacity must be positive or None")
        self._capacity = capacity
        self._items: Deque[SensorTuple] = deque()
        self._inserted = 0
        self._evicted = 0
        self._index = SpatioTemporalIndex(region) if region is not None else None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def capacity(self) -> Optional[int]:
        """The retention cap (``None`` when unbounded)."""
        return self._capacity

    def insert(self, item: SensorTuple) -> None:
        """Store one tuple, evicting the oldest when over capacity."""
        self._items.append(item)
        self._inserted += 1
        if self._index is not None:
            self._index.insert(item)
        if self._capacity is not None and len(self._items) > self._capacity:
            evicted = self._items.popleft()
            self._evicted += 1
            if self._index is not None:
                # Rebuilding the index on eviction would be wasteful; the
                # index over-approximates and range queries re-check membership.
                del evicted

    def insert_many(self, items: Iterable[SensorTuple]) -> int:
        """Store many tuples; returns the number inserted."""
        count = 0
        for item in items:
            self.insert(item)
            count += 1
        return count

    # ------------------------------------------------------------------
    def all(self) -> List[SensorTuple]:
        """Every stored tuple, oldest first."""
        return list(self._items)

    def for_attribute(self, attribute: str) -> List[SensorTuple]:
        """Stored tuples of one attribute, oldest first."""
        return [item for item in self._items if item.attribute == attribute]

    def in_time_window(self, t_start: float, t_end: float) -> List[SensorTuple]:
        """Stored tuples with ``t_start <= t < t_end``."""
        if t_end <= t_start:
            raise StorageError("the time window must have positive length")
        return [item for item in self._items if t_start <= item.t < t_end]

    def in_rectangle(self, rect: Rectangle, **kwargs) -> List[SensorTuple]:
        """Stored tuples inside a rectangle (uses the index when available)."""
        if self._index is not None:
            candidates = self._index.query(rect, **kwargs)
            live = set(id(item) for item in self._items)
            return [item for item in candidates if id(item) in live]
        results = [
            item for item in self._items if rect.contains(item.x, item.y, closed=True)
        ]
        attribute = kwargs.get("attribute")
        t_start = kwargs.get("t_start")
        t_end = kwargs.get("t_end")
        if attribute is not None:
            results = [item for item in results if item.attribute == attribute]
        if t_start is not None:
            results = [item for item in results if item.t >= t_start]
        if t_end is not None:
            results = [item for item in results if item.t < t_end]
        return results

    def clear(self) -> None:
        """Drop every stored tuple (statistics are kept)."""
        self._items.clear()
        if self._index is not None:
            self._index.clear()

    def stats(self) -> StoreStats:
        """Summary statistics."""
        return StoreStats(
            stored=len(self._items),
            inserted_total=self._inserted,
            evicted_total=self._evicted,
            attributes=tuple(sorted({item.attribute for item in self._items})),
        )
