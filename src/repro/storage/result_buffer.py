"""Per-query result buffers and the session-consumption surface over them.

Each registered acquisitional query gets a :class:`QueryResultBuffer` that
accumulates its fabricated crowdsensed data stream, batch by batch, and can
answer the questions the evaluation cares about: how many tuples arrived per
batch, what the achieved rate is, and how far it is from the requested rate.

The buffer ingests both per-tuple deliveries (:meth:`QueryResultBuffer.append`,
the object path) and whole :class:`~repro.streams.TupleBatch` columns
(:meth:`QueryResultBuffer.extend_batch`, the columnar fast path).  Batches
are kept columnar internally; individual :class:`SensorTuple` objects are
only materialised when an object-level accessor such as :meth:`items` asks
for them.

Three consumption surfaces sit on top of the chunk list:

* :meth:`QueryResultBuffer.items` / :meth:`QueryResultBuffer.values` — the
  classic whole-history accessors (cost grows with retained history).
* :meth:`QueryResultBuffer.cursor` — a resumable :class:`ResultCursor` that
  reads only the chunks appended since its last read, in object *or*
  columnar form, so a polling consumer pays O(new tuples) per read.
* :meth:`QueryResultBuffer.subscribe` — push :class:`Subscription` callbacks
  invoked once per completed batch with the batch's delivered tuples as one
  :class:`~repro.streams.TupleBatch`.

With ``retention_batches`` set, chunks older than the retention window are
evicted at every batch end while the lifetime accounting
(:attr:`QueryResultBuffer.total_tuples`, the whole-history achieved rate)
stays exact through running totals; a cursor that lags behind the window
raises :class:`~repro.errors.StorageError` on its next read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Tuple, Union

import numpy as np

from ..errors import StorageError
from ..pointprocess import EventBatch
from ..streams import SensorTuple, TupleBatch

#: Internal storage unit: a run of object tuples or one columnar batch.
_Chunk = Union[List[SensorTuple], TupleBatch]

#: Callback type of push subscriptions: receives one batch's deliveries.
SubscriberFn = Callable[[TupleBatch], None]


@dataclass(frozen=True)
class RateEstimate:
    """Achieved-rate summary over a span of batches."""

    tuples: int
    duration: float
    area: float
    achieved_rate: float
    requested_rate: float

    @property
    def relative_error(self) -> float:
        """``|achieved - requested| / requested``."""
        if self.requested_rate <= 0:
            return float("nan")
        return abs(self.achieved_rate - self.requested_rate) / self.requested_rate


class ResultCursor:
    """A resumable read position over one query's result buffer.

    A cursor remembers which chunk (and row within it) it has consumed up
    to; every read returns only what arrived since and advances the
    position.  Reads are backed by the buffer's chunk list directly, so
    their cost is proportional to the *new* tuples, independent of how much
    history the buffer retains.

    Two read forms share one position:

    * :meth:`fetch` — the new tuples as :class:`SensorTuple` objects (the
      cursor is also iterable: ``for item in cursor`` drains what is
      currently pending).
    * :meth:`fetch_batch` — the new tuples as one columnar
      :class:`TupleBatch` (chunks that are already materialised as object
      lists are converted; purely columnar histories never materialise).

    When the buffer evicts chunks the cursor has not consumed yet
    (``retention_batches`` or an explicit ``capacity``), the next read
    raises :class:`StorageError` naming how far behind the cursor fell.
    """

    __slots__ = ("_buffer", "_chunk_seq", "_row", "_global")

    def __init__(self, buffer: "QueryResultBuffer", chunk_seq: int, row: int, global_index: int) -> None:
        self._buffer = buffer
        self._chunk_seq = chunk_seq
        self._row = row
        self._global = global_index

    # ------------------------------------------------------------------
    @property
    def buffer(self) -> "QueryResultBuffer":
        """The buffer this cursor reads from."""
        return self._buffer

    @property
    def position(self) -> Tuple[int, int]:
        """The ``(chunk sequence, row)`` position the cursor has consumed up to."""
        return (self._chunk_seq, self._row)

    @property
    def consumed(self) -> int:
        """Tuples the cursor has consumed (including any skipped at creation)."""
        return self._global

    @property
    def pending(self) -> int:
        """Tuples delivered to the buffer but not yet read through this cursor."""
        return self._buffer.total_tuples - self._global

    # ------------------------------------------------------------------
    def fetch(self) -> List[SensorTuple]:
        """The tuples appended since the last read, as objects (advances)."""
        items: List[SensorTuple] = []
        for chunk, start in self._advance():
            if isinstance(chunk, list):
                items.extend(chunk[start:] if start else chunk)
            else:
                part = chunk if start == 0 else chunk.select(np.arange(start, len(chunk)))
                items.extend(part.to_tuples())
        return items

    def fetch_batch(self) -> TupleBatch:
        """The tuples appended since the last read, as one columnar batch.

        Returns an empty batch when nothing is pending.  Object-list chunks
        (e.g. from the non-columnar engine path) are converted with
        :meth:`TupleBatch.from_tuples`; columnar chunks are sliced without
        materialising any tuple objects.
        """
        parts: List[TupleBatch] = []
        for chunk, start in self._advance():
            if isinstance(chunk, list):
                parts.append(TupleBatch.from_tuples(chunk[start:] if start else chunk))
            elif start == 0:
                parts.append(chunk)
            else:
                parts.append(chunk.select(np.arange(start, len(chunk))))
        if not parts:
            return TupleBatch.empty()
        return TupleBatch.concatenate(parts)

    def __iter__(self) -> Iterator[SensorTuple]:
        """Drain the currently pending tuples as an object iterator."""
        return iter(self.fetch())

    # ------------------------------------------------------------------
    def _advance(self) -> List[Tuple[_Chunk, int]]:
        """Collect ``(chunk, start_row)`` segments past the position and advance."""
        segments, position, read = self._buffer._segments_from(
            self._chunk_seq, self._row, consumed=self._global
        )
        self._chunk_seq, self._row = position
        self._global += read
        return segments


class Subscription:
    """A push subscription on a result buffer (see :meth:`QueryResultBuffer.subscribe`)."""

    __slots__ = ("_buffer", "_fn")

    def __init__(self, buffer: "QueryResultBuffer", fn: SubscriberFn) -> None:
        self._buffer = buffer
        self._fn = fn

    @property
    def active(self) -> bool:
        """Whether the subscription still receives callbacks."""
        return self._fn is not None and self._fn in self._buffer._subscribers

    def cancel(self) -> None:
        """Stop receiving callbacks (idempotent)."""
        if self._fn is not None:
            try:
                self._buffer._subscribers.remove(self._fn)
            except ValueError:
                pass
            self._fn = None


class QueryResultBuffer:
    """Accumulates the fabricated MCDS of one query.

    Parameters
    ----------
    query_id:
        Id of the owning query.
    requested_rate / region_area:
        The query's target rate and region area (used by rate estimates;
        both are updatable in-flight via :meth:`set_requested_rate` /
        :meth:`set_region_area` when the query is altered live).
    capacity:
        Optional cap on retained *tuples*; oldest rows are trimmed.
    retention_batches:
        Optional cap on retained *batches*: at every :meth:`end_batch` the
        chunks of batches older than the window are evicted wholesale.
        Lifetime accounting survives eviction exactly (running totals);
        only windowed reads beyond the retained history raise
        :class:`StorageError`.
    """

    #: Runtime wiring __getstate__ deliberately drops from checkpoints;
    #: craqr-lint (CRQ302) checks this declaration against the exclusions.
    _DERIVED_STATE = ("_subscribers", "_notify_cursor")

    def __init__(
        self,
        query_id: int,
        *,
        requested_rate: float,
        region_area: float,
        capacity: Optional[int] = None,
        retention_batches: Optional[int] = None,
    ) -> None:
        if requested_rate <= 0:
            raise StorageError("requested_rate must be positive")
        if region_area <= 0:
            raise StorageError("region_area must be positive")
        if capacity is not None and capacity <= 0:
            raise StorageError("capacity must be positive or None")
        if retention_batches is not None and retention_batches <= 0:
            raise StorageError("retention_batches must be positive or None")
        self._query_id = query_id
        self._requested_rate = requested_rate
        self._region_area = region_area
        self._capacity = capacity
        self._retention = retention_batches
        self._chunks: List[_Chunk] = []
        #: global sequence number of ``_chunks[0]`` (chunks ever created
        #: before it); lets cursor positions survive front eviction.
        self._chunk_base = 0
        #: rows trimmed/evicted from the front of the current head chunk,
        #: relative to the head chunk's original content.
        self._head_dropped = 0
        self._size = 0
        #: retained per-batch counts (the newest ``retention_batches`` when
        #: retention is on, the whole history otherwise) ...
        self._per_batch_counts: List[int] = []
        #: ... with, per retained batch, the chunk sequence *after* it.
        self._batch_bounds: List[int] = []
        self._batches_completed = 0
        self._completed_total = 0
        self._current_batch = 0
        self._total = 0
        self._evicted = 0
        #: whether the last chunk is an append-grown object list that may
        #: still receive rows.  Closed batch-boundary chunks never grow, so
        #: a cursor at their end can point *past* them — which both keeps a
        #: fully-caught-up cursor immune to their eviction and lets
        #: retention evict whole chunks without splitting one across
        #: batches (a new chunk always starts after a batch boundary).
        self._tail_open_list = False
        self._subscribers: List[SubscriberFn] = []
        self._notify_cursor: Optional[ResultCursor] = None

    def __getstate__(self):
        # Push subscribers are runtime wiring (user callbacks, view
        # delivery) that cannot — and must not — survive a checkpoint:
        # restore re-subscribes the engine-managed view callbacks
        # deterministically, and user code re-subscribes its own.  The
        # shared notify cursor is recreated at the tail lazily on the next
        # subscribe(); checkpoints are taken at batch boundaries, where the
        # tail cursor carries no pending tuples.
        state = dict(self.__dict__)
        state["_subscribers"] = []
        state["_notify_cursor"] = None
        return state

    # ------------------------------------------------------------------
    @property
    def query_id(self) -> int:
        """Id of the query this buffer belongs to."""
        return self._query_id

    @property
    def requested_rate(self) -> float:
        """The query's requested rate."""
        return self._requested_rate

    @property
    def retention_batches(self) -> Optional[int]:
        """The retention window in batches (``None`` keeps everything)."""
        return self._retention

    @property
    def total_tuples(self) -> int:
        """All tuples delivered since registration (survives eviction)."""
        return self._total

    @property
    def evicted_tuples(self) -> int:
        """Tuples evicted by retention or the capacity cap."""
        return self._evicted

    @property
    def batches_completed(self) -> int:
        """Completed batches since registration (survives eviction)."""
        return self._batches_completed

    @property
    def per_batch_counts(self) -> List[int]:
        """Tuples delivered in each *retained* completed batch."""
        return list(self._per_batch_counts)

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    # Live-session mutation (used by ALTER ... SET RATE / SET REGION)
    # ------------------------------------------------------------------
    def set_requested_rate(self, requested_rate: float) -> None:
        """Change the requested rate future rate estimates compare against."""
        if requested_rate <= 0:
            raise StorageError("requested_rate must be positive")
        self._requested_rate = float(requested_rate)

    def set_region_area(self, region_area: float) -> None:
        """Change the region area rate estimates normalise by."""
        if region_area <= 0:
            raise StorageError("region_area must be positive")
        self._region_area = float(region_area)

    # ------------------------------------------------------------------
    def append(self, item: SensorTuple) -> None:
        """Deliver one tuple of the query's stream."""
        if self._chunks and self._tail_open_list:
            self._chunks[-1].append(item)
        else:
            self._chunks.append([item])
            self._tail_open_list = True
        self._size += 1
        self._total += 1
        self._current_batch += 1
        self._trim()

    def extend_batch(self, batch: TupleBatch) -> None:
        """Deliver a whole columnar batch of the query's stream.

        The batch is retained columnar — no tuple objects are created until
        an object-level accessor needs them.
        """
        count = len(batch)
        if count == 0:
            return
        self._chunks.append(batch)
        self._tail_open_list = False
        self._size += count
        self._total += count
        self._current_batch += count
        self._trim()

    def _drop_head_chunk(self) -> int:
        """Evict the whole head chunk; returns how many rows it held."""
        head_len = len(self._chunks[0])
        del self._chunks[0]
        self._chunk_base += 1
        self._head_dropped = 0
        self._size -= head_len
        self._evicted += head_len
        if not self._chunks:
            self._tail_open_list = False
        return head_len

    def _trim(self) -> None:
        if self._capacity is None:
            return
        excess = self._size - self._capacity
        while excess > 0:
            head = self._chunks[0]
            head_len = len(head)
            if head_len <= excess:
                self._drop_head_chunk()
                excess -= head_len
            elif isinstance(head, list):
                del head[:excess]
                self._head_dropped += excess
                self._size -= excess
                self._evicted += excess
                excess = 0
            else:
                self._chunks[0] = head.select(np.arange(excess, head_len))
                self._head_dropped += excess
                self._size -= excess
                self._evicted += excess
                excess = 0

    def end_batch(self) -> int:
        """Close the current batch; returns the number of tuples it delivered.

        Push subscriptions fire here (once per batch, with the batch's
        deliveries as one :class:`TupleBatch`), then chunks older than the
        retention window are evicted.
        """
        count = self._current_batch
        self._per_batch_counts.append(count)
        self._batch_bounds.append(self._chunk_base + len(self._chunks))
        self._batches_completed += 1
        self._completed_total += count
        self._current_batch = 0
        self._tail_open_list = False
        self._notify_subscribers()
        if self._retention is not None:
            while len(self._per_batch_counts) > self._retention:
                self._per_batch_counts.pop(0)
                bound = self._batch_bounds.pop(0)
                while self._chunk_base < bound and self._chunks:
                    self._drop_head_chunk()
        return count

    # ------------------------------------------------------------------
    # Incremental consumption
    # ------------------------------------------------------------------
    def cursor(self, *, tail: bool = False) -> ResultCursor:
        """A resumable cursor over the buffer's stream.

        ``tail=False`` (default) starts at the beginning of the *retained*
        history, so the first read catches the consumer up; ``tail=True``
        starts past everything already delivered, so only future deliveries
        are returned.
        """
        if tail:
            chunk_seq, row = self._tail_position()
            return ResultCursor(self, chunk_seq, row, self._total)
        return ResultCursor(self, self._chunk_base, self._head_dropped, self._evicted)

    def subscribe(self, fn: SubscriberFn) -> Subscription:
        """Register a push callback invoked once per completed batch.

        The callback receives the batch's deliveries as one
        :class:`TupleBatch` (empty batches do not fire).  Returns a
        :class:`Subscription` whose :meth:`~Subscription.cancel` detaches
        the callback.
        """
        if not callable(fn):
            raise StorageError("a subscriber must be callable")
        if self._notify_cursor is None:
            self._notify_cursor = self.cursor(tail=True)
        self._subscribers.append(fn)
        return Subscription(self, fn)

    def _notify_subscribers(self) -> None:
        cursor = self._notify_cursor
        if cursor is None:
            return
        if not self._subscribers:
            # Keep the shared cursor at the tail so it never falls behind
            # the retention window while nobody is subscribed.
            self._notify_cursor = self.cursor(tail=True)
            return
        batch = cursor.fetch_batch()
        if len(batch) == 0:
            return
        for fn in list(self._subscribers):
            fn(batch)

    def _tail_position(self) -> Tuple[int, int]:
        """The ``(chunk_seq, row)`` position just past everything delivered.

        When the last chunk is closed (a columnar batch, or an object list
        sealed by a batch boundary) the position points past it entirely,
        so a caught-up cursor is not invalidated when that chunk is later
        evicted.  Only an append-grown open list pins the position inside
        the chunk, because future rows may still land there.
        """
        if not self._chunks:
            return (self._chunk_base, 0)
        if not self._tail_open_list:
            return (self._chunk_base + len(self._chunks), 0)
        last_index = len(self._chunks) - 1
        dropped = self._head_dropped if last_index == 0 else 0
        return (self._chunk_base + last_index, len(self._chunks[last_index]) + dropped)

    def _segments_from(
        self, chunk_seq: int, row: int, *, consumed: Optional[int] = None
    ) -> Tuple[List[Tuple[_Chunk, int]], Tuple[int, int], int]:
        """Chunk segments past ``(chunk_seq, row)``; used by cursors.

        Returns ``(segments, new_position, tuples_read)`` where each
        segment is a ``(chunk, physical_start_row)`` pair.  Raises
        :class:`StorageError` when the position points below the retained
        history (the chunks were evicted before being read) — unless
        ``consumed`` (the cursor's lifetime tuple count) shows every
        evicted tuple was already read, in which case the position was
        merely pinned inside a fully-consumed chunk (an open object-list
        tail read mid-batch) and the read resumes losslessly from the
        start of the retained history.
        """
        if chunk_seq < self._chunk_base or (
            chunk_seq == self._chunk_base and self._chunks and row < self._head_dropped
        ):
            if consumed is not None and consumed >= self._evicted:
                chunk_seq, row = self._chunk_base, self._head_dropped
            else:
                first_retained = self._batches_completed - len(self._per_batch_counts)
                behind = (
                    f"; the cursor is {self._evicted - consumed} tuples behind "
                    f"the oldest retained row"
                    if consumed is not None
                    else ""
                )
                raise StorageError(
                    f"cursor position has been evicted: the cursor was at chunk "
                    f"{chunk_seq} row {row}, but the buffer retains chunks from "
                    f"sequence {self._chunk_base} (row {self._head_dropped}) "
                    f"onwards — batches {first_retained}..{self._batches_completed - 1} "
                    f"of {self._batches_completed} completed "
                    f"(retention_batches={self._retention}, {self._evicted} of "
                    f"{self._total} lifetime tuples evicted){behind}; open a fresh "
                    f"cursor() to resume from the retained history"
                )
        local = chunk_seq - self._chunk_base
        if local > len(self._chunks):
            raise StorageError(
                f"cursor position (chunk {chunk_seq}) is ahead of the buffer "
                f"(next chunk is {self._chunk_base + len(self._chunks)})"
            )
        segments: List[Tuple[_Chunk, int]] = []
        read = 0
        for index in range(local, len(self._chunks)):
            chunk = self._chunks[index]
            dropped = self._head_dropped if index == 0 else 0
            start = (row - dropped) if index == local else 0
            length = len(chunk)
            if start < length:
                segments.append((chunk, start))
                read += length - start
        return segments, self._tail_position(), read

    # ------------------------------------------------------------------
    def items(self) -> List[SensorTuple]:
        """The retained tuples, oldest first (materialised lazily).

        A columnar chunk is materialised once and the list kept in its
        place, so repeated calls (e.g. a monitoring loop polling
        ``QueryHandle.results()``) pay object construction only for chunks
        delivered since the previous call.
        """
        items: List[SensorTuple] = []
        for index, chunk in enumerate(self._chunks):
            if not isinstance(chunk, list):
                chunk = chunk.to_tuples()
                self._chunks[index] = chunk
            items.extend(chunk)
        return items

    def values(self) -> List:
        """The sensed values of the retained tuples."""
        values: List = []
        for chunk in self._chunks:
            if isinstance(chunk, list):
                values.extend(item.value for item in chunk)
            else:
                values.extend(np.asarray(chunk.value).tolist())
        return values

    def to_event_batch(self) -> EventBatch:
        """The retained tuples' coordinates as an :class:`EventBatch`.

        Columnar chunks contribute their coordinate columns directly.
        """
        if not self._chunks:
            return EventBatch.empty()
        parts: List[EventBatch] = []
        for chunk in self._chunks:
            if isinstance(chunk, list):
                parts.append(
                    EventBatch.from_rows([(it.t, it.x, it.y) for it in chunk])
                )
            else:
                parts.append(EventBatch(chunk.t, chunk.x, chunk.y))
        if len(parts) == 1:
            return parts[0]
        return EventBatch.concatenate(parts)

    def rate_over(self, duration: float) -> RateEstimate:
        """Achieved rate over the given total duration of observation."""
        if duration <= 0:
            raise StorageError("duration must be positive")
        achieved = self._total / (self._region_area * duration)
        return RateEstimate(
            tuples=self._total,
            duration=duration,
            area=self._region_area,
            achieved_rate=achieved,
            requested_rate=self._requested_rate,
        )

    def rate_over_batches(self, batch_duration: float, last: Optional[int] = None) -> RateEstimate:
        """Achieved rate over the most recent ``last`` completed batches.

        ``last=None`` means the whole history; an explicit ``last`` must be
        positive (``last=0`` used to slice ``[-0:]``, silently reporting the
        lifetime rate instead of an empty window).  The whole-history rate
        stays exact under retention (running totals survive eviction); a
        windowed ``last`` larger than the retained window raises
        :class:`StorageError`.
        """
        if batch_duration <= 0:
            raise StorageError("batch_duration must be positive")
        if last is not None and last <= 0:
            raise StorageError("last must be positive (or None for the whole history)")
        if self._batches_completed == 0:
            raise StorageError("no completed batches yet")
        if last is None or last >= self._batches_completed:
            tuples = self._completed_total
            batches = self._batches_completed
        else:
            if last > len(self._per_batch_counts):
                first_retained = self._batches_completed - len(self._per_batch_counts)
                raise StorageError(
                    f"cannot window over the last {last} batches: only the last "
                    f"{len(self._per_batch_counts)} batch counts are retained — "
                    f"batches {first_retained}..{self._batches_completed - 1} of "
                    f"{self._batches_completed} completed "
                    f"(retention_batches={self._retention}); use last=None for "
                    f"the exact lifetime rate"
                )
            tuples = sum(self._per_batch_counts[-last:])
            batches = last
        duration = batch_duration * batches
        achieved = tuples / (self._region_area * duration)
        return RateEstimate(
            tuples=tuples,
            duration=duration,
            area=self._region_area,
            achieved_rate=achieved,
            requested_rate=self._requested_rate,
        )
