"""Per-query result buffers.

Each registered acquisitional query gets a :class:`QueryResultBuffer` that
accumulates its fabricated crowdsensed data stream, batch by batch, and can
answer the questions the evaluation cares about: how many tuples arrived per
batch, what the achieved rate is, and how far it is from the requested rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..errors import StorageError
from ..pointprocess import EventBatch
from ..streams import SensorTuple


@dataclass(frozen=True)
class RateEstimate:
    """Achieved-rate summary over a span of batches."""

    tuples: int
    duration: float
    area: float
    achieved_rate: float
    requested_rate: float

    @property
    def relative_error(self) -> float:
        """``|achieved - requested| / requested``."""
        if self.requested_rate <= 0:
            return float("nan")
        return abs(self.achieved_rate - self.requested_rate) / self.requested_rate


class QueryResultBuffer:
    """Accumulates the fabricated MCDS of one query."""

    def __init__(
        self,
        query_id: int,
        *,
        requested_rate: float,
        region_area: float,
        capacity: Optional[int] = None,
    ) -> None:
        if requested_rate <= 0:
            raise StorageError("requested_rate must be positive")
        if region_area <= 0:
            raise StorageError("region_area must be positive")
        if capacity is not None and capacity <= 0:
            raise StorageError("capacity must be positive or None")
        self._query_id = query_id
        self._requested_rate = requested_rate
        self._region_area = region_area
        self._capacity = capacity
        self._items: List[SensorTuple] = []
        self._per_batch_counts: List[int] = []
        self._current_batch = 0
        self._total = 0

    # ------------------------------------------------------------------
    @property
    def query_id(self) -> int:
        """Id of the query this buffer belongs to."""
        return self._query_id

    @property
    def requested_rate(self) -> float:
        """The query's requested rate."""
        return self._requested_rate

    @property
    def total_tuples(self) -> int:
        """All tuples delivered since registration."""
        return self._total

    @property
    def per_batch_counts(self) -> List[int]:
        """Tuples delivered in each completed batch."""
        return list(self._per_batch_counts)

    def __len__(self) -> int:
        return len(self._items)

    # ------------------------------------------------------------------
    def append(self, item: SensorTuple) -> None:
        """Deliver one tuple of the query's stream."""
        self._items.append(item)
        self._total += 1
        self._current_batch += 1
        if self._capacity is not None and len(self._items) > self._capacity:
            del self._items[0: len(self._items) - self._capacity]

    def end_batch(self) -> int:
        """Close the current batch; returns the number of tuples it delivered."""
        count = self._current_batch
        self._per_batch_counts.append(count)
        self._current_batch = 0
        return count

    # ------------------------------------------------------------------
    def items(self) -> List[SensorTuple]:
        """The retained tuples, oldest first."""
        return list(self._items)

    def values(self) -> List:
        """The sensed values of the retained tuples."""
        return [item.value for item in self._items]

    def to_event_batch(self) -> EventBatch:
        """The retained tuples' coordinates as an :class:`EventBatch`."""
        return EventBatch.from_rows([(it.t, it.x, it.y) for it in self._items])

    def rate_over(self, duration: float) -> RateEstimate:
        """Achieved rate over the given total duration of observation."""
        if duration <= 0:
            raise StorageError("duration must be positive")
        achieved = self._total / (self._region_area * duration)
        return RateEstimate(
            tuples=self._total,
            duration=duration,
            area=self._region_area,
            achieved_rate=achieved,
            requested_rate=self._requested_rate,
        )

    def rate_over_batches(self, batch_duration: float, last: Optional[int] = None) -> RateEstimate:
        """Achieved rate over the most recent ``last`` completed batches."""
        if batch_duration <= 0:
            raise StorageError("batch_duration must be positive")
        counts = self._per_batch_counts if last is None else self._per_batch_counts[-last:]
        if not counts:
            raise StorageError("no completed batches yet")
        duration = batch_duration * len(counts)
        achieved = sum(counts) / (self._region_area * duration)
        return RateEstimate(
            tuples=sum(counts),
            duration=duration,
            area=self._region_area,
            achieved_rate=achieved,
            requested_rate=self._requested_rate,
        )
