"""Per-query result buffers.

Each registered acquisitional query gets a :class:`QueryResultBuffer` that
accumulates its fabricated crowdsensed data stream, batch by batch, and can
answer the questions the evaluation cares about: how many tuples arrived per
batch, what the achieved rate is, and how far it is from the requested rate.

The buffer ingests both per-tuple deliveries (:meth:`QueryResultBuffer.append`,
the object path) and whole :class:`~repro.streams.TupleBatch` columns
(:meth:`QueryResultBuffer.extend_batch`, the columnar fast path).  Batches
are kept columnar internally; individual :class:`SensorTuple` objects are
only materialised when an object-level accessor such as :meth:`items` asks
for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

import numpy as np

from ..errors import StorageError
from ..pointprocess import EventBatch
from ..streams import SensorTuple, TupleBatch

#: Internal storage unit: a run of object tuples or one columnar batch.
_Chunk = Union[List[SensorTuple], TupleBatch]


@dataclass(frozen=True)
class RateEstimate:
    """Achieved-rate summary over a span of batches."""

    tuples: int
    duration: float
    area: float
    achieved_rate: float
    requested_rate: float

    @property
    def relative_error(self) -> float:
        """``|achieved - requested| / requested``."""
        if self.requested_rate <= 0:
            return float("nan")
        return abs(self.achieved_rate - self.requested_rate) / self.requested_rate


class QueryResultBuffer:
    """Accumulates the fabricated MCDS of one query."""

    def __init__(
        self,
        query_id: int,
        *,
        requested_rate: float,
        region_area: float,
        capacity: Optional[int] = None,
    ) -> None:
        if requested_rate <= 0:
            raise StorageError("requested_rate must be positive")
        if region_area <= 0:
            raise StorageError("region_area must be positive")
        if capacity is not None and capacity <= 0:
            raise StorageError("capacity must be positive or None")
        self._query_id = query_id
        self._requested_rate = requested_rate
        self._region_area = region_area
        self._capacity = capacity
        self._chunks: List[_Chunk] = []
        self._size = 0
        self._per_batch_counts: List[int] = []
        self._current_batch = 0
        self._total = 0

    # ------------------------------------------------------------------
    @property
    def query_id(self) -> int:
        """Id of the query this buffer belongs to."""
        return self._query_id

    @property
    def requested_rate(self) -> float:
        """The query's requested rate."""
        return self._requested_rate

    @property
    def total_tuples(self) -> int:
        """All tuples delivered since registration."""
        return self._total

    @property
    def per_batch_counts(self) -> List[int]:
        """Tuples delivered in each completed batch."""
        return list(self._per_batch_counts)

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------
    def append(self, item: SensorTuple) -> None:
        """Deliver one tuple of the query's stream."""
        if self._chunks and isinstance(self._chunks[-1], list):
            self._chunks[-1].append(item)
        else:
            self._chunks.append([item])
        self._size += 1
        self._total += 1
        self._current_batch += 1
        self._trim()

    def extend_batch(self, batch: TupleBatch) -> None:
        """Deliver a whole columnar batch of the query's stream.

        The batch is retained columnar — no tuple objects are created until
        an object-level accessor needs them.
        """
        count = len(batch)
        if count == 0:
            return
        self._chunks.append(batch)
        self._size += count
        self._total += count
        self._current_batch += count
        self._trim()

    def _trim(self) -> None:
        if self._capacity is None:
            return
        excess = self._size - self._capacity
        while excess > 0:
            head = self._chunks[0]
            head_len = len(head)
            if head_len <= excess:
                del self._chunks[0]
                self._size -= head_len
                excess -= head_len
            elif isinstance(head, list):
                del head[:excess]
                self._size -= excess
                excess = 0
            else:
                self._chunks[0] = head.select(np.arange(excess, head_len))
                self._size -= excess
                excess = 0

    def end_batch(self) -> int:
        """Close the current batch; returns the number of tuples it delivered."""
        count = self._current_batch
        self._per_batch_counts.append(count)
        self._current_batch = 0
        return count

    # ------------------------------------------------------------------
    def items(self) -> List[SensorTuple]:
        """The retained tuples, oldest first (materialised lazily).

        A columnar chunk is materialised once and the list kept in its
        place, so repeated calls (e.g. a monitoring loop polling
        ``QueryHandle.results()``) pay object construction only for chunks
        delivered since the previous call.
        """
        items: List[SensorTuple] = []
        for index, chunk in enumerate(self._chunks):
            if not isinstance(chunk, list):
                chunk = chunk.to_tuples()
                self._chunks[index] = chunk
            items.extend(chunk)
        return items

    def values(self) -> List:
        """The sensed values of the retained tuples."""
        values: List = []
        for chunk in self._chunks:
            if isinstance(chunk, list):
                values.extend(item.value for item in chunk)
            else:
                values.extend(np.asarray(chunk.value).tolist())
        return values

    def to_event_batch(self) -> EventBatch:
        """The retained tuples' coordinates as an :class:`EventBatch`.

        Columnar chunks contribute their coordinate columns directly.
        """
        if not self._chunks:
            return EventBatch.empty()
        parts: List[EventBatch] = []
        for chunk in self._chunks:
            if isinstance(chunk, list):
                parts.append(
                    EventBatch.from_rows([(it.t, it.x, it.y) for it in chunk])
                )
            else:
                parts.append(EventBatch(chunk.t, chunk.x, chunk.y))
        if len(parts) == 1:
            return parts[0]
        return EventBatch.concatenate(parts)

    def rate_over(self, duration: float) -> RateEstimate:
        """Achieved rate over the given total duration of observation."""
        if duration <= 0:
            raise StorageError("duration must be positive")
        achieved = self._total / (self._region_area * duration)
        return RateEstimate(
            tuples=self._total,
            duration=duration,
            area=self._region_area,
            achieved_rate=achieved,
            requested_rate=self._requested_rate,
        )

    def rate_over_batches(self, batch_duration: float, last: Optional[int] = None) -> RateEstimate:
        """Achieved rate over the most recent ``last`` completed batches.

        ``last=None`` means the whole history; an explicit ``last`` must be
        positive (``last=0`` used to slice ``[-0:]``, silently reporting the
        lifetime rate instead of an empty window).
        """
        if batch_duration <= 0:
            raise StorageError("batch_duration must be positive")
        if last is not None and last <= 0:
            raise StorageError("last must be positive (or None for the whole history)")
        counts = self._per_batch_counts if last is None else self._per_batch_counts[-last:]
        if not counts:
            raise StorageError("no completed batches yet")
        duration = batch_duration * len(counts)
        achieved = sum(counts) / (self._region_area * duration)
        return RateEstimate(
            tuples=sum(counts),
            duration=duration,
            area=self._region_area,
            achieved_rate=achieved,
            requested_rate=self._requested_rate,
        )
