"""In-memory storage substrate.

Acquired crowdsensed streams, the tuples discarded by Flatten/Thin ("the
discarded tuples can be stored separately"), and raw acquisition batches all
need somewhere to live.  This package provides small, indexed, in-memory
stores with retention policies — the database-ish substrate the CrAQR server
would sit on in a deployment.
"""

from .tuple_store import TupleStore, StoreStats
from .result_buffer import QueryResultBuffer, RateEstimate, ResultCursor, Subscription
from .discarded import DiscardedStore
from .index import SpatioTemporalIndex

__all__ = [
    "TupleStore",
    "StoreStats",
    "QueryResultBuffer",
    "RateEstimate",
    "ResultCursor",
    "Subscription",
    "DiscardedStore",
    "SpatioTemporalIndex",
]
