"""Configuration objects for the CrAQR engine.

The paper (Section IV) exposes a handful of user-tunable knobs:

* ``h`` — the number of grid cells the region is logically partitioned into
  (a ``sqrt(h) x sqrt(h)`` grid).
* the per-attribute, per-cell acquisition *budget* and its adjustment step
  ``delta_beta`` used by budget tuning (Section V).
* the rate-violation threshold that triggers budget increases.

:class:`EngineConfig` gathers these together with simulation-oriented
settings (batch duration, random seed) so that an entire experiment is
described by one declarative object.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from .errors import CraqrError
from .faults import FaultPlan, ResilienceConfig

#: Default number of grid cells (a 4 x 4 grid).
DEFAULT_GRID_CELLS = 16

#: Default per-attribute, per-cell budget (requests per batch window).
DEFAULT_BUDGET = 50

#: Default budget adjustment step (paper's ``delta beta``).
DEFAULT_DELTA_BETA = 5

#: Default maximum budget beyond which the user must accept the feasible
#: rate or "pay more" (Section V, Budget Tuning).
DEFAULT_BUDGET_LIMIT = 500

#: Default percent-rate-violation threshold that triggers a budget increase.
DEFAULT_VIOLATION_THRESHOLD = 5.0

#: Default duration (in time units) of one acquisition batch window.
DEFAULT_BATCH_DURATION = 1.0


@dataclass(frozen=True)
class BudgetConfig:
    """Budget-tuning parameters (Section V, "Budget Tuning").

    Attributes
    ----------
    initial:
        Starting budget ``beta`` per attribute and grid cell, expressed as
        the number of acquisition requests allowed per batch window.
    delta:
        The adjustment step ``delta beta``: the budget is increased by this
        amount when the percent rate violation exceeds ``violation_threshold``
        and decreased by the same amount otherwise.
    limit:
        Maximum budget.  When the tuner wants to exceed it, the engine flags
        the query as *infeasible at current budget* rather than silently
        increasing cost (the paper asks the user to accept the feasible rate
        or pay more).
    floor:
        Minimum budget; the tuner never decreases below it.
    violation_threshold:
        Percent rate violation (``N_v``) above which the budget is increased.
    """

    initial: int = DEFAULT_BUDGET
    delta: int = DEFAULT_DELTA_BETA
    limit: int = DEFAULT_BUDGET_LIMIT
    floor: int = 1
    violation_threshold: float = DEFAULT_VIOLATION_THRESHOLD

    def __post_init__(self) -> None:
        if self.initial <= 0:
            raise CraqrError("initial budget must be positive")
        if self.delta <= 0:
            raise CraqrError("budget delta must be positive")
        if self.limit < self.initial:
            raise CraqrError("budget limit must be >= initial budget")
        if not 0 < self.floor <= self.initial:
            raise CraqrError("budget floor must be in (0, initial]")
        if self.violation_threshold < 0:
            raise CraqrError("violation threshold must be non-negative")


@dataclass(frozen=True)
class CheckpointConfig:
    """Crash-consistent checkpointing of the complete engine state.

    Attributes
    ----------
    directory:
        Directory the checkpoint files are written to (created on first
        write).  Filenames embed the batch index
        (``checkpoint-00000010.ckpt``) so lexicographic order is batch
        order.
    every:
        Automatic checkpoint cadence: a snapshot is taken at the end of
        every ``every``-th batch.  ``None`` disables automatic snapshots —
        :meth:`repro.core.engine.CraqrEngine.checkpoint` stays available
        for manual ones.
    retain:
        How many checkpoint files to keep; older ones are deleted after a
        successful write.  Keeping more than one is what makes the
        torn-file fallback of
        :func:`repro.recovery.load_latest` useful: if the newest file is
        damaged (crash mid-write, disk corruption) recovery falls back to
        the previous one.
    """

    directory: str
    every: Optional[int] = None
    retain: int = 3

    def __post_init__(self) -> None:
        if not self.directory:
            raise CraqrError("checkpoint directory must be non-empty")
        object.__setattr__(self, "directory", str(self.directory))
        if self.every is not None and self.every <= 0:
            raise CraqrError("checkpoint cadence 'every' must be positive (or None)")
        if self.retain <= 0:
            raise CraqrError("checkpoint retain must be positive")


@dataclass(frozen=True)
class EngineConfig:
    """Top-level configuration of a :class:`repro.core.engine.CraqrEngine`.

    Attributes
    ----------
    grid_cells:
        The paper's ``h`` parameter: the region is partitioned into a
        ``sqrt(h) x sqrt(h)`` logical grid.  Must be a perfect square.
    batch_duration:
        Length of one acquisition batch window in time units.  The
        request/response handler collects responses over this window and the
        fabricator processes them as one batch.
    budget:
        Budget-tuning parameters.
    seed:
        Seed for the engine's random generator; ``None`` draws entropy from
        the OS.  All randomness in the engine (sensor sampling, Bernoulli
        retention in PMAT operators) flows from this seed so that runs are
        reproducible.
    store_discarded:
        Whether tuples dropped by Flatten/Thin are retained in a separate
        store (the paper notes "the discarded tuples can be stored
        separately").
    online_estimation:
        When true, Flatten operators refresh their intensity estimate with
        online SGD over sliding windows instead of batch MLE.
    columnar:
        When true (the default) each batch window flows through the engine
        as vectorised :class:`~repro.streams.TupleBatch` columns — the
        handler samples whole cell rounds at once, the fabricator buckets
        tuples with one grid lookup per batch, PMAT operators compose numpy
        keep-masks, and result buffers ingest batches.  ``False`` selects
        the per-tuple object path; for a given seed both paths deliver
        identical tuples, so the flag is a pure performance switch (keep
        the object path for debugging individual tuple flows or for custom
        operators without a batch implementation).

        The symmetric switch on the *simulation* side is
        :attr:`repro.sensing.WorldConfig.vectorized_rng` ("fast-sim"): it
        moves sensors through batch mobility kernels and lets the handler
        sample whole cell populations from one shared random stream.
        ``columnar`` preserves seeded byte-equality; ``vectorized_rng``
        trades per-sensor stream reproducibility for statistically
        equivalent output at simulation scale.  Flip both on for maximum
        end-to-end throughput (see ``benchmarks/bench_world_advance.py``).
    compile_plans:
        When true (the default) and ``columnar`` is on, the engine lowers
        every registered query's PMAT chain into one per-batch dataflow
        graph (``repro.plan``) and executes fused kernels: a chain's
        flatten/thin/partition decisions compose as row indices with a
        single gather per delivered stream, the intensity SGD loop hoists
        its loop-invariant compensator, and the fabricator buckets cells
        from one sorted gather.  Byte-identical to the interpreted
        operator path (same RNG draws, same counters, same reports);
        ``False`` keeps the per-operator ``process_batch`` reference path.
        The compiled plan is derived state — rebuilt after ALTER / STOP /
        restore, never checkpointed.  Inspect it with ``EXPLAIN <query>``.
        Discard recording (``store_discarded``) falls back to the
        interpreted path, which materialises the dropped tuples.
    retention_batches:
        Service-mode memory bound: when set, every query result buffer
        evicts chunks older than this many completed batches, the engine
        keeps only this many :class:`~repro.core.engine.EngineReport`\\ s and
        the budget tuner bounds its decision history to the same window.
        Lifetime accounting (``total_tuples``, whole-history achieved rate)
        stays exact through running totals; windowed reads past the
        retention window (an old cursor, ``achieved_rate(last=k)`` with
        ``k`` beyond the window) raise
        :class:`~repro.errors.StorageError`.  ``None`` (the default)
        retains everything, as before.
    faults:
        Optional declarative :class:`~repro.faults.FaultPlan` injected into
        the acquisition path (drops, outages, stuck-at sensors, outliers,
        latency inflation, clock skew).  The injector draws from its own
        seeded stream, so ``None`` (the default) leaves every engine run
        byte-identical to a fault-free build.
    resilience:
        Optional :class:`~repro.faults.ResilienceConfig` switching on the
        mitigation stack: response deadlines, budget-aware retries,
        sensor-health quarantine and per-(attribute, cell) degradation
        tracking that redirects budget tuning away from fault-attributed
        shortfalls.  Independent of ``faults`` — mitigation also reacts to
        organic non-response.
    checkpoints:
        Optional :class:`CheckpointConfig` switching on crash-consistent
        engine snapshots: the complete engine state (world, RNG streams,
        buffers, views, tuner/health/degradation state) is written
        atomically to the configured directory every ``every`` batches and
        recovered with :meth:`repro.core.engine.CraqrEngine.restore` /
        ``restore_latest``.  A restored engine's subsequent batches are
        seeded byte-identical to the uninterrupted run.
    """

    grid_cells: int = DEFAULT_GRID_CELLS
    batch_duration: float = DEFAULT_BATCH_DURATION
    budget: BudgetConfig = field(default_factory=BudgetConfig)
    seed: Optional[int] = None
    store_discarded: bool = False
    online_estimation: bool = False
    columnar: bool = True
    compile_plans: bool = True
    retention_batches: Optional[int] = None
    faults: Optional[FaultPlan] = None
    resilience: Optional[ResilienceConfig] = None
    checkpoints: Optional[CheckpointConfig] = None

    def __post_init__(self) -> None:
        if self.retention_batches is not None and self.retention_batches <= 0:
            raise CraqrError("retention_batches must be positive (or None)")
        if self.grid_cells <= 0:
            raise CraqrError("grid_cells must be positive")
        side = int(round(self.grid_cells ** 0.5))
        if side * side != self.grid_cells:
            raise CraqrError(
                "grid_cells must be a perfect square (the region is split "
                "into a sqrt(h) x sqrt(h) grid); got %d" % self.grid_cells
            )
        if self.batch_duration <= 0:
            raise CraqrError("batch_duration must be positive")

    @property
    def grid_side(self) -> int:
        """Number of cells along one side of the grid (``sqrt(h)``)."""
        return int(round(self.grid_cells ** 0.5))

    def with_seed(self, seed: int) -> "EngineConfig":
        """Return a copy of this configuration with a different seed."""
        return replace(self, seed=seed)
