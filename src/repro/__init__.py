"""CrAQR: crowdsensed data acquisition using multi-dimensional point processes.

A production-quality reproduction of

    S. Sathe, T. Sellis, K. Aberer.
    "On Crowdsensed Data Acquisition using Multi-Dimensional Point Processes."
    ICDE Workshops 2015.

The library provides

* a multi-dimensional point-process substrate (:mod:`repro.pointprocess`),
* the PMAT operators and the CrAQR engine (:mod:`repro.core`),
* a crowdsensing simulator standing in for a real deployment
  (:mod:`repro.sensing`),
* a declarative acquisitional query language (:mod:`repro.query`),
* continuous views — incrementally maintained windowed aggregates, the
  serving API over live query sessions (:mod:`repro.views`),
* baselines, metrics, storage and workload generators used by the
  benchmark harness.

Quick start::

    from repro import CraqrEngine, AcquisitionalQuery
    from repro.workloads import build_rain_temperature_world, default_engine_config
    from repro.geometry import Rectangle

    world = build_rain_temperature_world()
    engine = CraqrEngine(default_engine_config(), world)
    handle = engine.register_query(
        AcquisitionalQuery("rain", Rectangle(0, 0, 2, 2), rate=10.0)
    )
    engine.run(batches=20)
    print(handle.achieved_rate())
"""

from .config import BudgetConfig, EngineConfig
from .errors import (
    CraqrError,
    GeometryError,
    PointProcessError,
    EstimationError,
    StreamError,
    QueryError,
    QueryParseError,
    PlanningError,
    BudgetError,
    AcquisitionError,
    ServeError,
    StorageError,
    ViewError,
    WorkloadError,
)
from .core import (
    AcquisitionalQuery,
    RateSpec,
    CraqrEngine,
    QueryHandle,
    QuerySessionInfo,
    EngineReport,
    FlattenOperator,
    ThinOperator,
    PartitionOperator,
    UnionOperator,
)
from .geometry import Rectangle, RectRegion, CompositeRegion, Grid
from .pointprocess import HomogeneousMDPP, InhomogeneousMDPP, LinearIntensity
from .sensing import SensingWorld, WorldConfig
from .query import parse_query, parse_queries, parse_statements, AttributeCatalog
from .views import ViewFrame, ViewHandle, ViewSessionInfo, ViewSpec

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "BudgetConfig",
    "EngineConfig",
    "CraqrError",
    "GeometryError",
    "PointProcessError",
    "EstimationError",
    "StreamError",
    "QueryError",
    "QueryParseError",
    "PlanningError",
    "BudgetError",
    "AcquisitionError",
    "ServeError",
    "StorageError",
    "ViewError",
    "WorkloadError",
    "AcquisitionalQuery",
    "RateSpec",
    "CraqrEngine",
    "QueryHandle",
    "QuerySessionInfo",
    "EngineReport",
    "FlattenOperator",
    "ThinOperator",
    "PartitionOperator",
    "UnionOperator",
    "Rectangle",
    "RectRegion",
    "CompositeRegion",
    "Grid",
    "HomogeneousMDPP",
    "InhomogeneousMDPP",
    "LinearIntensity",
    "SensingWorld",
    "WorldConfig",
    "parse_query",
    "parse_queries",
    "parse_statements",
    "AttributeCatalog",
    "ViewFrame",
    "ViewHandle",
    "ViewSessionInfo",
    "ViewSpec",
]
