"""Crowdsensed tuples.

The paper defines a tuple of attribute ``A<j>`` as ``(t_i, x_i, y_i, a_i)``
where the first three entries are space-time coordinates, ``a_i`` is the
attribute value, and ``i`` is a unique identifier across sensors.
:class:`SensorTuple` captures exactly that, plus the sensor id and the
attribute name so that one stream can carry tuples of several attributes
before they are routed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

import numpy as np

from ..geometry import SpacePoint, SpaceTimePoint


class TupleIdAllocator:
    """Unique, monotonically increasing tuple ids, scalar or in blocks.

    Calling the allocator yields one id (the original closure contract);
    :meth:`allocate_block` hands out ``count`` consecutive ids as an int64
    column in one step, which the columnar acquisition paths use so that a
    whole batch's ids cost one ``arange`` instead of one Python call per
    tuple.  Both styles draw from the same counter, so ids are identical to
    interleaved scalar allocation.
    """

    __slots__ = ("_next",)

    def __init__(self, start: int = 0) -> None:
        self._next = start

    def __call__(self) -> int:
        value = self._next
        self._next += 1
        return value

    def allocate_block(self, count: int) -> np.ndarray:
        start = self._next
        self._next += count
        return np.arange(start, start + count, dtype=np.int64)


def make_tuple_id_allocator(start: int = 0) -> TupleIdAllocator:
    """Return a callable producing unique, monotonically increasing tuple ids."""
    return TupleIdAllocator(start)


@dataclass(frozen=True)
class SensorTuple:
    """One crowdsensed observation ``(t, x, y, value)`` of an attribute.

    Attributes
    ----------
    tuple_id:
        Unique identifier ``i`` across sensors.
    attribute:
        Name of the attribute ``A<j>`` (e.g. ``"rain"`` or ``"temp"``).
    t, x, y:
        Space-time coordinates of the observation.
    value:
        The sensed value ``a_i`` (bool for human-sensed attributes such as
        rain, float for sensor-sensed attributes such as temperature).
    sensor_id:
        Identifier of the mobile sensor that produced the observation, when
        known.
    metadata:
        Free-form additional fields (e.g. response latency, incentive paid).
    """

    tuple_id: int
    attribute: str
    t: float
    x: float
    y: float
    value: Any = None
    sensor_id: Optional[int] = None
    metadata: dict = field(default_factory=dict, compare=False)

    @property
    def location(self) -> SpacePoint:
        """The spatial coordinates as a :class:`SpacePoint`."""
        return SpacePoint(self.x, self.y)

    @property
    def space_time(self) -> SpaceTimePoint:
        """The spatio-temporal coordinates as a :class:`SpaceTimePoint`."""
        return SpaceTimePoint(self.t, self.x, self.y)

    def with_value(self, value: Any) -> "SensorTuple":
        """A copy with a different sensed value."""
        return replace(self, value=value)

    def with_attribute(self, attribute: str) -> "SensorTuple":
        """A copy tagged with a different attribute name."""
        return replace(self, attribute=attribute)

    def shifted(self, dt: float = 0.0, dx: float = 0.0, dy: float = 0.0) -> "SensorTuple":
        """A copy displaced in space-time (used by the Shift extension operator)."""
        return replace(self, t=self.t + dt, x=self.x + dx, y=self.y + dy)

    def as_row(self):
        """The tuple as ``(t, x, y, value)`` — the paper's column order."""
        return (self.t, self.x, self.y, self.value)
