"""Crowdsensed tuples.

The paper defines a tuple of attribute ``A<j>`` as ``(t_i, x_i, y_i, a_i)``
where the first three entries are space-time coordinates, ``a_i`` is the
attribute value, and ``i`` is a unique identifier across sensors.
:class:`SensorTuple` captures exactly that, plus the sensor id and the
attribute name so that one stream can carry tuples of several attributes
before they are routed.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Optional

from ..geometry import SpacePoint, SpaceTimePoint


def make_tuple_id_allocator(start: int = 0) -> Callable[[], int]:
    """Return a callable producing unique, monotonically increasing tuple ids."""
    counter = itertools.count(start)
    return lambda: next(counter)


@dataclass(frozen=True)
class SensorTuple:
    """One crowdsensed observation ``(t, x, y, value)`` of an attribute.

    Attributes
    ----------
    tuple_id:
        Unique identifier ``i`` across sensors.
    attribute:
        Name of the attribute ``A<j>`` (e.g. ``"rain"`` or ``"temp"``).
    t, x, y:
        Space-time coordinates of the observation.
    value:
        The sensed value ``a_i`` (bool for human-sensed attributes such as
        rain, float for sensor-sensed attributes such as temperature).
    sensor_id:
        Identifier of the mobile sensor that produced the observation, when
        known.
    metadata:
        Free-form additional fields (e.g. response latency, incentive paid).
    """

    tuple_id: int
    attribute: str
    t: float
    x: float
    y: float
    value: Any = None
    sensor_id: Optional[int] = None
    metadata: dict = field(default_factory=dict, compare=False)

    @property
    def location(self) -> SpacePoint:
        """The spatial coordinates as a :class:`SpacePoint`."""
        return SpacePoint(self.x, self.y)

    @property
    def space_time(self) -> SpaceTimePoint:
        """The spatio-temporal coordinates as a :class:`SpaceTimePoint`."""
        return SpaceTimePoint(self.t, self.x, self.y)

    def with_value(self, value: Any) -> "SensorTuple":
        """A copy with a different sensed value."""
        return replace(self, value=value)

    def with_attribute(self, attribute: str) -> "SensorTuple":
        """A copy tagged with a different attribute name."""
        return replace(self, attribute=attribute)

    def shifted(self, dt: float = 0.0, dx: float = 0.0, dy: float = 0.0) -> "SensorTuple":
        """A copy displaced in space-time (used by the Shift extension operator)."""
        return replace(self, t=self.t + dt, x=self.x + dx, y=self.y + dy)

    def as_row(self):
        """The tuple as ``(t, x, y, value)`` — the paper's column order."""
        return (self.t, self.x, self.y, self.value)
