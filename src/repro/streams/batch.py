"""Columnar batches of crowdsensed tuples.

:class:`TupleBatch` is the structure-of-arrays counterpart of
:class:`~repro.streams.tuples.SensorTuple`: one contiguous numpy column per
tuple field (``t``, ``x``, ``y``, ``value``, ``sensor_id``, ``tuple_id``)
plus a small per-batch metadata dict.  A batch is homogeneous in its
attribute, which is therefore stored once per batch rather than once per
tuple.

The batch is the unit of work of the columnar fast path: the
request/response handler produces one batch per ``(attribute, cell)``
acquisition round, the fabricator re-buckets batches with vectorised grid
lookups, the PMAT operators transform whole batches with numpy keep-masks,
and result buffers ingest batches without ever materialising individual
``SensorTuple`` objects.  Materialisation (:meth:`TupleBatch.to_tuples`)
happens lazily, only when object-level APIs ask for it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..errors import StreamError
from .tuples import SensorTuple

#: Sentinel stored in the ``sensor_id`` column for tuples without a sensor.
NO_SENSOR_ID = -1

#: Internal sentinel distinguishing "key absent" from "value is None".
_MISSING = object()


def _as_python_scalar(value):
    """Convert a numpy scalar to its Python equivalent for materialisation."""
    if isinstance(value, np.generic):
        return value.item()
    return value


def _values_equal(a, b) -> bool:
    """Equality that is safe for array-valued metadata entries."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(a, b)
    return a == b


class TupleBatch:
    """A batch of same-attribute crowdsensed tuples stored as numpy columns.

    Parameters
    ----------
    attribute:
        The attribute all tuples of the batch carry (e.g. ``"rain"``).
    t, x, y:
        Float64 columns of the space-time coordinates.
    value:
        Column of sensed values; dtype is whatever numpy infers (bool for
        human-sensed attributes, float for sensor-sensed ones, object as a
        general fallback).
    sensor_id:
        Int64 column of producing sensor ids (:data:`NO_SENSOR_ID` for
        tuples without one).
    tuple_id:
        Int64 column of unique tuple identifiers.
    meta:
        Small per-batch metadata dict (scalars copied into every
        materialised tuple's metadata).
    extra:
        Optional extra per-tuple columns, each an array whose first
        dimension equals the batch length (e.g. an ``incentive`` column or
        an ``(n, 2)`` ``cell`` column); they are sliced together with the
        main columns and land in tuple metadata on materialisation.
    """

    __slots__ = ("attribute", "t", "x", "y", "value", "sensor_id", "tuple_id", "meta", "extra")

    def __init__(
        self,
        attribute: str,
        t: np.ndarray,
        x: np.ndarray,
        y: np.ndarray,
        value: np.ndarray,
        sensor_id: np.ndarray,
        tuple_id: np.ndarray,
        *,
        meta: Optional[dict] = None,
        extra: Optional[Dict[str, np.ndarray]] = None,
    ) -> None:
        self.attribute = attribute
        self.t = np.asarray(t, dtype=float)
        self.x = np.asarray(x, dtype=float)
        self.y = np.asarray(y, dtype=float)
        self.value = np.asarray(value)
        self.sensor_id = np.asarray(sensor_id, dtype=np.int64)
        self.tuple_id = np.asarray(tuple_id, dtype=np.int64)
        self.meta = meta if meta is not None else {}
        self.extra = extra if extra is not None else {}
        n = self.t.shape[0]
        for name, column in (
            ("x", self.x),
            ("y", self.y),
            ("value", self.value),
            ("sensor_id", self.sensor_id),
            ("tuple_id", self.tuple_id),
        ):
            if column.shape[:1] != (n,):
                raise StreamError(
                    f"TupleBatch column '{name}' has length {column.shape[:1]}, "
                    f"expected {n}"
                )
        for name, column in self.extra.items():
            if np.asarray(column).shape[:1] != (n,):
                raise StreamError(
                    f"TupleBatch extra column '{name}' does not match batch length {n}"
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, attribute: str = "", *, meta: Optional[dict] = None) -> "TupleBatch":
        """A batch with no tuples."""
        zero = np.empty(0)
        zero_int = np.empty(0, dtype=np.int64)
        return cls(attribute, zero, zero, zero, np.empty(0, dtype=object), zero_int, zero_int, meta=meta)

    @classmethod
    def from_tuples(cls, items: Sequence[SensorTuple]) -> "TupleBatch":
        """Build a batch from materialised tuples (must share one attribute)."""
        if not items:
            return cls.empty()
        attribute = items[0].attribute
        for item in items:
            if item.attribute != attribute:
                raise StreamError(
                    "TupleBatch.from_tuples needs same-attribute tuples; got "
                    f"'{attribute}' and '{item.attribute}'"
                )
        values = [item.value for item in items]
        try:
            value_column = np.asarray(values)
            if value_column.ndim != 1:  # e.g. list/tuple values
                raise ValueError
        except ValueError:
            value_column = np.empty(len(values), dtype=object)
            value_column[:] = values
        extra: Dict[str, np.ndarray] = {}
        if any(item.metadata for item in items):
            metadata_column = np.empty(len(items), dtype=object)
            metadata_column[:] = [item.metadata for item in items]
            extra["__metadata__"] = metadata_column
        return cls(
            attribute,
            np.array([item.t for item in items], dtype=float),
            np.array([item.x for item in items], dtype=float),
            np.array([item.y for item in items], dtype=float),
            value_column,
            np.array(
                [NO_SENSOR_ID if item.sensor_id is None else item.sensor_id for item in items],
                dtype=np.int64,
            ),
            np.array([item.tuple_id for item in items], dtype=np.int64),
            extra=extra,
        )

    @classmethod
    def concatenate(cls, batches: Iterable["TupleBatch"]) -> "TupleBatch":
        """Concatenate same-attribute batches into one.

        Per-batch ``meta`` entries survive when every part agrees on them.
        The union of all parts' extra columns is kept: parts lacking a
        column contribute ``None`` rows (so e.g. a marked batch merged with
        an unmarked one keeps its marks instead of silently dropping them).
        """
        parts = [batch for batch in batches if len(batch)]
        if not parts:
            return cls.empty()
        attribute = parts[0].attribute
        for part in parts:
            if part.attribute != attribute:
                raise StreamError(
                    "cannot concatenate batches of attributes "
                    f"'{attribute}' and '{part.attribute}'"
                )
        if len(parts) == 1:
            return parts[0]
        meta = dict(parts[0].meta)
        for part in parts[1:]:
            for key in list(meta):
                other = part.meta.get(key, _MISSING)
                if other is _MISSING or not _values_equal(other, meta[key]):
                    del meta[key]
        all_extras = set()
        for part in parts:
            all_extras |= set(part.extra)
        extra = {}
        for key in all_extras:
            sample = next(
                np.asarray(part.extra[key]) for part in parts if key in part.extra
            )
            columns = []
            for part in parts:
                column = part.extra.get(key)
                if column is None:
                    # Match the trailing shape of the parts that do carry the
                    # column (e.g. the handler's (n, 2) cell column) so the
                    # concatenation below never mixes dimensionalities.
                    column = np.full(
                        (len(part),) + sample.shape[1:], None, dtype=object
                    )
                columns.append(np.asarray(column))
            extra[key] = np.concatenate(columns)
        return cls(
            attribute,
            np.concatenate([part.t for part in parts]),
            np.concatenate([part.x for part in parts]),
            np.concatenate([part.y for part in parts]),
            np.concatenate([part.value for part in parts]),
            np.concatenate([part.sensor_id for part in parts]),
            np.concatenate([part.tuple_id for part in parts]),
            meta=meta,
            extra=extra,
        )

    # ------------------------------------------------------------------
    # Shape
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.t.shape[0]

    @property
    def is_empty(self) -> bool:
        """Whether the batch holds no tuples."""
        return self.t.shape[0] == 0

    # ------------------------------------------------------------------
    # Transformations (all zero-copy-per-column slices or views)
    # ------------------------------------------------------------------
    def select(self, mask_or_index: np.ndarray) -> "TupleBatch":
        """A new batch with the rows selected by a boolean mask or index array."""
        return TupleBatch(
            self.attribute,
            self.t[mask_or_index],
            self.x[mask_or_index],
            self.y[mask_or_index],
            self.value[mask_or_index],
            self.sensor_id[mask_or_index],
            self.tuple_id[mask_or_index],
            meta=self.meta,
            extra={key: np.asarray(col)[mask_or_index] for key, col in self.extra.items()},
        )

    def sorted_by_time(self) -> "TupleBatch":
        """A new batch with rows in (stable) ascending time order."""
        order = np.argsort(self.t, kind="stable")
        return self.select(order)

    def shifted(self, dt: float = 0.0, dx: float = 0.0, dy: float = 0.0) -> "TupleBatch":
        """A new batch displaced in space-time (the Shift extension operator)."""
        return TupleBatch(
            self.attribute,
            self.t + dt,
            self.x + dx,
            self.y + dy,
            self.value,
            self.sensor_id,
            self.tuple_id,
            meta=self.meta,
            extra=self.extra,
        )

    def with_meta(self, **updates) -> "TupleBatch":
        """A new batch with per-batch metadata entries merged in."""
        meta = dict(self.meta)
        meta.update(updates)
        return TupleBatch(
            self.attribute, self.t, self.x, self.y, self.value,
            self.sensor_id, self.tuple_id, meta=meta, extra=self.extra,
        )

    # ------------------------------------------------------------------
    # Materialisation (the lazy escape hatch to the object path)
    # ------------------------------------------------------------------
    def to_tuples(self) -> List[SensorTuple]:
        """Materialise the batch as a list of :class:`SensorTuple`.

        Numpy scalars are converted to their Python equivalents so that
        materialised tuples compare equal to tuples built by the object
        path.  Per-batch metadata scalars and extra columns are folded into
        each tuple's metadata dict.
        """
        items: List[SensorTuple] = []
        extra_items = [(k, v) for k, v in self.extra.items() if k != "__metadata__"]
        metadata_column = self.extra.get("__metadata__")
        for i in range(len(self)):
            metadata = dict(self.meta)
            if metadata_column is not None:
                metadata.update(metadata_column[i])
            for key, column in extra_items:
                entry = column[i]
                if entry is None:  # a part without this column (see concatenate)
                    continue
                if key == "cell":
                    if entry[0] is None:  # None-padded multi-dim filler row
                        continue
                    entry = (int(entry[0]), int(entry[1]))
                else:
                    entry = _as_python_scalar(entry)
                metadata[key] = entry
            sensor_id = int(self.sensor_id[i])
            items.append(
                SensorTuple(
                    tuple_id=int(self.tuple_id[i]),
                    attribute=self.attribute,
                    t=float(self.t[i]),
                    x=float(self.x[i]),
                    y=float(self.y[i]),
                    value=_as_python_scalar(self.value[i]),
                    sensor_id=None if sensor_id == NO_SENSOR_ID else sensor_id,
                    metadata=metadata,
                )
            )
        return items

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TupleBatch(attribute={self.attribute!r}, n={len(self)})"
