"""Stream operator base classes.

An operator consumes tuples from one or more input streams and pushes
results to one or more output streams.  The PMAT operators in
:mod:`repro.core.pmat` derive from :class:`StreamOperator`; a few generic
operators (filter, map, pass-through) are provided for building execution
topologies and for tests.
"""

from __future__ import annotations

import itertools
from abc import ABC, abstractmethod
from typing import Callable, List, Optional, Sequence

from ..errors import StreamError
from .batch import TupleBatch
from .stream import Stream
from .tuples import SensorTuple

_operator_ids = itertools.count(1)


class StreamOperator(ABC):
    """Base class of all stream operators.

    Subclasses implement :meth:`process` which receives one input tuple and
    pushes any number of tuples to the operator's output streams.
    """

    #: Short display symbol, e.g. ``"F"`` for Flatten; subclasses override.
    symbol = "?"

    def __init__(self, name: Optional[str] = None, *, outputs: int = 1) -> None:
        if outputs < 0:
            raise StreamError("an operator cannot have a negative output count")
        self._operator_id = next(_operator_ids)
        self._name = name or f"{type(self).__name__}-{self._operator_id}"
        self._outputs: List[Stream] = [
            Stream(f"{self._name}:out{i}") for i in range(outputs)
        ]
        self._tuples_in = 0
        self._tuples_out = 0

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The operator's unique name."""
        return self._name

    @property
    def operator_id(self) -> int:
        """A process-wide unique integer id."""
        return self._operator_id

    @property
    def outputs(self) -> Sequence[Stream]:
        """The operator's output streams."""
        return tuple(self._outputs)

    @property
    def output(self) -> Stream:
        """The primary (first) output stream."""
        if not self._outputs:
            raise StreamError(f"operator '{self._name}' has no outputs")
        return self._outputs[0]

    @property
    def tuples_in(self) -> int:
        """Number of tuples consumed so far."""
        return self._tuples_in

    @property
    def tuples_out(self) -> int:
        """Number of tuples emitted so far."""
        return self._tuples_out

    # ------------------------------------------------------------------
    def subscribe_to(self, upstream: Stream) -> None:
        """Attach this operator as a subscriber of an upstream stream."""
        upstream.subscribe(self.accept)

    def accept(self, item: SensorTuple) -> None:
        """Receive one tuple from upstream and process it."""
        self._tuples_in += 1
        self.process(item)

    def emit(self, item: SensorTuple, *, output_index: int = 0) -> None:
        """Push a tuple to one of the operator's output streams."""
        try:
            stream = self._outputs[output_index]
        except IndexError:
            raise StreamError(
                f"operator '{self._name}' has no output index {output_index}"
            ) from None
        self._tuples_out += 1
        stream.push(item)

    @abstractmethod
    def process(self, item: SensorTuple) -> None:
        """Handle one input tuple (push results with :meth:`emit`)."""

    def flush(self) -> None:
        """Flush any buffered state (end of batch); no-op by default."""

    def account_batch(self, tuples_in: int, tuples_out: int) -> None:
        """Bump the throughput counters for a batch handled out of band.

        Used by columnar drivers for pass-through stages (e.g. the
        attribute router) whose work is subsumed by batch bookkeeping.
        """
        self._tuples_in += tuples_in
        self._tuples_out += tuples_out

    def process_batch(self, batch: TupleBatch) -> TupleBatch:
        """Process a whole :class:`TupleBatch`, returning the primary output.

        Operators on the columnar fast path override this with a vectorised
        implementation.  The generic fallback materialises the batch, runs
        each tuple through :meth:`process` and then :meth:`flush` (so
        operators that buffer until the end of the batch window still emit)
        while capturing primary-output emissions, and re-batches — same
        per-tuple RNG draws, counters and side outputs as the object path,
        just not faster.  The primary output stream is swapped out during
        the capture so subscribers attached to it do not see the tuples
        twice (the caller forwards the returned batch instead).
        """
        if batch.is_empty:
            return batch
        if not self._outputs:
            raise StreamError(f"operator '{self._name}' has no outputs")
        captured: List[SensorTuple] = []
        real_primary = self._outputs[0]
        capture = Stream(f"{self._name}:batch-capture")
        capture.subscribe(captured.append)
        self._outputs[0] = capture
        try:
            for item in batch.to_tuples():
                self.accept(item)
            self.flush()
        finally:
            self._outputs[0] = real_primary
        out = TupleBatch.from_tuples(captured)
        if out.is_empty:
            return TupleBatch.empty(batch.attribute, meta=batch.meta)
        return out

    def describe(self) -> str:
        """A short human-readable description used in topology dumps."""
        return f"{self.symbol}[{self._name}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(name={self._name!r}, "
            f"in={self._tuples_in}, out={self._tuples_out})"
        )


class PassThroughOperator(StreamOperator):
    """Forwards every tuple unchanged; useful as a junction or for testing."""

    symbol = "I"

    def process(self, item: SensorTuple) -> None:
        self.emit(item)


class FilterOperator(StreamOperator):
    """Forwards only tuples satisfying a predicate."""

    symbol = "S"

    def __init__(
        self, predicate: Callable[[SensorTuple], bool], name: Optional[str] = None
    ) -> None:
        super().__init__(name, outputs=1)
        self._predicate = predicate

    def process(self, item: SensorTuple) -> None:
        if self._predicate(item):
            self.emit(item)


class MapOperator(StreamOperator):
    """Applies a transformation to every tuple."""

    symbol = "M"

    def __init__(
        self, transform: Callable[[SensorTuple], SensorTuple], name: Optional[str] = None
    ) -> None:
        super().__init__(name, outputs=1)
        self._transform = transform

    def process(self, item: SensorTuple) -> None:
        self.emit(self._transform(item))
