"""Stream sinks: terminal consumers of acquired crowdsensed streams.

Sinks subscribe to a stream and either collect, count, or hand tuples to a
callback.  The fabricated MCDS a query receives is exposed to users through
a :class:`CollectingSink` (or the result buffers in :mod:`repro.storage`).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..pointprocess import EventBatch
from .stream import Stream
from .tuples import SensorTuple


class CollectingSink:
    """Collects every tuple pushed to it, preserving arrival order."""

    def __init__(self, name: str = "collector") -> None:
        self._name = name
        self._items: List[SensorTuple] = []

    @property
    def name(self) -> str:
        """The sink's name."""
        return self._name

    @property
    def items(self) -> List[SensorTuple]:
        """All collected tuples (arrival order)."""
        return list(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __call__(self, item: SensorTuple) -> None:
        self._items.append(item)

    def attach(self, stream: Stream) -> "CollectingSink":
        """Subscribe to a stream; returns self for chaining."""
        stream.subscribe(self)
        return self

    def clear(self) -> None:
        """Drop everything collected so far."""
        self._items.clear()

    def to_event_batch(self) -> EventBatch:
        """The collected tuples as an :class:`EventBatch` of their coordinates."""
        return EventBatch.from_rows([(it.t, it.x, it.y) for it in self._items])


class CountingSink:
    """Counts tuples without retaining them (cheap, for benchmarks)."""

    def __init__(self, name: str = "counter") -> None:
        self._name = name
        self._count = 0
        self._last_timestamp: Optional[float] = None

    @property
    def count(self) -> int:
        """Number of tuples seen."""
        return self._count

    @property
    def last_timestamp(self) -> Optional[float]:
        """Timestamp of the most recent tuple, if any."""
        return self._last_timestamp

    def __call__(self, item: SensorTuple) -> None:
        self._count += 1
        self._last_timestamp = item.t

    def attach(self, stream: Stream) -> "CountingSink":
        """Subscribe to a stream; returns self for chaining."""
        stream.subscribe(self)
        return self


class CallbackSink:
    """Forwards every tuple to a user callback."""

    def __init__(self, callback: Callable[[SensorTuple], None], name: str = "callback") -> None:
        self._name = name
        self._callback = callback
        self._count = 0

    @property
    def count(self) -> int:
        """Number of tuples forwarded."""
        return self._count

    def __call__(self, item: SensorTuple) -> None:
        self._count += 1
        self._callback(item)

    def attach(self, stream: Stream) -> "CallbackSink":
        """Subscribe to a stream; returns self for chaining."""
        stream.subscribe(self)
        return self
