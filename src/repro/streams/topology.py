"""Execution topologies: directed graphs of stream operators.

A :class:`StreamTopology` is the per-grid-cell operator chain the paper
builds in Section V — F followed by T operators sorted by rate, optionally
followed by P operators, whose outputs feed U operators or result streams.
The topology tracks operators, the edges between them, and *branching
points* (streams with more than one downstream consumer), which the paper's
insertion/deletion rules care about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import StreamError
from .operator import StreamOperator
from .stream import Stream
from .tuples import SensorTuple


@dataclass(frozen=True)
class BranchingPoint:
    """A stream consumed by more than one downstream operator."""

    stream_name: str
    consumer_names: Tuple[str, ...]

    @property
    def fan_out(self) -> int:
        """Number of downstream consumers."""
        return len(self.consumer_names)


class StreamTopology:
    """A connected set of operators with explicit edges.

    The topology owns its entry stream (where raw tuples are injected) and
    remembers, for every operator, which upstream stream feeds it and which
    operators consume each of its outputs.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise StreamError("a topology needs a non-empty name")
        self._name = name
        self._entry = Stream(f"{name}:entry")
        self._operators: Dict[str, StreamOperator] = {}
        #: maps a stream name to the operator names subscribed to it
        self._consumers: Dict[str, List[str]] = {}
        #: maps an operator name to the name of the stream feeding it
        self._feeds: Dict[str, str] = {}
        #: all streams by name (entry + every operator output)
        self._streams: Dict[str, Stream] = {self._entry.name: self._entry}

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The topology's name (e.g. the grid-cell key it serves)."""
        return self._name

    @property
    def entry(self) -> Stream:
        """The stream where raw tuples are injected."""
        return self._entry

    @property
    def operators(self) -> Sequence[StreamOperator]:
        """All operators currently in the topology (insertion order)."""
        return tuple(self._operators.values())

    def operator(self, name: str) -> StreamOperator:
        """Look up an operator by name."""
        try:
            return self._operators[name]
        except KeyError:
            raise StreamError(f"no operator named '{name}' in topology '{self._name}'") from None

    def has_operator(self, name: str) -> bool:
        """Whether an operator of that name is part of the topology."""
        return name in self._operators

    def __len__(self) -> int:
        return len(self._operators)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_operator(
        self, operator: StreamOperator, *, upstream: Optional[Stream] = None
    ) -> StreamOperator:
        """Add an operator, subscribing it to ``upstream`` (default: the entry stream)."""
        if operator.name in self._operators:
            raise StreamError(
                f"operator '{operator.name}' already in topology '{self._name}'"
            )
        upstream = upstream if upstream is not None else self._entry
        if upstream.name not in self._streams:
            raise StreamError(
                f"stream '{upstream.name}' does not belong to topology '{self._name}'"
            )
        operator.subscribe_to(upstream)
        self._operators[operator.name] = operator
        self._feeds[operator.name] = upstream.name
        self._consumers.setdefault(upstream.name, []).append(operator.name)
        for out_stream in operator.outputs:
            self._streams[out_stream.name] = out_stream
            self._consumers.setdefault(out_stream.name, [])
        return operator

    def remove_operator(self, name: str) -> StreamOperator:
        """Remove an operator; its output streams must have no consumers."""
        operator = self.operator(name)
        for out_stream in operator.outputs:
            if self._consumers.get(out_stream.name):
                raise StreamError(
                    f"cannot remove operator '{name}': output stream "
                    f"'{out_stream.name}' still has consumers"
                )
        feeding_stream = self._feeds.pop(name)
        self._consumers[feeding_stream].remove(name)
        for out_stream in operator.outputs:
            self._streams.pop(out_stream.name, None)
            self._consumers.pop(out_stream.name, None)
        del self._operators[name]
        return operator

    def rewire(self, operator_name: str, new_upstream: Stream) -> None:
        """Detach an operator from its current upstream and attach it to another stream."""
        operator = self.operator(operator_name)
        old_stream_name = self._feeds[operator_name]
        old_stream = self._streams[old_stream_name]
        old_stream.unsubscribe(operator.accept)
        if new_upstream.name not in self._streams:
            raise StreamError(
                f"stream '{new_upstream.name}' does not belong to topology '{self._name}'"
            )
        operator.subscribe_to(new_upstream)
        self._consumers[old_stream_name].remove(operator_name)
        self._consumers.setdefault(new_upstream.name, []).append(operator_name)
        self._feeds[operator_name] = new_upstream.name

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def consumers_of(self, stream: Stream) -> List[StreamOperator]:
        """Operators subscribed to the given stream."""
        names = self._consumers.get(stream.name, [])
        return [self._operators[n] for n in names]

    def upstream_of(self, operator_name: str) -> Stream:
        """The stream feeding the named operator."""
        try:
            return self._streams[self._feeds[operator_name]]
        except KeyError:
            raise StreamError(f"no operator named '{operator_name}'") from None

    def downstream_of(self, operator_name: str) -> List[StreamOperator]:
        """Operators consuming any output of the named operator."""
        operator = self.operator(operator_name)
        downstream: List[StreamOperator] = []
        for out_stream in operator.outputs:
            downstream.extend(self.consumers_of(out_stream))
        return downstream

    def branching_points(self) -> List[BranchingPoint]:
        """Streams consumed by more than one operator (the paper's branching points)."""
        points = []
        for stream_name, consumer_names in self._consumers.items():
            if len(consumer_names) > 1:
                points.append(
                    BranchingPoint(
                        stream_name=stream_name,
                        consumer_names=tuple(consumer_names),
                    )
                )
        return points

    def chain_from_entry(self) -> List[StreamOperator]:
        """The linear prefix of operators reachable from the entry stream.

        Follows single-consumer edges starting at the entry stream; stops at
        the first branching point.  This is the F/T prefix the paper's
        insertion rules manipulate.
        """
        chain: List[StreamOperator] = []
        stream = self._entry
        visited: Set[str] = set()
        while True:
            consumer_names = self._consumers.get(stream.name, [])
            if len(consumer_names) != 1:
                break
            operator = self._operators[consumer_names[0]]
            if operator.name in visited:
                break
            chain.append(operator)
            visited.add(operator.name)
            if len(operator.outputs) != 1:
                break
            stream = operator.outputs[0]
        return chain

    def describe(self) -> str:
        """A multi-line, human-readable dump of the topology structure."""
        lines = [f"topology '{self._name}':"]
        for operator in self._operators.values():
            upstream = self._feeds[operator.name]
            outputs = ", ".join(s.name for s in operator.outputs) or "-"
            lines.append(
                f"  {operator.describe()}  <- {upstream}  -> {outputs}"
            )
        branch_points = self.branching_points()
        if branch_points:
            lines.append("  branching points:")
            for point in branch_points:
                lines.append(
                    f"    {point.stream_name} -> {', '.join(point.consumer_names)}"
                )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # Execution helpers
    # ------------------------------------------------------------------
    def inject(self, item: SensorTuple) -> None:
        """Push one tuple into the topology's entry stream."""
        self._entry.push(item)

    def inject_many(self, items: Iterable[SensorTuple]) -> int:
        """Push an iterable of tuples; returns how many were pushed."""
        count = 0
        for item in items:
            self.inject(item)
            count += 1
        return count

    def flush(self) -> None:
        """Flush every operator (end of batch)."""
        for operator in self._operators.values():
            operator.flush()
