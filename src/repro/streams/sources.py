"""Stream sources: adapters that feed tuples into topologies.

Sources convert existing data — Python iterables, point-process event
batches — into :class:`~repro.streams.tuples.SensorTuple` streams.  They are
used by examples, tests and benchmarks to drive topologies without the full
sensing simulator.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Optional

from ..errors import StreamError
from ..pointprocess import EventBatch
from .stream import Stream
from .tuples import SensorTuple, make_tuple_id_allocator


class IterableSource:
    """Pushes tuples from an arbitrary iterable into a stream."""

    def __init__(self, items: Iterable[SensorTuple], name: str = "iterable-source") -> None:
        self._items = items
        self._stream = Stream(f"{name}:out")
        self._emitted = 0

    @property
    def output(self) -> Stream:
        """The stream this source writes to."""
        return self._stream

    @property
    def emitted(self) -> int:
        """Number of tuples pushed so far."""
        return self._emitted

    def run(self) -> int:
        """Push every item; returns the number of tuples emitted."""
        for item in self._items:
            if not isinstance(item, SensorTuple):
                raise StreamError("IterableSource items must be SensorTuple instances")
            self._stream.push(item)
            self._emitted += 1
        return self._emitted


class BatchSource:
    """Converts :class:`EventBatch` objects into sensor tuples for one attribute.

    Parameters
    ----------
    attribute:
        Attribute name stamped on every produced tuple.
    value_fn:
        Optional callable ``(t, x, y) -> value`` generating the sensed value;
        by default the value is ``None`` (coordinates only, as in the
        paper's Flatten discussion which works on coordinates).
    """

    def __init__(
        self,
        attribute: str,
        *,
        value_fn: Optional[Callable[[float, float, float], Any]] = None,
        name: str = "batch-source",
        id_allocator: Optional[Callable[[], int]] = None,
    ) -> None:
        if not attribute:
            raise StreamError("attribute name must be non-empty")
        self._attribute = attribute
        self._value_fn = value_fn
        self._stream = Stream(f"{name}:{attribute}:out")
        self._allocate_id = id_allocator or make_tuple_id_allocator()
        self._emitted = 0

    @property
    def output(self) -> Stream:
        """The stream this source writes to."""
        return self._stream

    @property
    def attribute(self) -> str:
        """The attribute name stamped on produced tuples."""
        return self._attribute

    @property
    def emitted(self) -> int:
        """Number of tuples pushed so far."""
        return self._emitted

    def tuples_from(self, batch: EventBatch) -> Iterator[SensorTuple]:
        """Yield sensor tuples for every event in a batch (time order)."""
        ordered = batch.sorted_by_time()
        for t, x, y in zip(ordered.t, ordered.x, ordered.y):
            value = self._value_fn(float(t), float(x), float(y)) if self._value_fn else None
            yield SensorTuple(
                tuple_id=self._allocate_id(),
                attribute=self._attribute,
                t=float(t),
                x=float(x),
                y=float(y),
                value=value,
            )

    def push_batch(self, batch: EventBatch) -> int:
        """Convert a batch and push every tuple; returns the count pushed."""
        count = 0
        for item in self.tuples_from(batch):
            self._stream.push(item)
            count += 1
        self._emitted += count
        return count
