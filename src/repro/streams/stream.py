"""Streams: named edges of the execution topology.

A :class:`Stream` connects the output of one operator to the inputs of zero
or more downstream operators.  Streams are push-based: whoever produces a
tuple calls :meth:`Stream.push` and the stream forwards the tuple to every
subscriber synchronously.  Each stream keeps lightweight statistics
(tuple counts, last timestamp) used by metrics and benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..errors import StreamError
from .tuples import SensorTuple

Subscriber = Callable[[SensorTuple], None]


@dataclass
class StreamStats:
    """Running statistics of a stream."""

    tuples_pushed: int = 0
    last_timestamp: Optional[float] = None
    first_timestamp: Optional[float] = None

    def record(self, item: SensorTuple) -> None:
        """Update statistics for one pushed tuple."""
        self.tuples_pushed += 1
        if self.first_timestamp is None:
            self.first_timestamp = item.t
        self.last_timestamp = item.t

    @property
    def observed_duration(self) -> float:
        """Span between first and last tuple timestamps (0 when <2 tuples)."""
        if self.first_timestamp is None or self.last_timestamp is None:
            return 0.0
        return max(self.last_timestamp - self.first_timestamp, 0.0)


class Stream:
    """A named, push-based channel of :class:`SensorTuple` values."""

    def __init__(self, name: str) -> None:
        if not name:
            raise StreamError("a stream needs a non-empty name")
        self._name = name
        self._subscribers: List[Subscriber] = []
        self._stats = StreamStats()
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The stream's name (used in topology descriptions)."""
        return self._name

    @property
    def stats(self) -> StreamStats:
        """Statistics accumulated so far."""
        return self._stats

    @property
    def subscriber_count(self) -> int:
        """Number of attached subscribers."""
        return len(self._subscribers)

    @property
    def is_closed(self) -> bool:
        """Whether the stream has been closed."""
        return self._closed

    # ------------------------------------------------------------------
    def subscribe(self, subscriber: Subscriber) -> None:
        """Attach a subscriber that will receive every future tuple."""
        if self._closed:
            raise StreamError(f"cannot subscribe to closed stream '{self._name}'")
        self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber: Subscriber) -> None:
        """Detach a previously attached subscriber."""
        try:
            self._subscribers.remove(subscriber)
        except ValueError:
            raise StreamError(
                f"subscriber not attached to stream '{self._name}'"
            ) from None

    def push(self, item: SensorTuple) -> None:
        """Push one tuple to every subscriber (synchronously, in order)."""
        if self._closed:
            raise StreamError(f"cannot push to closed stream '{self._name}'")
        self._stats.record(item)
        for subscriber in list(self._subscribers):
            subscriber(item)

    def push_many(self, items) -> int:
        """Push an iterable of tuples; returns how many were pushed."""
        count = 0
        for item in items:
            self.push(item)
            count += 1
        return count

    def close(self) -> None:
        """Close the stream; further pushes raise :class:`StreamError`."""
        self._closed = True
        self._subscribers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Stream({self._name!r}, pushed={self._stats.tuples_pushed})"
