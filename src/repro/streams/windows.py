"""Batch and sliding windows over streams of sensor tuples.

The Flatten operator works over *batches* of tuples (one acquisition window)
and, as the paper notes, can also operate over *sliding windows* when
combined with online parameter estimation.  The window classes here collect
tuples and emit them grouped so window-based operators stay simple.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional

from ..errors import StreamError
from .tuples import SensorTuple


class BatchWindow:
    """Collects tuples into fixed-size batches (count-based tumbling window)."""

    def __init__(self, batch_size: int) -> None:
        if batch_size <= 0:
            raise StreamError("batch size must be positive")
        self._batch_size = batch_size
        self._buffer: List[SensorTuple] = []

    @property
    def batch_size(self) -> int:
        """Number of tuples per emitted batch."""
        return self._batch_size

    @property
    def pending(self) -> int:
        """Number of tuples currently buffered."""
        return len(self._buffer)

    def add(self, item: SensorTuple) -> Optional[List[SensorTuple]]:
        """Add a tuple; returns the completed batch when the window fills."""
        self._buffer.append(item)
        if len(self._buffer) >= self._batch_size:
            return self.flush()
        return None

    def flush(self) -> Optional[List[SensorTuple]]:
        """Emit whatever is buffered (possibly fewer than ``batch_size`` tuples).

        Flushing an empty window returns ``None`` instead of an empty
        list, so a periodic flusher never emits spurious empty batches
        downstream.
        """
        if not self._buffer:
            return None
        batch, self._buffer = self._buffer, []
        return batch


class TumblingWindow:
    """Time-based tumbling window: emits all tuples of each ``duration``-long interval."""

    def __init__(self, duration: float, *, start: float = 0.0) -> None:
        if duration <= 0:
            raise StreamError("window duration must be positive")
        self._duration = duration
        self._window_start = start
        self._buffer: List[SensorTuple] = []

    @property
    def duration(self) -> float:
        """Window length in time units."""
        return self._duration

    @property
    def window_start(self) -> float:
        """Start time of the currently open window."""
        return self._window_start

    @property
    def pending(self) -> int:
        """Number of tuples buffered in the open window."""
        return len(self._buffer)

    def add(self, item: SensorTuple) -> Optional[List[SensorTuple]]:
        """Add a tuple; returns the closed window's tuples when time advances past it.

        Tuples must arrive in (approximately) non-decreasing time order; a
        tuple older than the open window is accepted into the open window
        rather than reopening a closed one.
        """
        if item.t >= self._window_start + self._duration:
            emitted = self._buffer
            self._buffer = [item]
            # Advance by whole windows so long gaps do not emit many empties.
            gap = item.t - self._window_start
            skipped = int(gap // self._duration)
            self._window_start += skipped * self._duration
            # A closed-but-empty window emits nothing rather than a
            # spurious empty batch.
            return emitted if emitted else None
        self._buffer.append(item)
        return None

    def flush(self) -> Optional[List[SensorTuple]]:
        """Emit the open window's tuples and start a fresh window.

        Flushing an *empty* open window is a no-op: it returns ``None``
        and leaves the window start untouched, so a periodic flusher
        neither emits spurious empty batches downstream nor drifts the
        window ahead of data that has not arrived yet.
        """
        if not self._buffer:
            return None
        batch, self._buffer = self._buffer, []
        self._window_start += self._duration
        return batch


@dataclass(frozen=True)
class _TimedTuple:
    t: float
    item: SensorTuple


class SlidingWindow:
    """Time-based sliding window: keeps the tuples of the last ``duration`` time units."""

    def __init__(self, duration: float) -> None:
        if duration <= 0:
            raise StreamError("window duration must be positive")
        self._duration = duration
        self._buffer: Deque[_TimedTuple] = deque()

    @property
    def duration(self) -> float:
        """Window length in time units."""
        return self._duration

    def add(self, item: SensorTuple) -> None:
        """Add a tuple and evict everything older than ``item.t - duration``."""
        self._buffer.append(_TimedTuple(item.t, item))
        self._evict(item.t)

    def _evict(self, now: float) -> None:
        cutoff = now - self._duration
        while self._buffer and self._buffer[0].t < cutoff:
            self._buffer.popleft()

    def contents(self) -> List[SensorTuple]:
        """Current window contents, oldest first."""
        return [entry.item for entry in self._buffer]

    def __len__(self) -> int:
        return len(self._buffer)
