"""Shared binary codec for columnar payloads.

One module owns the raw-column packing that used to live privately inside
the checkpoint pickler (``repro/recovery/snapshot.py``) so the two places
that move :class:`~repro.streams.TupleBatch` / :class:`~repro.views.ViewFrame`
payloads off-process — checkpoint files and the serving layer's wire
protocol — cannot drift:

* :func:`pack_column` / :func:`unpack_column` — one numpy column as raw
  bytes + dtype + shape (object-dtype columns pass through unchanged for
  the pickle path).  Non-contiguous views are made contiguous on the way
  out; the unpacked column is always a fresh writable array.
* :func:`reduce_tuple_batch` / :func:`rebuild_tuple_batch` — the
  ``pickle``-reduce form the snapshot pickler dispatches
  :class:`TupleBatch` through (~3x smaller/faster than per-ndarray pickle
  framing).
* :func:`encode_tuple_batch` / :func:`decode_tuple_batch` and
  :func:`encode_view_frame` / :func:`decode_view_frame` — self-contained,
  pickle-free wire encodings: a length-prefixed JSON header describing the
  columns followed by their raw bytes.  Object-dtype columns (group keys,
  per-tuple metadata dicts, boolean-ish human-sensed values) are carried
  as restricted JSON — numbers, strings, booleans, ``None``, lists, dicts
  and tuples (tagged, so they round-trip as tuples) — anything else
  raises :class:`~repro.errors.StreamError` instead of silently pickling
  arbitrary objects onto the wire.

The serving layer's serialize-once fan-out contract is *asserted* through
this module: :func:`codec_call_counts` exposes how many times each encode
entry point ran, so a benchmark can pin that serving a frame to N
subscribers costs exactly one encode, not N.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import StreamError
from .batch import TupleBatch

__all__ = [
    "pack_column",
    "unpack_column",
    "reduce_tuple_batch",
    "rebuild_tuple_batch",
    "encode_tuple_batch",
    "decode_tuple_batch",
    "encode_view_frame",
    "decode_view_frame",
    "codec_call_counts",
    "reset_codec_call_counts",
]

#: Wire-format version embedded in every encoded payload header.
WIRE_VERSION = 1

_U32 = struct.Struct(">I")

#: Encode-call counters behind :func:`codec_call_counts` (the
#: serialize-once fan-out assertion of ``benchmarks/bench_serve.py``).
_CALLS: Dict[str, int] = {"tuple_batch": 0, "view_frame": 0}


def codec_call_counts() -> Dict[str, int]:
    """How many times each wire encoder ran (a copy; see module docs)."""
    return dict(_CALLS)


def reset_codec_call_counts() -> None:
    """Zero the encode-call counters (test/benchmark plumbing)."""
    for key in _CALLS:
        _CALLS[key] = 0


# ----------------------------------------------------------------------
# Column packing (shared with the checkpoint pickler)
# ----------------------------------------------------------------------
def pack_column(array: np.ndarray):
    """One column as raw bytes + dtype + shape (object dtypes as-is)."""
    if array.dtype.hasobject:
        return array
    contiguous = np.ascontiguousarray(array)
    return (contiguous.tobytes(), array.dtype.str, array.shape)


def unpack_column(packed) -> np.ndarray:
    """Invert :func:`pack_column` into a fresh, writable array."""
    if isinstance(packed, np.ndarray):
        return packed
    data, dtype, shape = packed
    return np.frombuffer(data, dtype=dtype).reshape(shape).copy()


def rebuild_tuple_batch(attribute, columns, meta, extra) -> TupleBatch:
    """Rebuild a :class:`TupleBatch` from its packed-column reduce form."""
    t, x, y, value, sensor_id, tuple_id = (unpack_column(c) for c in columns)
    return TupleBatch(
        attribute, t, x, y, value, sensor_id, tuple_id,
        meta=meta,
        extra={name: unpack_column(c) for name, c in extra.items()},
    )


def reduce_tuple_batch(batch: TupleBatch):
    """The ``pickle``-reduce form of a batch (used by the snapshot pickler)."""
    columns = tuple(
        pack_column(c)
        for c in (batch.t, batch.x, batch.y, batch.value, batch.sensor_id, batch.tuple_id)
    )
    extra = {name: pack_column(c) for name, c in batch.extra.items()}
    return rebuild_tuple_batch, (batch.attribute, columns, batch.meta, extra)


# ----------------------------------------------------------------------
# Restricted JSON for object payloads (no pickle on the wire)
# ----------------------------------------------------------------------
def _jsonable(value):
    """Convert one object-column entry into tagged, reversible JSON."""
    if isinstance(value, np.generic):
        value = value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, tuple):
        return {"__t__": [_jsonable(v) for v in value]}
    if isinstance(value, list):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        for key in value:
            if not isinstance(key, str):
                raise StreamError(
                    f"wire codec only carries string-keyed dicts, got key {key!r}"
                )
        return {"__d__": {k: _jsonable(v) for k, v in value.items()}}
    raise StreamError(
        f"wire codec cannot carry a {type(value).__name__} value ({value!r}); "
        f"supported: numbers, strings, booleans, None, lists, tuples and "
        f"string-keyed dicts"
    )


def _from_jsonable(value):
    if isinstance(value, dict):
        if "__t__" in value and len(value) == 1:
            return tuple(_from_jsonable(v) for v in value["__t__"])
        if "__d__" in value and len(value) == 1:
            return {k: _from_jsonable(v) for k, v in value["__d__"].items()}
        return {k: _from_jsonable(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_from_jsonable(v) for v in value]
    return value


def _describe_column(name: str, array: np.ndarray, blobs: List[bytes]) -> dict:
    """Header entry for one column; binary columns append to ``blobs``."""
    array = np.asarray(array)
    if array.dtype.hasobject:
        return {
            "name": name,
            "json": [_jsonable(v) for v in array.ravel().tolist()],
            "shape": list(array.shape),
        }
    data, dtype, shape = pack_column(array)
    blobs.append(data)
    return {"name": name, "dtype": dtype, "shape": list(shape), "nbytes": len(data)}


def _read_column(entry: dict, payload: memoryview, offset: int) -> Tuple[np.ndarray, int]:
    shape = tuple(entry["shape"])
    if "json" in entry:
        column = np.empty(len(entry["json"]), dtype=object)
        column[:] = [_from_jsonable(v) for v in entry["json"]]
        return column.reshape(shape), offset
    nbytes = entry["nbytes"]
    data = bytes(payload[offset : offset + nbytes])
    if len(data) != nbytes:
        raise StreamError(
            f"wire payload truncated: column {entry['name']!r} wants {nbytes} "
            f"bytes, {len(data)} available"
        )
    return unpack_column((data, entry["dtype"], shape)), offset + nbytes


def _frame_blob(header: dict, blobs: Sequence[bytes]) -> bytes:
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    return b"".join([_U32.pack(len(head)), head] + list(blobs))


def _split_blob(data, *, expected_kind: str) -> Tuple[dict, memoryview]:
    view = memoryview(data)
    if len(view) < 4:
        raise StreamError(f"wire payload too short for a {expected_kind} header")
    (head_len,) = _U32.unpack(bytes(view[:4]))
    if 4 + head_len > len(view):
        raise StreamError(f"wire payload truncated inside its {expected_kind} header")
    try:
        header = json.loads(bytes(view[4 : 4 + head_len]).decode("utf-8"))
    except ValueError as exc:
        raise StreamError(f"wire payload header is not valid JSON: {exc}") from exc
    if header.get("kind") != expected_kind:
        raise StreamError(
            f"wire payload is a {header.get('kind')!r}, expected {expected_kind!r}"
        )
    if header.get("v") != WIRE_VERSION:
        raise StreamError(
            f"wire payload version {header.get('v')!r} is not supported "
            f"(this build speaks version {WIRE_VERSION})"
        )
    return header, view[4 + head_len :]


# ----------------------------------------------------------------------
# TupleBatch wire encoding
# ----------------------------------------------------------------------
def encode_tuple_batch(batch: TupleBatch) -> bytes:
    """A batch as one self-contained, pickle-free byte string."""
    _CALLS["tuple_batch"] += 1
    blobs: List[bytes] = []
    columns = [
        _describe_column(name, getattr(batch, name), blobs)
        for name in ("t", "x", "y", "value", "sensor_id", "tuple_id")
    ]
    extra = [_describe_column(name, col, blobs) for name, col in batch.extra.items()]
    header = {
        "kind": "tuple-batch",
        "v": WIRE_VERSION,
        "attribute": batch.attribute,
        "n": len(batch),
        "columns": columns,
        "extra": extra,
        "meta": _jsonable(dict(batch.meta)),
    }
    return _frame_blob(header, blobs)


def decode_tuple_batch(data) -> TupleBatch:
    """Invert :func:`encode_tuple_batch`."""
    header, payload = _split_blob(data, expected_kind="tuple-batch")
    offset = 0
    main: List[np.ndarray] = []
    for entry in header["columns"]:
        column, offset = _read_column(entry, payload, offset)
        main.append(column)
    extra: Dict[str, np.ndarray] = {}
    for entry in header["extra"]:
        column, offset = _read_column(entry, payload, offset)
        extra[entry["name"]] = column
    meta = _from_jsonable(header["meta"])
    return TupleBatch(header["attribute"], *main, meta=meta, extra=extra)


# ----------------------------------------------------------------------
# ViewFrame wire encoding
# ----------------------------------------------------------------------
def encode_view_frame(frame) -> bytes:
    """A closed :class:`~repro.views.ViewFrame` as one byte string."""
    _CALLS["view_frame"] += 1
    blobs: List[bytes] = []
    columns = [
        _describe_column("keys", frame.keys, blobs),
        _describe_column("values", frame.values, blobs),
        _describe_column("counts", frame.counts, blobs),
    ]
    header = {
        "kind": "view-frame",
        "v": WIRE_VERSION,
        "frame_index": frame.frame_index,
        "window_start": frame.window_start,
        "window_end": frame.window_end,
        "columns": columns,
    }
    return _frame_blob(header, blobs)


def decode_view_frame(data):
    """Invert :func:`encode_view_frame`."""
    from ..views.frames import ViewFrame

    header, payload = _split_blob(data, expected_kind="view-frame")
    offset = 0
    columns: List[np.ndarray] = []
    for entry in header["columns"]:
        column, offset = _read_column(entry, payload, offset)
        columns.append(column)
    keys, values, counts = columns
    return ViewFrame(
        frame_index=header["frame_index"],
        window_start=header["window_start"],
        window_end=header["window_end"],
        keys=keys,
        values=values,
        counts=counts,
    )
