"""A small execution engine that routes tuples to per-key topologies.

Section V's *map* phase assigns each incoming tuple to the hashmap key of
the grid cell it falls in; the *process* phase runs the topology stored
under that key.  :class:`StreamEngine` implements exactly that hashmap-of-
topologies pattern in a reusable form, independent of the CrAQR-specific
planning logic (which lives in :mod:`repro.core.planner`).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Iterable, List, Optional, Tuple

from ..errors import StreamError
from .topology import StreamTopology
from .tuples import SensorTuple

KeyFunction = Callable[[SensorTuple], Hashable]


class StreamEngine:
    """Routes tuples to topologies keyed by an arbitrary key function."""

    def __init__(self, key_fn: KeyFunction, name: str = "engine") -> None:
        self._name = name
        self._key_fn = key_fn
        self._topologies: Dict[Hashable, StreamTopology] = {}
        self._routed = 0
        self._unrouted = 0

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        """The engine's name."""
        return self._name

    @property
    def keys(self) -> List[Hashable]:
        """Keys that currently have a topology."""
        return list(self._topologies.keys())

    @property
    def routed(self) -> int:
        """Tuples delivered to some topology."""
        return self._routed

    @property
    def unrouted(self) -> int:
        """Tuples whose key had no topology (dropped)."""
        return self._unrouted

    def __len__(self) -> int:
        return len(self._topologies)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._topologies

    # ------------------------------------------------------------------
    def topology(self, key: Hashable) -> StreamTopology:
        """The topology stored under ``key``."""
        try:
            return self._topologies[key]
        except KeyError:
            raise StreamError(f"no topology registered for key {key!r}") from None

    def get_or_create(self, key: Hashable, factory: Callable[[], StreamTopology]) -> StreamTopology:
        """Return the topology under ``key``, creating it with ``factory`` when absent."""
        if key not in self._topologies:
            self._topologies[key] = factory()
        return self._topologies[key]

    def register(self, key: Hashable, topology: StreamTopology) -> None:
        """Register a topology under a key."""
        if key in self._topologies:
            raise StreamError(f"a topology is already registered for key {key!r}")
        self._topologies[key] = topology

    def unregister(self, key: Hashable) -> StreamTopology:
        """Remove and return the topology under a key."""
        try:
            return self._topologies.pop(key)
        except KeyError:
            raise StreamError(f"no topology registered for key {key!r}") from None

    # ------------------------------------------------------------------
    def route(self, item: SensorTuple) -> bool:
        """Deliver one tuple to its topology; returns whether it was routed."""
        key = self._key_fn(item)
        topology = self._topologies.get(key)
        if topology is None:
            self._unrouted += 1
            return False
        topology.inject(item)
        self._routed += 1
        return True

    def route_many(self, items: Iterable[SensorTuple]) -> Tuple[int, int]:
        """Deliver many tuples; returns ``(routed, unrouted)`` counts."""
        routed = 0
        unrouted = 0
        for item in items:
            if self.route(item):
                routed += 1
            else:
                unrouted += 1
        return routed, unrouted

    def flush_all(self) -> None:
        """Flush every registered topology (end of batch)."""
        for topology in self._topologies.values():
            topology.flush()

    def describe(self) -> str:
        """Human-readable dump of every registered topology."""
        lines = [f"engine '{self._name}' with {len(self._topologies)} topologies"]
        for key, topology in self._topologies.items():
            lines.append(f"-- key {key!r}")
            lines.append(topology.describe())
        return "\n".join(lines)
