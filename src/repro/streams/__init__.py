"""Minimal push-based stream-processing substrate.

The paper assumes a stream data management system in the style of Aurora /
TelegraphCQ / CQL: operators connected into an execution topology that tuples
flow through.  This package provides a compact in-process equivalent — typed
sensor tuples, streams (named edges), operators (nodes), windows, and a
topology runner — on which the PMAT operators of :mod:`repro.core` are built.
"""

from .tuples import SensorTuple, make_tuple_id_allocator
from .batch import NO_SENSOR_ID, TupleBatch
from .codec import (
    codec_call_counts,
    decode_tuple_batch,
    decode_view_frame,
    encode_tuple_batch,
    encode_view_frame,
    pack_column,
    reduce_tuple_batch,
    rebuild_tuple_batch,
    reset_codec_call_counts,
    unpack_column,
)
from .stream import Stream, StreamStats
from .windows import BatchWindow, SlidingWindow, TumblingWindow
from .operator import StreamOperator, PassThroughOperator, FilterOperator, MapOperator
from .topology import StreamTopology, BranchingPoint
from .engine import StreamEngine
from .sources import IterableSource, BatchSource
from .sinks import CollectingSink, CountingSink, CallbackSink

__all__ = [
    "SensorTuple",
    "make_tuple_id_allocator",
    "TupleBatch",
    "NO_SENSOR_ID",
    "codec_call_counts",
    "decode_tuple_batch",
    "decode_view_frame",
    "encode_tuple_batch",
    "encode_view_frame",
    "pack_column",
    "reduce_tuple_batch",
    "rebuild_tuple_batch",
    "reset_codec_call_counts",
    "unpack_column",
    "Stream",
    "StreamStats",
    "BatchWindow",
    "SlidingWindow",
    "TumblingWindow",
    "StreamOperator",
    "PassThroughOperator",
    "FilterOperator",
    "MapOperator",
    "StreamTopology",
    "BranchingPoint",
    "StreamEngine",
    "IterableSource",
    "BatchSource",
    "CollectingSink",
    "CountingSink",
    "CallbackSink",
]
